//! Workspace-level package hosting the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! The library surface lives in the [`veri_hvac`] umbrella crate; this
//! package only re-exports it so examples and tests have a single
//! import root.

pub use veri_hvac::*;
