//! Verification walkthrough: catch an unsafe tree and fix it.
//!
//! ```sh
//! cargo run --release --example verify_and_correct
//! ```
//!
//! Builds a deliberately unsafe decision-tree policy (it refuses to heat
//! freezing zones), then runs the paper's offline verification:
//! Algorithm 1 finds the failing leaves via their decision-path boxes
//! and corrects them in place; the probabilistic criterion #1 then
//! bounds the violation probability of the corrected policy.

use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::EnvConfig;
use veri_hvac::env::{
    ActionSpace, ComfortRange, Observation, Policy, SetpointAction, POLICY_INPUT_DIM,
};
use veri_hvac::pipeline::{run_pipeline, PipelineConfig};
use veri_hvac::verify::{verify_and_correct, verify_paths, VerificationConfig};

/// An unsafe hand-made policy: never heats, whatever the temperature.
fn unsafe_policy() -> Result<DtPolicy, Box<dyn std::error::Error>> {
    let space = ActionSpace::new();
    let lazy = space.index_of(SetpointAction::off());
    let cool = space.index_of(SetpointAction::new(15, 22)?);
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..40 {
        let temp = 12.0 + f64::from(i) * 0.5;
        let mut row = [0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row.to_vec());
        labels.push(if temp > 24.0 { cool } else { lazy });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default())?;
    Ok(DtPolicy::new(tree)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let comfort = ComfortRange::winter();
    let mut policy = unsafe_policy()?;

    println!("=== step 1: formal check (Algorithm 1) on the unsafe policy ===");
    let check = verify_paths(&policy, &comfort)?;
    println!(
        "leaves checked: {}   criterion #2 violations: {}   criterion #3 violations: {}",
        check.leaves_checked,
        check.criterion_2_count(),
        check.criterion_3_count()
    );
    for v in check.violations.iter().take(5) {
        println!(
            "  leaf {:?} violates {:?} with action {}",
            v.leaf.node_id(),
            v.criterion,
            v.action
        );
    }

    // Before correction: a freezing zone gets no heating.
    let freezing = Observation::new(14.0, Default::default());
    println!(
        "\nbefore correction, at 14.0 °C the policy commands: {}",
        policy.decide(&freezing)
    );

    println!("\n=== step 2: full verify-and-correct pass ===");
    // Criterion #1 needs a dynamics model and an input distribution;
    // borrow them from a quick pipeline run.
    let artifacts = run_pipeline(&PipelineConfig::reduced(EnvConfig::pittsburgh()))?;
    let config = VerificationConfig {
        samples: 1000,
        ..VerificationConfig::paper()
    };
    let report = verify_and_correct(&mut policy, &artifacts.model, &artifacts.augmenter, &config)?;
    println!("{report}");

    println!(
        "\nafter correction, at 14.0 °C the policy commands: {}",
        policy.decide(&freezing)
    );

    println!("\n=== step 3: re-run Algorithm 1 on the corrected policy ===");
    let recheck = verify_paths(&policy, &comfort)?;
    println!(
        "violations remaining: {} (passed = {})",
        recheck.violations.len(),
        recheck.passed()
    );
    Ok(())
}
