//! Quickstart: run the paper's whole procedure on a reduced setting.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Collects historical data from the simulated Pittsburgh building,
//! trains the black-box dynamics model, distills the stochastic MBRL
//! controller into a decision tree, verifies/corrects the tree, and
//! deploys it for a simulated week — printing the interpretable policy
//! and the verification report along the way.

use veri_hvac::env::{run_episode, EnvConfig, HvacEnv};
use veri_hvac::pipeline::{run_pipeline, PipelineConfig, PipelineError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Veri-HVAC quickstart (reduced scale) ===\n");

    // 1. Extract + verify a decision-tree policy for Pittsburgh.
    let config = PipelineConfig::reduced(EnvConfig::pittsburgh());
    println!("running pipeline (collect → train → distill → fit → verify)…");
    let artifacts = run_pipeline(&config)
        .map_err(|e: PipelineError| Box::new(e) as _)
        .map_err(|e: Box<dyn std::error::Error>| e)?;

    println!("\n-- dynamics model --");
    println!(
        "transitions: {}   validation RMSE: {:.3} °C",
        artifacts.historical.len(),
        artifacts.model.validation_rmse()
    );

    println!("\n-- verification report (paper Table 2 format) --");
    println!("{}", artifacts.report);

    println!("\n-- extracted decision tree (first 30 lines) --");
    let text = artifacts.policy.to_text();
    for line in text.lines().take(30) {
        println!("{line}");
    }
    let total_lines = text.lines().count();
    if total_lines > 30 {
        println!("… ({} more lines)", total_lines - 30);
    }

    // 2. Deploy the verified policy for one simulated week.
    println!("\n-- deployment: one simulated January week --");
    let mut policy = artifacts.policy;
    let mut env = HvacEnv::new(EnvConfig::pittsburgh().with_episode_steps(7 * 96))?;
    let record = run_episode(&mut env, &mut policy)?;
    println!("policy: {}", record.policy_name);
    println!("{}", record.metrics);
    println!(
        "comfort rate: {:.1}%   performance index: {:.2}",
        100.0 * record.metrics.comfort_rate(),
        record.metrics.performance_index()
    );

    Ok(())
}
