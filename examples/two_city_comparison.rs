//! Two-city controller comparison — a reduced-scale preview of the
//! paper's Fig. 4 evaluation.
//!
//! ```sh
//! cargo run --release --example two_city_comparison
//! ```
//!
//! For Pittsburgh (cold 4A) and Tucson (mild 2B), runs the default
//! rule-based controller, the random-shooting MBRL baseline, and the
//! extracted+verified decision-tree policy over one simulated week, and
//! tabulates energy versus comfort. (The full-month, full-sample
//! version lives in the benchmark harness: `fig4_building_control`.)

use veri_hvac::control::{RandomShootingConfig, RandomShootingController, RuleBasedController};
use veri_hvac::env::{run_episode, EnvConfig, EpisodeMetrics, HvacEnv, Policy};
use veri_hvac::pipeline::{run_pipeline, PipelineConfig};

const WEEK: usize = 7 * 96;

fn evaluate<P: Policy>(
    env_config: &EnvConfig,
    policy: &mut P,
) -> Result<EpisodeMetrics, Box<dyn std::error::Error>> {
    let mut env = HvacEnv::new(env_config.clone().with_episode_steps(WEEK))?;
    Ok(run_episode(&mut env, policy)?.metrics)
}

fn report(name: &str, m: &EpisodeMetrics) {
    println!(
        "  {name:<10}  energy {:>7.1} kWh   zone {:>6.1} kWh   violations {:>5.1}%   reward {:>9.1}",
        m.total_electric_kwh,
        m.zone_electric_kwh,
        100.0 * m.violation_rate(),
        m.total_reward,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (city, env_config) in [
        ("Pittsburgh (4A)", EnvConfig::pittsburgh()),
        ("Tucson (2B)", EnvConfig::tucson()),
    ] {
        println!("=== {city} — one simulated January week ===");

        // Extract the verified DT policy (and reuse its trained model
        // for the MBRL baseline, like the paper does).
        let artifacts = run_pipeline(&PipelineConfig::reduced(env_config.clone()))?;

        let mut default_ctl =
            RuleBasedController::new(*HvacEnv::new(env_config.clone())?.comfort());
        report("default", &evaluate(&env_config, &mut default_ctl)?);

        let rs_config = RandomShootingConfig {
            samples: 200, // reduced from the paper's 1000 for example speed
            ..RandomShootingConfig::paper()
        };
        let mut mbrl = RandomShootingController::new(artifacts.model.clone(), rs_config, 1)?;
        report("mbrl-rs", &evaluate(&env_config, &mut mbrl)?);

        let mut dt = artifacts.policy;
        report("dt (ours)", &evaluate(&env_config, &mut dt)?);

        println!();
    }
    println!("(full-month reproduction with paper-scale sampling: `cargo run --release -p hvac-bench --bin fig4_building_control`)");
    Ok(())
}
