//! Interpretability tour: inspect everything the black box hides.
//!
//! ```sh
//! cargo run --release --example interpretability_tour
//! ```
//!
//! The paper's pitch is that a decision tree can be *read*: every
//! decision node compares one named physical quantity to a threshold,
//! every leaf commands concrete setpoints, and every leaf's reachable
//! input region ("box") can be computed exactly. This example extracts
//! a small policy and walks through all three views, then exports the
//! tree as Graphviz DOT (the paper's Fig. 2 rendering).

use veri_hvac::dtree::Node;
use veri_hvac::env::space::feature;
use veri_hvac::env::{Disturbances, EnvConfig, Observation, Policy};
use veri_hvac::pipeline::{run_pipeline, PipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Interpretability tour ===\n");
    let artifacts = run_pipeline(&PipelineConfig::reduced(EnvConfig::tucson()))?;
    let mut policy = artifacts.policy;
    let tree = policy.tree().clone();

    println!(
        "tree: {} nodes, {} leaves, depth {}\n",
        tree.node_count(),
        tree.leaf_count(),
        tree.depth()
    );

    // View 1: the rules as text.
    println!("-- view 1: the policy as nested rules --");
    for line in policy.to_text().lines().take(20) {
        println!("{line}");
    }

    // View 2: one concrete decision, traced node by node.
    println!("\n-- view 2: tracing one decision --");
    let obs = Observation::new(
        18.5,
        Disturbances {
            outdoor_temperature: 5.0,
            relative_humidity: 40.0,
            wind_speed: 2.0,
            solar_radiation: 350.0,
            occupant_count: 6.0,
            hour_of_day: 10.0,
        },
    );
    let x = obs.to_vector();
    println!("observation: zone 18.5 °C, outdoor 5.0 °C, occupied");
    let path = tree.decision_path(&x)?;
    for (i, &node_id) in path.iter().enumerate() {
        match tree.node(node_id)? {
            Node::Split {
                feature: f,
                threshold,
                ..
            } => {
                let v = x[*f];
                let taken = if v <= *threshold {
                    "≤ → left"
                } else {
                    "> → right"
                };
                println!(
                    "  step {i}: {} = {v:.2} vs {threshold:.2}  ({taken})",
                    feature::NAMES[*f]
                );
            }
            Node::Leaf { .. } => {
                println!("  step {i}: leaf reached");
            }
        }
    }
    let action = policy.decide(&obs);
    println!("decision: {action}");

    // View 3: the input box of the leaf that fired.
    println!("\n-- view 3: the exact input region this leaf handles --");
    let leaf = tree.apply(&x)?;
    let input_box = tree.leaf_box(leaf)?;
    for (f, name) in feature::NAMES.iter().enumerate() {
        println!("  {name}: {}", input_box.side(f));
    }

    // View 4: Graphviz export.
    let class_names: Vec<String> = policy
        .action_space()
        .iter()
        .map(|a| a.to_string())
        .collect();
    let class_refs: Vec<&str> = class_names.iter().map(String::as_str).collect();
    let dot = tree.to_dot(&feature::NAMES, &class_refs);
    let path = "target/decision_tree.dot";
    std::fs::create_dir_all("target")?;
    std::fs::write(path, &dot)?;
    println!(
        "\n-- view 4: Graphviz DOT written to {path} ({} bytes) --",
        dot.len()
    );
    println!("render with: dot -Tpng {path} -o tree.png");

    Ok(())
}
