//! Energy audit: per-step trace export and reachability analysis of a
//! deployed policy.
//!
//! ```sh
//! cargo run --release --example energy_audit
//! ```
//!
//! Extracts a verified policy, deploys it for a simulated week, writes
//! the full per-step trace to `target/audit_trace.csv` (ready for any
//! plotting tool), prints a daily energy/comfort digest, and finishes
//! with a forward reachability tube (paper Eq. 3) showing the envelope
//! of zone temperatures the policy can reach from the current state.

use veri_hvac::env::{run_episode, EnvConfig, HvacEnv};
use veri_hvac::pipeline::{run_pipeline, PipelineConfig};
use veri_hvac::stats::OnlineStats;
use veri_hvac::verify::reachability_tube;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Energy audit: deployed DT policy, one simulated week ===\n");
    let artifacts = run_pipeline(&PipelineConfig::reduced(EnvConfig::pittsburgh()))?;
    let mut policy = artifacts.policy.clone();

    let mut env = HvacEnv::new(EnvConfig::pittsburgh().with_episode_steps(7 * 96))?;
    let record = run_episode(&mut env, &mut policy)?;

    // Full trace to CSV.
    std::fs::create_dir_all("target")?;
    let path = "target/audit_trace.csv";
    std::fs::write(path, record.to_csv())?;
    println!(
        "wrote per-step trace to {path} ({} rows)\n",
        record.steps.len()
    );

    // Daily digest.
    println!("day  energy_kwh  zone_kwh  min_T  max_T  violations");
    for day in 0..7 {
        let steps = &record.steps[day * 96..(day + 1) * 96];
        let energy: f64 = steps.iter().map(|s| s.electric_energy_kwh).sum();
        let zone: f64 = steps.iter().map(|s| s.zone_electric_energy_kwh).sum();
        let temps: OnlineStats = steps.iter().map(|s| s.post_zone_temperature).collect();
        let violations = steps
            .iter()
            .filter(|s| s.occupied && s.comfort_violation_degrees > 0.0)
            .count();
        println!(
            "{day:>3}  {energy:>10.1}  {zone:>8.1}  {:>5.1}  {:>5.1}  {violations:>10}",
            temps.min(),
            temps.max(),
        );
    }
    println!("\n{}", record.metrics);

    // Reachability tube from the episode's final state (Eq. 3):
    // where can the policy take the zone in the next 5 hours, over the
    // climate's disturbance scenarios?
    let last = record.steps.last().expect("nonempty episode");
    let start = last.observation;
    let tube = reachability_tube(
        &mut policy,
        &artifacts.model,
        &artifacts.augmenter,
        &start,
        20,  // H = 20 steps (5 h)
        200, // disturbance scenarios
        0,
    )?;
    println!(
        "\n-- forward reachability tube from the final state ({:.1} °C) --",
        start.zone_temperature
    );
    println!("step  lower_C  upper_C");
    for (k, (lo, hi)) in tube.lower.iter().zip(&tube.upper).enumerate().step_by(4) {
        println!("{k:>4}  {lo:>7.2}  {hi:>7.2}");
    }
    let comfort = veri_hvac::env::ComfortRange::winter();
    println!(
        "tube stays within the winter comfort range {}: {}",
        comfort,
        tube.within(&comfort)
    );
    Ok(())
}
