//! Clear-sky solar geometry.
//!
//! Produces the deterministic component of "Site Total Radiation Rate Per
//! Area" (Table 1 of the paper): global horizontal irradiance under a
//! clear sky, computed from latitude, day-of-year and hour-of-day via the
//! usual declination / hour-angle formulas. The stochastic cloud-cover
//! multiplier lives in [`crate::weather`].

/// Solar constant attenuated by a generic clear atmosphere, W/m².
const CLEAR_SKY_PEAK: f64 = 950.0;

/// Solar declination in radians for a given (0-based) day of year.
///
/// Cooper's formula: `δ = 23.45° · sin(2π (284 + n) / 365)` with `n`
/// 1-based.
pub fn declination(day_of_year: u16) -> f64 {
    let n = f64::from(day_of_year) + 1.0;
    (23.45f64).to_radians() * (2.0 * std::f64::consts::PI * (284.0 + n) / 365.0).sin()
}

/// Solar elevation angle in radians at the given location and time.
///
/// `hour` is local solar hour in `[0, 24)`; negative results mean the sun
/// is below the horizon.
pub fn elevation(latitude_deg: f64, day_of_year: u16, hour: f64) -> f64 {
    let lat = latitude_deg.to_radians();
    let decl = declination(day_of_year);
    let hour_angle = ((hour - 12.0) * 15.0).to_radians();
    (lat.sin() * decl.sin() + lat.cos() * decl.cos() * hour_angle.cos()).asin()
}

/// Clear-sky global horizontal irradiance in W/m² (zero at night).
///
/// A simple air-mass attenuation is applied so that low sun angles yield
/// realistically weak irradiance.
///
/// # Example
///
/// ```
/// // Noon in midsummer at mid latitude is bright; midnight is dark.
/// let noon = hvac_sim::solar::clear_sky_ghi(40.0, 171, 12.0);
/// let midnight = hvac_sim::solar::clear_sky_ghi(40.0, 171, 0.0);
/// assert!(noon > 600.0);
/// assert_eq!(midnight, 0.0);
/// ```
pub fn clear_sky_ghi(latitude_deg: f64, day_of_year: u16, hour: f64) -> f64 {
    let el = elevation(latitude_deg, day_of_year, hour);
    if el <= 0.0 {
        return 0.0;
    }
    let sin_el = el.sin();
    // Kasten–Young style air-mass attenuation, simplified.
    let air_mass = 1.0 / (sin_el + 0.05);
    let attenuation = 0.7f64.powf(air_mass.powf(0.678));
    CLEAR_SKY_PEAK * sin_el * attenuation / 0.7f64.powf(1.0)
}

/// Daylight hours (sunrise-to-sunset duration) at the location/date, in
/// hours. Returns 0 or 24 for polar night/day.
pub fn daylight_hours(latitude_deg: f64, day_of_year: u16) -> f64 {
    let lat = latitude_deg.to_radians();
    let decl = declination(day_of_year);
    let cos_h0 = -lat.tan() * decl.tan();
    if cos_h0 >= 1.0 {
        0.0
    } else if cos_h0 <= -1.0 {
        24.0
    } else {
        2.0 * cos_h0.acos().to_degrees() / 15.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn declination_solstices() {
        // Winter solstice (~Dec 21, doy 354): close to -23.45°.
        assert!((declination(354).to_degrees() + 23.45).abs() < 0.5);
        // Summer solstice (~Jun 21, doy 171): close to +23.45°.
        assert!((declination(171).to_degrees() - 23.45).abs() < 0.5);
    }

    #[test]
    fn night_has_zero_irradiance() {
        assert_eq!(clear_sky_ghi(40.0, 10, 0.0), 0.0);
        assert_eq!(clear_sky_ghi(40.0, 10, 23.0), 0.0);
    }

    #[test]
    fn noon_brighter_than_morning() {
        let noon = clear_sky_ghi(40.0, 10, 12.0);
        let morning = clear_sky_ghi(40.0, 10, 9.0);
        assert!(noon > morning);
        assert!(morning > 0.0);
    }

    #[test]
    fn tucson_january_brighter_than_pittsburgh() {
        // Lower latitude means higher winter sun.
        let tucson = clear_sky_ghi(32.2, 15, 12.0);
        let pittsburgh = clear_sky_ghi(40.4, 15, 12.0);
        assert!(tucson > pittsburgh);
    }

    #[test]
    fn winter_days_shorter_at_higher_latitude() {
        let tucson = daylight_hours(32.2, 15);
        let pittsburgh = daylight_hours(40.4, 15);
        assert!(tucson > pittsburgh);
        assert!(pittsburgh > 8.0 && pittsburgh < 10.5);
    }

    #[test]
    fn polar_night_and_day() {
        assert_eq!(daylight_hours(80.0, 354), 0.0);
        assert_eq!(daylight_hours(80.0, 171), 24.0);
    }

    proptest! {
        #[test]
        fn prop_ghi_nonnegative_and_bounded(
            lat in -60.0f64..60.0,
            doy in 0u16..365,
            hour in 0.0f64..24.0,
        ) {
            let g = clear_sky_ghi(lat, doy, hour);
            prop_assert!(g >= 0.0);
            prop_assert!(g < 1100.0);
        }

        #[test]
        fn prop_elevation_bounded(
            lat in -90.0f64..90.0,
            doy in 0u16..365,
            hour in 0.0f64..24.0,
        ) {
            let e = elevation(lat, doy, hour);
            prop_assert!(e.abs() <= std::f64::consts::FRAC_PI_2 + 1e-9);
        }

        #[test]
        fn prop_daylight_in_range(lat in -65.0f64..65.0, doy in 0u16..365) {
            let d = daylight_hours(lat, doy);
            prop_assert!((0.0..=24.0).contains(&d));
        }
    }
}
