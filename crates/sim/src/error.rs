//! Error types.

use std::error::Error;
use std::fmt;

/// Error type for building-simulation operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A building was configured with no zones.
    NoZones,
    /// A configuration value was out of its physically meaningful range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The number of per-zone inputs supplied to a step did not match the
    /// number of zones in the building.
    ZoneCountMismatch {
        /// Zones in the building.
        expected: usize,
        /// Per-zone values supplied by the caller.
        got: usize,
    },
    /// An adjacency entry referenced a zone index that does not exist.
    BadAdjacency {
        /// First zone index of the offending pair.
        a: usize,
        /// Second zone index of the offending pair.
        b: usize,
        /// Number of zones actually configured.
        zones: usize,
    },
    /// A non-finite value (NaN/inf) was supplied where physics requires a
    /// finite quantity.
    NonFiniteInput {
        /// Which input was non-finite.
        what: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoZones => write!(f, "building must have at least one zone"),
            SimError::InvalidConfig { field, value } => {
                write!(f, "invalid configuration: {field} = {value}")
            }
            SimError::ZoneCountMismatch { expected, got } => {
                write!(f, "expected {expected} per-zone values, got {got}")
            }
            SimError::BadAdjacency { a, b, zones } => {
                write!(
                    f,
                    "adjacency ({a}, {b}) references nonexistent zone (building has {zones})"
                )
            }
            SimError::NonFiniteInput { what } => {
                write!(f, "non-finite input: {what}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty() {
        let errs = [
            SimError::NoZones,
            SimError::InvalidConfig {
                field: "capacitance",
                value: -1.0,
            },
            SimError::ZoneCountMismatch {
                expected: 5,
                got: 3,
            },
            SimError::BadAdjacency {
                a: 9,
                b: 0,
                zones: 5,
            },
            SimError::NonFiniteInput { what: "setpoint" },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
