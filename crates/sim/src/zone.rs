//! Thermal-zone parameters and state.

use crate::SimError;

/// Static thermal parameters of one zone in the RC network.
///
/// Values follow the usual lumped-parameter reductions: capacitance of
/// the zone air plus a share of furnishing/structure mass, an envelope
/// conductance to outdoor air, a window solar aperture, and internal
/// gains per occupant.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneConfig {
    /// Zone name (EnergyPlus-style, e.g. `"SPACE1-1"`).
    pub name: String,
    /// Floor area, m².
    pub floor_area: f64,
    /// Effective thermal capacitance, J/K (air + lumped mass).
    pub capacitance: f64,
    /// Envelope conductance to outdoor air, W/K.
    pub envelope_ua: f64,
    /// Effective solar aperture (window area × SHGC), m².
    pub solar_aperture: f64,
    /// Sensible heat gain per occupant, W.
    pub gain_per_occupant: f64,
    /// Baseline equipment+lighting gain while occupied, W.
    pub equipment_gain: f64,
    /// Maximum heating power deliverable to this zone, W.
    pub max_heating_power: f64,
    /// Maximum cooling power removable from this zone, W.
    pub max_cooling_power: f64,
}

impl ZoneConfig {
    /// Validates physical plausibility of the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any quantity that must be
    /// strictly positive is not, or any must-be-nonnegative quantity is
    /// negative.
    pub fn validate(&self) -> Result<(), SimError> {
        let strictly_positive = [
            ("floor_area", self.floor_area),
            ("capacitance", self.capacitance),
            ("envelope_ua", self.envelope_ua),
        ];
        for (field, value) in strictly_positive {
            if !(value > 0.0) || !value.is_finite() {
                return Err(SimError::InvalidConfig { field, value });
            }
        }
        let nonnegative = [
            ("solar_aperture", self.solar_aperture),
            ("gain_per_occupant", self.gain_per_occupant),
            ("equipment_gain", self.equipment_gain),
            ("max_heating_power", self.max_heating_power),
            ("max_cooling_power", self.max_cooling_power),
        ];
        for (field, value) in nonnegative {
            if !(value >= 0.0) || !value.is_finite() {
                return Err(SimError::InvalidConfig { field, value });
            }
        }
        Ok(())
    }

    /// A perimeter office zone of the given floor area (m²) and name.
    ///
    /// Sizing heuristics: ~40 kJ/K·m² effective capacitance, ~1.4 W/K·m²
    /// envelope conductance for a perimeter zone, 12% glazing ratio.
    pub fn perimeter(name: &str, floor_area: f64) -> Self {
        Self {
            name: name.to_string(),
            floor_area,
            capacitance: 40_000.0 * floor_area,
            envelope_ua: 1.4 * floor_area,
            solar_aperture: 0.12 * floor_area * 0.6,
            gain_per_occupant: 110.0,
            equipment_gain: 8.0 * floor_area,
            max_heating_power: 70.0 * floor_area,
            max_cooling_power: 90.0 * floor_area,
        }
    }

    /// A core (interior) zone: no envelope exposure apart from the roof,
    /// no direct solar.
    pub fn core(name: &str, floor_area: f64) -> Self {
        Self {
            name: name.to_string(),
            floor_area,
            capacitance: 45_000.0 * floor_area,
            envelope_ua: 0.35 * floor_area,
            solar_aperture: 0.0,
            gain_per_occupant: 110.0,
            equipment_gain: 10.0 * floor_area,
            max_heating_power: 50.0 * floor_area,
            max_cooling_power: 50.0 * floor_area,
        }
    }
}

/// Dynamic state of one zone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneState {
    /// Zone air temperature, °C.
    pub temperature: f64,
}

impl ZoneState {
    /// Creates a zone state at the given temperature.
    pub fn at(temperature: f64) -> Self {
        Self { temperature }
    }
}

impl Default for ZoneState {
    fn default() -> Self {
        Self { temperature: 21.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perimeter_zone_validates() {
        assert!(ZoneConfig::perimeter("P1", 90.0).validate().is_ok());
    }

    #[test]
    fn core_zone_validates() {
        assert!(ZoneConfig::core("C", 100.0).validate().is_ok());
    }

    #[test]
    fn zero_capacitance_rejected() {
        let mut z = ZoneConfig::perimeter("bad", 50.0);
        z.capacitance = 0.0;
        assert!(matches!(
            z.validate(),
            Err(SimError::InvalidConfig {
                field: "capacitance",
                ..
            })
        ));
    }

    #[test]
    fn negative_aperture_rejected() {
        let mut z = ZoneConfig::perimeter("bad", 50.0);
        z.solar_aperture = -1.0;
        assert!(z.validate().is_err());
    }

    #[test]
    fn nan_rejected() {
        let mut z = ZoneConfig::core("bad", 50.0);
        z.envelope_ua = f64::NAN;
        assert!(z.validate().is_err());
    }

    #[test]
    fn core_has_no_solar() {
        assert_eq!(ZoneConfig::core("C", 100.0).solar_aperture, 0.0);
    }

    #[test]
    fn default_state_is_room_temperature() {
        assert_eq!(ZoneState::default().temperature, 21.0);
        assert_eq!(ZoneState::at(18.5).temperature, 18.5);
    }
}
