//! Ideal-loads HVAC plant with setpoint tracking.
//!
//! The paper's action is a pair of temperature setpoints per zone
//! (heating ∈ [15, 23] °C, cooling ∈ [21, 30] °C; Section 2.1). The
//! plant mimics EnergyPlus' *ideal loads air system*: each sub-step it
//! computes the thermal power required to bring the zone exactly to the
//! violated setpoint — counteracting the zone's current non-HVAC heat
//! flux plus the capacitive term — and delivers it, saturating at the
//! zone's capacity. When capacity suffices, the zone therefore *holds*
//! the setpoint exactly, like EnergyPlus; when it does not, the zone
//! drifts at full power. Electricity is metered through seasonal COPs,
//! which is what Fig. 4's kWh axis reports.

use crate::SimError;

/// Plant-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HvacPlantConfig {
    /// Thermostat deadband, K. Within ±deadband/2 of a setpoint the
    /// plant does nothing (prevents chatter).
    pub deadband: f64,
    /// Coefficient of performance for heating (heat-pump style).
    pub heating_cop: f64,
    /// Coefficient of performance for cooling.
    pub cooling_cop: f64,
}

impl HvacPlantConfig {
    /// Reference configuration used by the five-zone building.
    pub fn reference() -> Self {
        Self {
            deadband: 0.2,
            heating_cop: 3.2,
            cooling_cop: 3.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive COPs or a
    /// negative deadband.
    pub fn validate(&self) -> Result<(), SimError> {
        for (field, value) in [
            ("heating_cop", self.heating_cop),
            ("cooling_cop", self.cooling_cop),
        ] {
            if !(value > 0.0) || !value.is_finite() {
                return Err(SimError::InvalidConfig { field, value });
            }
        }
        if !(self.deadband >= 0.0) || !self.deadband.is_finite() {
            return Err(SimError::InvalidConfig {
                field: "deadband",
                value: self.deadband,
            });
        }
        Ok(())
    }
}

impl Default for HvacPlantConfig {
    fn default() -> Self {
        Self::reference()
    }
}

/// Thermal and electrical output of the plant for one zone-step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HvacOutput {
    /// Heat delivered to the zone, W (positive = heating).
    pub heating_power: f64,
    /// Heat removed from the zone, W (positive = cooling).
    pub cooling_power: f64,
    /// Electrical power drawn, W.
    pub electric_power: f64,
}

impl HvacOutput {
    /// Net thermal power added to the zone, W (heating − cooling).
    pub fn net_thermal_power(&self) -> f64 {
        self.heating_power - self.cooling_power
    }
}

/// The ideal-loads plant.
///
/// # Example
///
/// ```
/// use hvac_sim::{HvacPlant, HvacPlantConfig};
///
/// # fn main() -> Result<(), hvac_sim::SimError> {
/// let plant = HvacPlant::new(HvacPlantConfig::reference())?;
/// // Zone at 17 °C losing 1 kW, heating setpoint 20 °C: the plant heats.
/// let out = plant.respond(
///     17.0, 20.0, 25.0,   // zone temp, heating sp, cooling sp
///     -1_000.0,           // non-HVAC flux, W
///     4.0e6, 60.0,        // zone capacitance J/K, sub-step s
///     8_000.0, 8_000.0,   // capacity limits, W
/// )?;
/// assert!(out.heating_power > 0.0);
/// assert_eq!(out.cooling_power, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HvacPlant {
    config: HvacPlantConfig,
}

impl HvacPlant {
    /// Creates a plant from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is
    /// rejected by [`HvacPlantConfig::validate`].
    pub fn new(config: HvacPlantConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The plant configuration.
    pub fn config(&self) -> &HvacPlantConfig {
        &self.config
    }

    /// Computes the ideal-loads plant response for one zone sub-step.
    ///
    /// `zone_temp` is the current zone air temperature;
    /// `heating_setpoint`/`cooling_setpoint` are the commanded
    /// setpoints; `non_hvac_flux` is the zone's current heat balance
    /// without HVAC (envelope + solar + internal + inter-zone), in W;
    /// `capacitance` is the zone's thermal capacitance in J/K; `dt` the
    /// integration sub-step in seconds; `max_heating`/`max_cooling` the
    /// capacity limits in W.
    ///
    /// The delivered power is the amount needed to land the zone exactly
    /// on the violated setpoint after `dt`, clamped to capacity.
    ///
    /// If the setpoints are inverted (cooling below heating — possible
    /// because the paper's action space allows e.g. heat=23, cool=21),
    /// the conflict resolves to the midpoint, mirroring EnergyPlus'
    /// dual-setpoint thermostat honoring the tighter constraint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonFiniteInput`] for NaN/infinite inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn respond(
        &self,
        zone_temp: f64,
        heating_setpoint: f64,
        cooling_setpoint: f64,
        non_hvac_flux: f64,
        capacitance: f64,
        dt: f64,
        max_heating: f64,
        max_cooling: f64,
    ) -> Result<HvacOutput, SimError> {
        for (what, v) in [
            ("zone temperature", zone_temp),
            ("heating setpoint", heating_setpoint),
            ("cooling setpoint", cooling_setpoint),
            ("non-HVAC flux", non_hvac_flux),
        ] {
            if !v.is_finite() {
                return Err(SimError::NonFiniteInput { what });
            }
        }
        let (heat_sp, cool_sp) = if heating_setpoint > cooling_setpoint {
            let mid = 0.5 * (heating_setpoint + cooling_setpoint);
            (mid, mid)
        } else {
            (heating_setpoint, cooling_setpoint)
        };

        let half_band = 0.5 * self.config.deadband;
        let mut out = HvacOutput::default();

        if zone_temp < heat_sp - half_band {
            // Power to land on the heating setpoint after dt.
            let required = capacitance * (heat_sp - zone_temp) / dt - non_hvac_flux;
            out.heating_power = required.clamp(0.0, max_heating);
        } else if zone_temp > cool_sp + half_band {
            let required = capacitance * (zone_temp - cool_sp) / dt + non_hvac_flux;
            out.cooling_power = required.clamp(0.0, max_cooling);
        } else if zone_temp >= heat_sp - half_band && zone_temp <= heat_sp + half_band {
            // Holding at the heating setpoint: offset ongoing losses so
            // the zone does not sag below the band.
            if non_hvac_flux < 0.0 {
                out.heating_power = (-non_hvac_flux).min(max_heating);
            }
        } else if zone_temp >= cool_sp - half_band && zone_temp <= cool_sp + half_band {
            // Holding at the cooling setpoint against ongoing gains.
            if non_hvac_flux > 0.0 {
                out.cooling_power = non_hvac_flux.min(max_cooling);
            }
        }

        out.electric_power = out.heating_power / self.config.heating_cop
            + out.cooling_power / self.config.cooling_cop;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn plant() -> HvacPlant {
        HvacPlant::new(HvacPlantConfig::reference()).unwrap()
    }

    const C: f64 = 4.0e6;
    const DT: f64 = 60.0;
    const CAP: f64 = 8_000.0;

    #[test]
    fn heats_when_cold() {
        let out = plant()
            .respond(16.0, 21.0, 26.0, -500.0, C, DT, CAP, CAP)
            .unwrap();
        assert_eq!(out.heating_power, CAP); // 5 K in one minute: saturated
        assert_eq!(out.cooling_power, 0.0);
        assert!(out.electric_power > 0.0);
    }

    #[test]
    fn cools_when_hot() {
        let out = plant()
            .respond(29.0, 20.0, 25.0, 500.0, C, DT, CAP, CAP)
            .unwrap();
        assert!(out.cooling_power > 0.0);
        assert_eq!(out.heating_power, 0.0);
    }

    #[test]
    fn idles_in_comfort_band() {
        let out = plant()
            .respond(22.5, 20.0, 25.0, -500.0, C, DT, CAP, CAP)
            .unwrap();
        assert_eq!(out, HvacOutput::default());
    }

    #[test]
    fn holds_setpoint_against_losses() {
        // At the heating setpoint and losing 1 kW: the plant replaces
        // exactly the loss so the zone neither sags nor overshoots.
        let out = plant()
            .respond(20.0, 20.0, 26.0, -1000.0, C, DT, CAP, CAP)
            .unwrap();
        assert!((out.heating_power - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn lands_exactly_on_setpoint_when_capacity_allows() {
        // 0.2 K below over a long sub-step: required power is small and
        // not clamped, so the plant lands the zone exactly on the
        // setpoint.
        let t = 19.8;
        let sp = 20.0;
        let flux = -800.0;
        let dt = 900.0;
        let out = plant().respond(t, sp, 26.0, flux, C, dt, CAP, CAP).unwrap();
        let landed = t + (out.heating_power + flux) * dt / C;
        assert!((landed - sp).abs() < 1e-9, "landed at {landed}");
    }

    #[test]
    fn saturates_at_capacity() {
        let out = plant()
            .respond(5.0, 23.0, 30.0, -2000.0, C, DT, CAP, CAP)
            .unwrap();
        assert_eq!(out.heating_power, CAP);
    }

    #[test]
    fn inverted_setpoints_resolved_to_midpoint() {
        // heat=23 > cool=21: behaves like a single 22 °C setpoint.
        let heating = plant()
            .respond(20.0, 23.0, 21.0, 0.0, C, DT, CAP, CAP)
            .unwrap();
        assert!(heating.heating_power > 0.0);
        let cooling = plant()
            .respond(24.0, 23.0, 21.0, 0.0, C, DT, CAP, CAP)
            .unwrap();
        assert!(cooling.cooling_power > 0.0);
    }

    #[test]
    fn electricity_reflects_cop() {
        let config = HvacPlantConfig {
            heating_cop: 4.0,
            ..HvacPlantConfig::reference()
        };
        let plant = HvacPlant::new(config).unwrap();
        let out = plant
            .respond(10.0, 23.0, 30.0, 0.0, C, DT, CAP, CAP)
            .unwrap();
        assert!((out.electric_power - out.heating_power / 4.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_nan_inputs() {
        assert!(plant()
            .respond(f64::NAN, 20.0, 25.0, 0.0, C, DT, CAP, CAP)
            .is_err());
        assert!(plant()
            .respond(20.0, f64::INFINITY, 25.0, 0.0, C, DT, CAP, CAP)
            .is_err());
        assert!(plant()
            .respond(20.0, 20.0, 25.0, f64::NAN, C, DT, CAP, CAP)
            .is_err());
    }

    #[test]
    fn rejects_bad_config() {
        let bad = HvacPlantConfig {
            heating_cop: 0.0,
            ..HvacPlantConfig::reference()
        };
        assert!(HvacPlant::new(bad).is_err());
        let bad = HvacPlantConfig {
            deadband: -0.1,
            ..HvacPlantConfig::reference()
        };
        assert!(HvacPlant::new(bad).is_err());
    }

    proptest! {
        #[test]
        fn prop_never_heats_and_cools_simultaneously(
            t in -10.0f64..45.0,
            h in 15.0f64..23.0,
            c in 21.0f64..30.0,
            flux in -5_000.0f64..5_000.0,
        ) {
            let out = plant().respond(t, h, c, flux, C, DT, CAP, CAP).unwrap();
            prop_assert!(out.heating_power == 0.0 || out.cooling_power == 0.0);
        }

        #[test]
        fn prop_powers_within_capacity(
            t in -30.0f64..60.0,
            h in 15.0f64..23.0,
            c in 21.0f64..30.0,
            flux in -20_000.0f64..20_000.0,
            cap in 100.0f64..10_000.0,
        ) {
            let out = plant().respond(t, h, c, flux, C, DT, cap, cap).unwrap();
            prop_assert!((0.0..=cap).contains(&out.heating_power));
            prop_assert!((0.0..=cap).contains(&out.cooling_power));
            prop_assert!(out.electric_power >= 0.0);
        }

        #[test]
        fn prop_response_pushes_toward_comfort(
            t in -10.0f64..45.0,
            h in 15.0f64..23.0,
            c in 21.0f64..30.0,
            flux in -3_000.0f64..3_000.0,
        ) {
            prop_assume!(h <= c);
            let out = plant().respond(t, h, c, flux, C, DT, CAP, CAP).unwrap();
            if t < h - 0.2 {
                prop_assert!(out.net_thermal_power() >= 0.0);
            }
            if t > c + 0.2 {
                prop_assert!(out.net_thermal_power() <= 0.0);
            }
        }

        #[test]
        fn prop_never_overshoots_the_engaged_setpoint(
            t in -10.0f64..45.0,
            h in 15.0f64..23.0,
            c in 21.0f64..30.0,
            flux in -3_000.0f64..3_000.0,
        ) {
            prop_assume!(h <= c);
            let out = plant().respond(t, h, c, flux, C, DT, CAP, CAP).unwrap();
            let landed = t + (out.net_thermal_power() + flux) * DT / C;
            if out.heating_power > 0.0 && t < h - 0.1 {
                prop_assert!(landed <= h + 1e-9, "overshot to {landed} past {h}");
            }
            if out.cooling_power > 0.0 && t > c + 0.1 {
                prop_assert!(landed >= c - 1e-9, "undershot to {landed} past {c}");
            }
        }
    }
}
