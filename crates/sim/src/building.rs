//! The RC-network building model.
//!
//! The building is a graph of thermal zones. Each zone's air temperature
//! evolves by the lumped energy balance
//!
//! ```text
//! C_i dT_i/dt = UA_i (T_out − T_i)                    (envelope)
//!             + Σ_j U_ij (T_j − T_i)                  (inter-zone)
//!             + A_i · G_solar                          (solar gains)
//!             + q_occ · n_i + q_equip(occupied)        (internal gains)
//!             + Q_hvac,i                               (plant)
//! ```
//!
//! integrated with forward-Euler sub-steps inside each 15-minute control
//! step. Infiltration scales the envelope conductance mildly with wind
//! speed, which makes wind a genuine (if secondary) disturbance like in
//! the paper's Table 1.

use crate::hvac::{HvacOutput, HvacPlant, HvacPlantConfig};
use crate::time::STEP_SECONDS;
use crate::weather::WeatherSample;
use crate::zone::{ZoneConfig, ZoneState};
use crate::SimError;

/// Number of forward-Euler sub-steps per control step.
const SUBSTEPS: usize = 15;

/// Full description of a building: zones, adjacency, and plant.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildingConfig {
    /// Zone parameter blocks.
    pub zones: Vec<ZoneConfig>,
    /// Inter-zone conductances `(zone_a, zone_b, ua_watts_per_kelvin)`.
    /// Each pair should appear once; the coupling is symmetric.
    pub adjacency: Vec<(usize, usize, f64)>,
    /// Plant configuration shared by all zones.
    pub plant: HvacPlantConfig,
    /// Wind-speed infiltration coefficient: the envelope conductance is
    /// multiplied by `1 + wind_infiltration · wind_speed` (wind in m/s).
    pub wind_infiltration: f64,
    /// Initial temperature of every zone, °C.
    pub initial_temperature: f64,
}

impl BuildingConfig {
    /// The reference 463 m² five-zone office used throughout the paper's
    /// evaluation: one core zone surrounded by four perimeter zones, in
    /// the classic EnergyPlus "5ZoneAutoDXVAV" layout.
    pub fn five_zone_463m2() -> Self {
        let zones = vec![
            ZoneConfig::core("SPACE5-1", 182.0),
            ZoneConfig::perimeter("SPACE1-1", 99.0),
            ZoneConfig::perimeter("SPACE2-1", 42.0),
            ZoneConfig::perimeter("SPACE3-1", 96.0),
            ZoneConfig::perimeter("SPACE4-1", 44.0),
        ];
        // Core couples to every perimeter zone; neighboring perimeter
        // zones couple more weakly at their shared corners.
        let adjacency = vec![
            (0, 1, 160.0),
            (0, 2, 90.0),
            (0, 3, 155.0),
            (0, 4, 95.0),
            (1, 2, 25.0),
            (2, 3, 25.0),
            (3, 4, 25.0),
            (4, 1, 25.0),
        ];
        Self {
            zones,
            adjacency,
            plant: HvacPlantConfig::reference(),
            wind_infiltration: 0.03,
            initial_temperature: 20.0,
        }
    }

    /// A single-zone test building (useful for unit tests and analytical
    /// checks).
    pub fn single_zone() -> Self {
        Self {
            zones: vec![ZoneConfig::perimeter("ONLY", 100.0)],
            adjacency: Vec::new(),
            plant: HvacPlantConfig::reference(),
            wind_infiltration: 0.0,
            initial_temperature: 20.0,
        }
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Propagates zone/plant validation failures, and rejects empty zone
    /// lists, out-of-range adjacency indices, self-couplings and
    /// non-finite or negative conductances.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.zones.is_empty() {
            return Err(SimError::NoZones);
        }
        for z in &self.zones {
            z.validate()?;
        }
        self.plant.validate()?;
        let n = self.zones.len();
        for &(a, b, ua) in &self.adjacency {
            if a >= n || b >= n || a == b {
                return Err(SimError::BadAdjacency { a, b, zones: n });
            }
            if !(ua >= 0.0) || !ua.is_finite() {
                return Err(SimError::InvalidConfig {
                    field: "adjacency conductance",
                    value: ua,
                });
            }
        }
        if !(self.wind_infiltration >= 0.0) || !self.wind_infiltration.is_finite() {
            return Err(SimError::InvalidConfig {
                field: "wind_infiltration",
                value: self.wind_infiltration,
            });
        }
        if !self.initial_temperature.is_finite() {
            return Err(SimError::InvalidConfig {
                field: "initial_temperature",
                value: self.initial_temperature,
            });
        }
        Ok(())
    }

    /// Total conditioned floor area, m².
    pub fn total_floor_area(&self) -> f64 {
        self.zones.iter().map(|z| z.floor_area).sum()
    }
}

/// Outcome of one control step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Zone air temperatures after the step, °C.
    pub zone_temperatures: Vec<f64>,
    /// Plant output per zone (power averaged over the step).
    pub hvac: Vec<HvacOutput>,
    /// Electrical energy consumed this step, kWh.
    pub electric_energy_kwh: f64,
    /// Thermal energy delivered (|heating| + |cooling|) this step, kWh.
    pub thermal_energy_kwh: f64,
}

/// A stateful building simulation.
///
/// # Example
///
/// ```
/// use hvac_sim::{Building, BuildingConfig, WeatherSample};
///
/// # fn main() -> Result<(), hvac_sim::SimError> {
/// let mut b = Building::new(BuildingConfig::single_zone())?;
/// let cold = WeatherSample { outdoor_temperature: -5.0, ..WeatherSample::default() };
/// // With a 21 °C heating setpoint the zone is kept warm.
/// for _ in 0..96 {
///     b.step(&cold, &[0.0], &[(21.0, 26.0)])?;
/// }
/// assert!(b.zone_temperature(0) > 19.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Building {
    config: BuildingConfig,
    plant: HvacPlant,
    states: Vec<ZoneState>,
}

impl Building {
    /// Creates a building from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns any error from [`BuildingConfig::validate`].
    pub fn new(config: BuildingConfig) -> Result<Self, SimError> {
        config.validate()?;
        let plant = HvacPlant::new(config.plant)?;
        let states = vec![ZoneState::at(config.initial_temperature); config.zones.len()];
        Ok(Self {
            config,
            plant,
            states,
        })
    }

    /// The building configuration.
    pub fn config(&self) -> &BuildingConfig {
        &self.config
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.config.zones.len()
    }

    /// Current temperature of zone `i`, °C.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn zone_temperature(&self, i: usize) -> f64 {
        self.states[i].temperature
    }

    /// All current zone temperatures.
    pub fn zone_temperatures(&self) -> Vec<f64> {
        self.states.iter().map(|s| s.temperature).collect()
    }

    /// Overwrites all zone temperatures (used to reset episodes or to
    /// branch counterfactual rollouts).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZoneCountMismatch`] if the slice length is
    /// wrong, or [`SimError::NonFiniteInput`] for NaN/inf entries.
    pub fn set_zone_temperatures(&mut self, temps: &[f64]) -> Result<(), SimError> {
        if temps.len() != self.states.len() {
            return Err(SimError::ZoneCountMismatch {
                expected: self.states.len(),
                got: temps.len(),
            });
        }
        if temps.iter().any(|t| !t.is_finite()) {
            return Err(SimError::NonFiniteInput {
                what: "zone temperature",
            });
        }
        for (s, &t) in self.states.iter_mut().zip(temps) {
            s.temperature = t;
        }
        Ok(())
    }

    /// Resets every zone to the configured initial temperature.
    pub fn reset(&mut self) {
        for s in &mut self.states {
            s.temperature = self.config.initial_temperature;
        }
    }

    /// Advances the building by one 15-minute control step.
    ///
    /// `occupants[i]` is the occupant count of zone `i`;
    /// `setpoints[i] = (heating_setpoint, cooling_setpoint)` commands the
    /// plant for zone `i`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZoneCountMismatch`] when slice lengths differ
    /// from the zone count, and [`SimError::NonFiniteInput`] for
    /// non-finite weather or setpoint values.
    pub fn step(
        &mut self,
        weather: &WeatherSample,
        occupants: &[f64],
        setpoints: &[(f64, f64)],
    ) -> Result<StepResult, SimError> {
        let n = self.zone_count();
        if occupants.len() != n {
            return Err(SimError::ZoneCountMismatch {
                expected: n,
                got: occupants.len(),
            });
        }
        if setpoints.len() != n {
            return Err(SimError::ZoneCountMismatch {
                expected: n,
                got: setpoints.len(),
            });
        }
        if !weather.outdoor_temperature.is_finite()
            || !weather.solar_radiation.is_finite()
            || !weather.wind_speed.is_finite()
            || !weather.relative_humidity.is_finite()
        {
            return Err(SimError::NonFiniteInput { what: "weather" });
        }
        // A NaN occupant count would otherwise flow through the gain
        // terms into the zone flux and poison the RC state silently.
        if occupants.iter().any(|o| !o.is_finite()) {
            return Err(SimError::NonFiniteInput { what: "occupants" });
        }

        let dt = STEP_SECONDS / SUBSTEPS as f64;
        let infiltration = 1.0 + self.config.wind_infiltration * weather.wind_speed.max(0.0);
        let occupied_any = occupants.iter().any(|&o| o > 0.0);

        let mut avg_hvac = vec![HvacOutput::default(); n];

        for _ in 0..SUBSTEPS {
            // Energy balance without HVAC on a frozen temperature field
            // (explicit Euler).
            let temps: Vec<f64> = self.states.iter().map(|s| s.temperature).collect();
            let mut flux = vec![0.0f64; n];
            for i in 0..n {
                let z = &self.config.zones[i];
                flux[i] += z.envelope_ua * infiltration * (weather.outdoor_temperature - temps[i]);
                flux[i] += z.solar_aperture * weather.solar_radiation;
                flux[i] += z.gain_per_occupant * occupants[i];
                if occupied_any {
                    flux[i] += z.equipment_gain;
                }
            }
            for &(a, b, ua) in &self.config.adjacency {
                let q = ua * (temps[b] - temps[a]);
                flux[a] += q;
                flux[b] -= q;
            }

            // Ideal-loads plant response given the current flux.
            for i in 0..n {
                let z = &self.config.zones[i];
                let (h_sp, c_sp) = setpoints[i];
                let out = self.plant.respond(
                    temps[i],
                    h_sp,
                    c_sp,
                    flux[i],
                    z.capacitance,
                    dt,
                    z.max_heating_power,
                    z.max_cooling_power,
                )?;
                flux[i] += out.net_thermal_power();
                avg_hvac[i].heating_power += out.heating_power / SUBSTEPS as f64;
                avg_hvac[i].cooling_power += out.cooling_power / SUBSTEPS as f64;
                avg_hvac[i].electric_power += out.electric_power / SUBSTEPS as f64;
            }

            for (i, state) in self.states.iter_mut().enumerate() {
                state.temperature += flux[i] * dt / self.config.zones[i].capacitance;
            }
        }

        let electric_w: f64 = avg_hvac.iter().map(|h| h.electric_power).sum();
        let thermal_w: f64 = avg_hvac
            .iter()
            .map(|h| h.heating_power + h.cooling_power)
            .sum();
        Ok(StepResult {
            zone_temperatures: self.zone_temperatures(),
            hvac: avg_hvac,
            electric_energy_kwh: electric_w * STEP_SECONDS / 3.6e6,
            thermal_energy_kwh: thermal_w * STEP_SECONDS / 3.6e6,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cold() -> WeatherSample {
        WeatherSample {
            outdoor_temperature: -5.0,
            ..WeatherSample::default()
        }
    }

    fn hot() -> WeatherSample {
        WeatherSample {
            outdoor_temperature: 38.0,
            solar_radiation: 600.0,
            ..WeatherSample::default()
        }
    }

    const OFF: (f64, f64) = (15.0, 30.0);

    #[test]
    fn five_zone_config_validates() {
        assert!(BuildingConfig::five_zone_463m2().validate().is_ok());
        let area = BuildingConfig::five_zone_463m2().total_floor_area();
        assert!((area - 463.0).abs() < 1.0);
    }

    #[test]
    fn empty_building_rejected() {
        let mut c = BuildingConfig::single_zone();
        c.zones.clear();
        assert_eq!(Building::new(c).err(), Some(SimError::NoZones));
    }

    #[test]
    fn bad_adjacency_rejected() {
        let mut c = BuildingConfig::single_zone();
        c.adjacency.push((0, 5, 10.0));
        assert!(matches!(c.validate(), Err(SimError::BadAdjacency { .. })));
        let mut c = BuildingConfig::five_zone_463m2();
        c.adjacency.push((2, 2, 10.0));
        assert!(c.validate().is_err());
    }

    #[test]
    fn free_float_cools_toward_outdoor() {
        let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
        let start = b.zone_temperature(0);
        for _ in 0..96 {
            b.step(&cold(), &[0.0], &[OFF]).unwrap();
        }
        let end = b.zone_temperature(0);
        assert!(end < start);
        assert!(end > cold().outdoor_temperature);
    }

    #[test]
    fn heating_setpoint_is_tracked() {
        let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
        for _ in 0..96 {
            b.step(&cold(), &[0.0], &[(21.0, 26.0)]).unwrap();
        }
        let t = b.zone_temperature(0);
        assert!((20.0..22.0).contains(&t), "tracked to {t}");
    }

    #[test]
    fn cooling_setpoint_is_tracked() {
        let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
        b.set_zone_temperatures(&[30.0]).unwrap();
        for _ in 0..96 {
            b.step(&hot(), &[0.0], &[(15.0, 24.0)]).unwrap();
        }
        let t = b.zone_temperature(0);
        assert!((23.0..25.5).contains(&t), "tracked to {t}");
    }

    #[test]
    fn higher_heating_setpoint_uses_more_energy() {
        let energy = |sp: f64| {
            let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
            let mut total = 0.0;
            for _ in 0..96 {
                total += b
                    .step(&cold(), &[0.0], &[(sp, 30.0)])
                    .unwrap()
                    .electric_energy_kwh;
            }
            total
        };
        assert!(energy(23.0) > energy(18.0));
        assert!(energy(18.0) > energy(15.0) - 1e-12);
    }

    #[test]
    fn occupants_warm_the_zone() {
        let run = |occ: f64| {
            let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
            for _ in 0..96 {
                b.step(&cold(), &[occ], &[OFF]).unwrap();
            }
            b.zone_temperature(0)
        };
        assert!(run(20.0) > run(0.0));
    }

    #[test]
    fn solar_warms_the_zone() {
        let run = |ghi: f64| {
            let w = WeatherSample {
                outdoor_temperature: 0.0,
                solar_radiation: ghi,
                ..WeatherSample::default()
            };
            let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
            for _ in 0..96 {
                b.step(&w, &[0.0], &[OFF]).unwrap();
            }
            b.zone_temperature(0)
        };
        assert!(run(500.0) > run(0.0) + 0.5);
    }

    #[test]
    fn wind_increases_heat_loss() {
        let run = |wind: f64| {
            let w = WeatherSample {
                outdoor_temperature: -10.0,
                wind_speed: wind,
                ..WeatherSample::default()
            };
            let mut c = BuildingConfig::single_zone();
            c.wind_infiltration = 0.05;
            let mut b = Building::new(c).unwrap();
            for _ in 0..96 {
                b.step(&w, &[0.0], &[OFF]).unwrap();
            }
            b.zone_temperature(0)
        };
        assert!(run(10.0) < run(0.0));
    }

    #[test]
    fn interzone_coupling_equalizes() {
        let mut c = BuildingConfig::five_zone_463m2();
        c.wind_infiltration = 0.0;
        let mut b = Building::new(c).unwrap();
        b.set_zone_temperatures(&[25.0, 15.0, 20.0, 20.0, 20.0])
            .unwrap();
        let mild = WeatherSample {
            outdoor_temperature: 20.0,
            ..WeatherSample::default()
        };
        for _ in 0..48 {
            b.step(&mild, &[0.0; 5], &[OFF; 5]).unwrap();
        }
        let temps = b.zone_temperatures();
        let spread = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - temps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 5.0, "zones failed to equalize: {temps:?}");
    }

    #[test]
    fn step_rejects_wrong_lengths() {
        let mut b = Building::new(BuildingConfig::five_zone_463m2()).unwrap();
        let w = WeatherSample::default();
        assert!(matches!(
            b.step(&w, &[0.0; 3], &[OFF; 5]),
            Err(SimError::ZoneCountMismatch {
                expected: 5,
                got: 3
            })
        ));
        assert!(b.step(&w, &[0.0; 5], &[OFF; 2]).is_err());
    }

    #[test]
    fn step_rejects_nan_weather() {
        let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
        let w = WeatherSample {
            outdoor_temperature: f64::NAN,
            ..WeatherSample::default()
        };
        assert!(b.step(&w, &[0.0], &[OFF]).is_err());
        let w = WeatherSample {
            relative_humidity: f64::INFINITY,
            ..WeatherSample::default()
        };
        assert!(b.step(&w, &[0.0], &[OFF]).is_err());
    }

    #[test]
    fn faulted_inputs_cannot_poison_the_rc_state() {
        // A rejected step must leave the thermal state untouched — a
        // fault-injected NaN anywhere in the inputs produces an error,
        // never a silently corrupted zone temperature.
        let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
        let w = WeatherSample::default();
        let before = b.zone_temperatures().to_vec();

        assert!(matches!(
            b.step(&w, &[f64::NAN], &[OFF]),
            Err(SimError::NonFiniteInput { what: "occupants" })
        ));
        assert!(b.step(&w, &[f64::INFINITY], &[OFF]).is_err());
        assert!(b.step(&w, &[0.0], &[(f64::NAN, 30.0)]).is_err());
        assert!(b.step(&w, &[0.0], &[(15.0, f64::NEG_INFINITY)]).is_err());

        assert_eq!(b.zone_temperatures(), before.as_slice());
        // And a good step still works afterwards.
        assert!(b.step(&w, &[0.0], &[OFF]).is_ok());
        assert!(b.zone_temperature(0).is_finite());
    }

    #[test]
    fn reset_restores_initial_temperature() {
        let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
        b.set_zone_temperatures(&[5.0]).unwrap();
        b.reset();
        assert_eq!(b.zone_temperature(0), 20.0);
    }

    #[test]
    fn set_temperatures_rejects_nan() {
        let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
        assert!(b.set_zone_temperatures(&[f64::NAN]).is_err());
    }

    #[test]
    fn energy_meter_is_zero_when_plant_idle() {
        let mut b = Building::new(BuildingConfig::single_zone()).unwrap();
        let mild = WeatherSample {
            outdoor_temperature: 20.0,
            ..WeatherSample::default()
        };
        let r = b.step(&mild, &[0.0], &[OFF]).unwrap();
        assert_eq!(r.electric_energy_kwh, 0.0);
        assert_eq!(r.thermal_energy_kwh, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_temperatures_bounded_for_bounded_inputs(
            t_out in -30.0f64..45.0,
            ghi in 0.0f64..1000.0,
            occ in 0.0f64..30.0,
            h_sp in 15.0f64..23.0,
            c_sp in 21.0f64..30.0,
            steps in 1usize..300,
        ) {
            let w = WeatherSample {
                outdoor_temperature: t_out,
                solar_radiation: ghi,
                ..WeatherSample::default()
            };
            let mut b = Building::new(BuildingConfig::five_zone_463m2()).unwrap();
            for _ in 0..steps {
                b.step(&w, &[occ; 5], &[(h_sp, c_sp); 5]).unwrap();
            }
            for t in b.zone_temperatures() {
                prop_assert!(t.is_finite());
                prop_assert!((-40.0..70.0).contains(&t), "temperature diverged: {}", t);
            }
        }

        #[test]
        fn prop_energy_nonnegative(
            t_out in -30.0f64..45.0,
            h_sp in 15.0f64..23.0,
            c_sp in 21.0f64..30.0,
        ) {
            let w = WeatherSample {
                outdoor_temperature: t_out,
                ..WeatherSample::default()
            };
            let mut b = Building::new(BuildingConfig::five_zone_463m2()).unwrap();
            let r = b.step(&w, &[0.0; 5], &[(h_sp, c_sp); 5]).unwrap();
            prop_assert!(r.electric_energy_kwh >= 0.0);
            prop_assert!(r.thermal_energy_kwh >= 0.0);
        }
    }
}
