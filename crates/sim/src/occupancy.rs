//! Occupancy schedules.
//!
//! "Zone People Occupant Count" is one of the paper's disturbance
//! variables (Table 1), and occupancy gates the reward's energy/comfort
//! trade-off: the paper sets the energy weight `w_e = 0.01` during
//! occupied periods and `w_e = 1` when the building is empty
//! (Section 2.1). This module provides a deterministic office schedule
//! for the five-zone building plus building blocks for custom schedules.

use crate::time::SimClock;

/// Number of zones in the reference building.
pub const ZONE_COUNT: usize = 5;

/// A weekly occupancy schedule producing per-zone occupant counts.
///
/// The default [`OccupancySchedule::office`] models a 463 m² five-zone
/// office: occupied 08:00–18:00 on weekdays with a partial lunch dip,
/// empty on weekends — mirroring the Sinergym 5Zone environment's
/// schedule the paper inherits.
///
/// # Example
///
/// ```
/// use hvac_sim::{OccupancySchedule, SimClock};
///
/// let schedule = OccupancySchedule::office();
/// let mut clock = SimClock::january(); // Jan 1 2021 is a Friday
/// clock.advance_by(40); // 10:00
/// assert!(schedule.is_occupied(&clock));
/// assert!(schedule.occupants(&clock).iter().sum::<f64>() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySchedule {
    /// Peak occupant count per zone while fully occupied.
    peak: [f64; ZONE_COUNT],
    /// Occupied window on weekdays (start hour inclusive, end exclusive).
    start_hour: f64,
    end_hour: f64,
    /// Fraction of peak occupancy during the lunch dip (12:00–13:00).
    lunch_fraction: f64,
    /// Whether weekends are occupied at all.
    weekends_occupied: bool,
}

impl OccupancySchedule {
    /// The reference office schedule: 08:00–18:00 weekdays, lunch dip to
    /// 60%, empty weekends. Peak headcounts are proportional to zone
    /// floor areas (core zone largest).
    pub fn office() -> Self {
        Self {
            peak: [12.0, 5.0, 5.0, 4.0, 4.0],
            start_hour: 8.0,
            end_hour: 18.0,
            lunch_fraction: 0.6,
            weekends_occupied: false,
        }
    }

    /// An always-empty schedule (useful for free-floating tests).
    pub fn unoccupied() -> Self {
        Self {
            peak: [0.0; ZONE_COUNT],
            start_hour: 0.0,
            end_hour: 0.0,
            lunch_fraction: 0.0,
            weekends_occupied: false,
        }
    }

    /// A custom schedule.
    ///
    /// `start_hour`/`end_hour` bound the weekday occupied window;
    /// `lunch_fraction` scales occupancy during 12:00–13:00.
    pub fn custom(
        peak: [f64; ZONE_COUNT],
        start_hour: f64,
        end_hour: f64,
        lunch_fraction: f64,
        weekends_occupied: bool,
    ) -> Self {
        Self {
            peak,
            start_hour,
            end_hour,
            lunch_fraction: lunch_fraction.clamp(0.0, 1.0),
            weekends_occupied,
        }
    }

    /// Whether the building counts as occupied at this time (any zone has
    /// nonzero expected occupancy).
    pub fn is_occupied(&self, clock: &SimClock) -> bool {
        self.occupancy_fraction(clock) > 0.0 && self.peak.iter().any(|&p| p > 0.0)
    }

    /// Fraction of peak occupancy in effect at this time, in `[0, 1]`.
    pub fn occupancy_fraction(&self, clock: &SimClock) -> f64 {
        if clock.is_weekend() && !self.weekends_occupied {
            return 0.0;
        }
        self.weekday_fraction(clock.hour_of_day())
    }

    /// Fraction of peak occupancy at `hour` on a working day (ignores
    /// weekends). This is the schedule knowledge an MPC planner can use
    /// when it knows the time of day but not the calendar date.
    pub fn weekday_fraction(&self, hour: f64) -> f64 {
        let h = hour.rem_euclid(24.0);
        if h < self.start_hour || h >= self.end_hour {
            return 0.0;
        }
        if (12.0..13.0).contains(&h) {
            return self.lunch_fraction;
        }
        1.0
    }

    /// Expected occupant count per zone at this time.
    pub fn occupants(&self, clock: &SimClock) -> [f64; ZONE_COUNT] {
        let f = self.occupancy_fraction(clock);
        let mut out = [0.0; ZONE_COUNT];
        for (o, &p) in out.iter_mut().zip(&self.peak) {
            *o = p * f;
        }
        out
    }

    /// Total expected occupant count across zones at this time.
    pub fn total_occupants(&self, clock: &SimClock) -> f64 {
        self.occupants(clock).iter().sum()
    }

    /// Peak per-zone occupant counts.
    pub fn peak(&self) -> &[f64; ZONE_COUNT] {
        &self.peak
    }
}

impl Default for OccupancySchedule {
    fn default() -> Self {
        Self::office()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::STEPS_PER_DAY;
    use proptest::prelude::*;

    fn clock_at(day: usize, hour: f64) -> SimClock {
        let mut c = SimClock::january();
        c.advance_by(day * STEPS_PER_DAY + (hour * 4.0) as usize);
        c
    }

    #[test]
    fn weekday_business_hours_occupied() {
        let s = OccupancySchedule::office();
        // Jan 1 2021 = Friday.
        assert!(s.is_occupied(&clock_at(0, 10.0)));
        assert_eq!(s.occupancy_fraction(&clock_at(0, 10.0)), 1.0);
    }

    #[test]
    fn night_unoccupied() {
        let s = OccupancySchedule::office();
        assert!(!s.is_occupied(&clock_at(0, 3.0)));
        assert!(!s.is_occupied(&clock_at(0, 22.0)));
    }

    #[test]
    fn weekend_unoccupied() {
        let s = OccupancySchedule::office();
        // Jan 2 2021 = Saturday.
        assert!(!s.is_occupied(&clock_at(1, 10.0)));
        assert_eq!(s.total_occupants(&clock_at(1, 10.0)), 0.0);
    }

    #[test]
    fn lunch_dip_applies() {
        let s = OccupancySchedule::office();
        let noon = s.occupancy_fraction(&clock_at(0, 12.25));
        assert!((noon - 0.6).abs() < 1e-12);
    }

    #[test]
    fn boundary_hours() {
        let s = OccupancySchedule::office();
        assert!(s.is_occupied(&clock_at(0, 8.0)));
        assert!(!s.is_occupied(&clock_at(0, 18.0)));
        assert!(!s.is_occupied(&clock_at(0, 7.75)));
    }

    #[test]
    fn unoccupied_schedule_is_always_empty() {
        let s = OccupancySchedule::unoccupied();
        for day in 0..7 {
            for h in 0..24 {
                assert!(!s.is_occupied(&clock_at(day, h as f64)));
            }
        }
    }

    #[test]
    fn occupants_scale_with_peak() {
        let s = OccupancySchedule::custom([10.0, 0.0, 0.0, 0.0, 0.0], 0.0, 24.0, 1.0, true);
        let o = s.occupants(&clock_at(1, 12.5)); // weekend, but weekends_occupied
        assert_eq!(o[0], 10.0);
        assert_eq!(o[1], 0.0);
    }

    #[test]
    fn custom_clamps_lunch_fraction() {
        let s = OccupancySchedule::custom([1.0; 5], 8.0, 18.0, 7.0, false);
        assert!(s.occupancy_fraction(&clock_at(0, 12.5)) <= 1.0);
    }

    proptest! {
        #[test]
        fn prop_fraction_in_unit_interval(day in 0usize..31, step in 0usize..STEPS_PER_DAY) {
            let s = OccupancySchedule::office();
            let mut c = SimClock::january();
            c.advance_by(day * STEPS_PER_DAY + step);
            let f = s.occupancy_fraction(&c);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn prop_occupants_nonnegative(day in 0usize..31, step in 0usize..STEPS_PER_DAY) {
            let s = OccupancySchedule::office();
            let mut c = SimClock::january();
            c.advance_by(day * STEPS_PER_DAY + step);
            for o in s.occupants(&c) {
                prop_assert!(o >= 0.0);
            }
        }
    }
}
