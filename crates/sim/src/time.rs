//! Simulation time bookkeeping.
//!
//! The paper simulates January at 15-minute control steps. [`SimClock`]
//! tracks the step index and exposes the calendar quantities the rest of
//! the workspace needs: hour-of-day (for diurnal weather cycles and
//! occupancy schedules), day-of-month, weekday, and fractional day-of-year
//! (for solar geometry).

/// Seconds per control step (15 minutes).
pub const STEP_SECONDS: f64 = 900.0;

/// Control steps per day (96 at 15-minute resolution).
pub const STEPS_PER_DAY: usize = 96;

/// A deterministic simulation clock at 15-minute resolution.
///
/// Day 0 is January 1st and is a Friday by convention (matching 2021,
/// the TMY3 weather year used by the paper's Sinergym environment).
///
/// # Example
///
/// ```
/// use hvac_sim::SimClock;
///
/// let mut clock = SimClock::january();
/// assert_eq!(clock.day(), 0);
/// assert_eq!(clock.hour_of_day(), 0.0);
/// for _ in 0..96 {
///     clock.advance();
/// }
/// assert_eq!(clock.day(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimClock {
    step: usize,
    /// Weekday of day 0, with 0 = Monday .. 6 = Sunday.
    first_weekday: u8,
    /// Day-of-year of day 0 (0-based).
    first_day_of_year: u16,
}

impl SimClock {
    /// A clock starting January 1st (day-of-year 0), which in 2021 was a
    /// Friday (`weekday = 4`).
    pub fn january() -> Self {
        Self {
            step: 0,
            first_weekday: 4,
            first_day_of_year: 0,
        }
    }

    /// A clock starting July 1st (day-of-year 181 in a non-leap year),
    /// which in 2021 was a Thursday (`weekday = 3`). Used by the
    /// summer-season scenarios (the paper's summer comfort range is
    /// `[23, 26]` °C).
    pub fn july() -> Self {
        Self {
            step: 0,
            first_weekday: 3,
            first_day_of_year: 181,
        }
    }

    /// A clock with an explicit first weekday (0 = Monday .. 6 = Sunday)
    /// and day-of-year of day 0.
    pub fn with_start(first_weekday: u8, first_day_of_year: u16) -> Self {
        Self {
            step: 0,
            first_weekday: first_weekday % 7,
            first_day_of_year,
        }
    }

    /// Global step index since the start of the simulation.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Advances the clock by one control step.
    pub fn advance(&mut self) {
        self.step += 1;
    }

    /// Advances the clock by `n` control steps.
    pub fn advance_by(&mut self, n: usize) {
        self.step += n;
    }

    /// Resets the clock to step 0.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Simulated day index (0-based).
    pub fn day(&self) -> usize {
        self.step / STEPS_PER_DAY
    }

    /// Step index within the current day, `0..STEPS_PER_DAY`.
    pub fn step_of_day(&self) -> usize {
        self.step % STEPS_PER_DAY
    }

    /// Fractional hour of day in `[0, 24)`.
    pub fn hour_of_day(&self) -> f64 {
        self.step_of_day() as f64 * STEP_SECONDS / 3600.0
    }

    /// Weekday of the current day, 0 = Monday .. 6 = Sunday.
    pub fn weekday(&self) -> u8 {
        ((self.first_weekday as usize + self.day()) % 7) as u8
    }

    /// Whether the current day is Saturday or Sunday.
    pub fn is_weekend(&self) -> bool {
        self.weekday() >= 5
    }

    /// Day of year (0-based) of the current day.
    pub fn day_of_year(&self) -> u16 {
        self.first_day_of_year + self.day() as u16
    }

    /// Elapsed simulated seconds since step 0.
    pub fn elapsed_seconds(&self) -> f64 {
        self.step as f64 * STEP_SECONDS
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::january()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn january_first_is_friday() {
        let clock = SimClock::january();
        assert_eq!(clock.weekday(), 4);
        assert!(!clock.is_weekend());
    }

    #[test]
    fn second_of_january_2021_is_saturday() {
        let mut clock = SimClock::january();
        clock.advance_by(STEPS_PER_DAY);
        assert_eq!(clock.weekday(), 5);
        assert!(clock.is_weekend());
    }

    #[test]
    fn hour_of_day_quarter_steps() {
        let mut clock = SimClock::january();
        clock.advance();
        assert!((clock.hour_of_day() - 0.25).abs() < 1e-12);
        clock.advance_by(3);
        assert!((clock.hour_of_day() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weekday_wraps_over_week() {
        let mut clock = SimClock::with_start(0, 0);
        clock.advance_by(7 * STEPS_PER_DAY);
        assert_eq!(clock.weekday(), 0);
    }

    #[test]
    fn reset_returns_to_step_zero() {
        let mut clock = SimClock::january();
        clock.advance_by(500);
        clock.reset();
        assert_eq!(clock.step(), 0);
    }

    #[test]
    fn july_clock_starts_midsummer() {
        let clock = SimClock::july();
        assert_eq!(clock.day_of_year(), 181);
        assert_eq!(clock.weekday(), 3); // Thursday, July 1st 2021
    }

    #[test]
    fn day_of_year_advances() {
        let mut clock = SimClock::with_start(0, 10);
        assert_eq!(clock.day_of_year(), 10);
        clock.advance_by(2 * STEPS_PER_DAY);
        assert_eq!(clock.day_of_year(), 12);
    }

    proptest! {
        #[test]
        fn prop_hour_in_range(n in 0usize..100_000) {
            let mut clock = SimClock::january();
            clock.advance_by(n);
            let h = clock.hour_of_day();
            prop_assert!((0.0..24.0).contains(&h));
        }

        #[test]
        fn prop_weekday_in_range(n in 0usize..100_000, w in 0u8..7) {
            let mut clock = SimClock::with_start(w, 0);
            clock.advance_by(n);
            prop_assert!(clock.weekday() < 7);
        }

        #[test]
        fn prop_elapsed_matches_step(n in 0usize..10_000) {
            let mut clock = SimClock::january();
            clock.advance_by(n);
            prop_assert!((clock.elapsed_seconds() - n as f64 * STEP_SECONDS).abs() < 1e-9);
        }
    }
}
