//! Synthetic TMY-like weather generation.
//!
//! The paper drives its simulations with 2021 TMY3 weather for Pittsburgh
//! (ASHRAE climate 4A), Tucson (2B), and — for the Fig. 3 noise-level
//! study — New York (also 4A). We cannot ship TMY3 files, so this module
//! generates statistically similar weather: a deterministic seasonal +
//! diurnal backbone per climate preset, plus an AR(1) synoptic process
//! (multi-day warm/cold spells), AR(1) high-frequency noise, stochastic
//! cloud cover modulating clear-sky solar irradiance, and co-generated
//! relative humidity and wind speed.
//!
//! What matters for the paper's experiments is that (a) the two target
//! cities have clearly distinct marginal weather distributions, and
//! (b) Pittsburgh and New York have *similar* distributions (they share a
//! climate class) — both properties hold by construction of the presets.

use crate::solar;
use crate::time::SimClock;
use hvac_stats::{sample_standard_normal, seeded_rng};
use rand::rngs::StdRng;
use rand::Rng;

/// One step of weather, matching the disturbance variables of the paper's
/// Table 1 (occupancy is produced separately by
/// [`crate::occupancy::OccupancySchedule`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherSample {
    /// Outdoor air drybulb temperature, °C.
    pub outdoor_temperature: f64,
    /// Outdoor air relative humidity, %.
    pub relative_humidity: f64,
    /// Site wind speed, m/s.
    pub wind_speed: f64,
    /// Site total (global horizontal) radiation rate per area, W/m².
    pub solar_radiation: f64,
}

impl Default for WeatherSample {
    fn default() -> Self {
        Self {
            outdoor_temperature: 0.0,
            relative_humidity: 50.0,
            wind_speed: 3.0,
            solar_radiation: 0.0,
        }
    }
}

/// Climate parameters for a city in a given simulated month.
///
/// Presets are calibrated to January conditions of the cities the paper
/// uses. Construct custom climates with [`ClimatePreset::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClimatePreset {
    /// Human-readable city name.
    pub name: String,
    /// ASHRAE 169 climate-zone label (e.g. `"4A"`).
    pub ashrae_zone: String,
    /// Site latitude in degrees (drives solar geometry).
    pub latitude_deg: f64,
    /// Monthly mean outdoor temperature, °C.
    pub mean_temperature: f64,
    /// Half peak-to-peak amplitude of the diurnal temperature cycle, °C.
    pub diurnal_amplitude: f64,
    /// Standard deviation of the multi-day synoptic process, °C.
    pub synoptic_std: f64,
    /// e-folding time of the synoptic process, in days.
    pub synoptic_timescale_days: f64,
    /// Standard deviation of fast (step-scale) temperature noise, °C.
    pub noise_std: f64,
    /// Mean relative humidity, %.
    pub mean_humidity: f64,
    /// Humidity response to temperature anomaly, %/°C (usually negative).
    pub humidity_temp_coupling: f64,
    /// Mean wind speed, m/s.
    pub mean_wind: f64,
    /// Mean cloud-cover fraction in `[0, 1]` (0 = always clear).
    pub mean_cloud_cover: f64,
    /// Variability of cloud cover in `[0, 1]`.
    pub cloud_variability: f64,
}

impl ClimatePreset {
    /// Pittsburgh, PA in January — ASHRAE 4A (mixed-humid): cold, cloudy
    /// winters.
    pub fn pittsburgh_4a() -> Self {
        Self {
            name: "Pittsburgh".to_string(),
            ashrae_zone: "4A".to_string(),
            latitude_deg: 40.44,
            mean_temperature: -1.5,
            diurnal_amplitude: 3.5,
            synoptic_std: 4.5,
            synoptic_timescale_days: 3.0,
            noise_std: 0.4,
            mean_humidity: 70.0,
            humidity_temp_coupling: -1.2,
            mean_wind: 4.2,
            mean_cloud_cover: 0.65,
            cloud_variability: 0.25,
        }
    }

    /// Tucson, AZ in January — ASHRAE 2B (hot-dry): mild, sunny winters.
    pub fn tucson_2b() -> Self {
        Self {
            name: "Tucson".to_string(),
            ashrae_zone: "2B".to_string(),
            latitude_deg: 32.25,
            mean_temperature: 11.0,
            diurnal_amplitude: 7.5,
            synoptic_std: 2.5,
            synoptic_timescale_days: 4.0,
            noise_std: 0.3,
            mean_humidity: 45.0,
            humidity_temp_coupling: -1.5,
            mean_wind: 3.0,
            mean_cloud_cover: 0.2,
            cloud_variability: 0.15,
        }
    }

    /// New York, NY in January — ASHRAE 4A, deliberately close to
    /// Pittsburgh (the Fig. 3 argument depends on this similarity).
    pub fn new_york_4a() -> Self {
        Self {
            name: "New York".to_string(),
            ashrae_zone: "4A".to_string(),
            latitude_deg: 40.71,
            mean_temperature: 0.5,
            diurnal_amplitude: 3.0,
            synoptic_std: 4.0,
            synoptic_timescale_days: 3.0,
            noise_std: 0.4,
            mean_humidity: 62.0,
            humidity_temp_coupling: -1.2,
            mean_wind: 5.0,
            mean_cloud_cover: 0.55,
            cloud_variability: 0.25,
        }
    }

    /// Pittsburgh in July — warm and humid (summer-season scenarios).
    pub fn pittsburgh_4a_july() -> Self {
        Self {
            name: "Pittsburgh (July)".to_string(),
            ashrae_zone: "4A".to_string(),
            latitude_deg: 40.44,
            mean_temperature: 23.0,
            diurnal_amplitude: 5.0,
            synoptic_std: 2.5,
            synoptic_timescale_days: 3.0,
            noise_std: 0.4,
            mean_humidity: 68.0,
            humidity_temp_coupling: -1.2,
            mean_wind: 3.2,
            mean_cloud_cover: 0.45,
            cloud_variability: 0.25,
        }
    }

    /// Tucson in July — hot desert summer (monsoon humidity bump).
    pub fn tucson_2b_july() -> Self {
        Self {
            name: "Tucson (July)".to_string(),
            ashrae_zone: "2B".to_string(),
            latitude_deg: 32.25,
            mean_temperature: 31.5,
            diurnal_amplitude: 6.5,
            synoptic_std: 1.8,
            synoptic_timescale_days: 4.0,
            noise_std: 0.3,
            mean_humidity: 38.0,
            humidity_temp_coupling: -1.0,
            mean_wind: 3.3,
            mean_cloud_cover: 0.3,
            cloud_variability: 0.2,
        }
    }

    /// Starts building a custom climate from an existing preset.
    pub fn builder(base: ClimatePreset) -> ClimatePresetBuilder {
        ClimatePresetBuilder { preset: base }
    }
}

/// Builder for custom [`ClimatePreset`] values.
///
/// # Example
///
/// ```
/// use hvac_sim::ClimatePreset;
///
/// let warm_pittsburgh = ClimatePreset::builder(ClimatePreset::pittsburgh_4a())
///     .mean_temperature(5.0)
///     .name("Pittsburgh (mild)")
///     .build();
/// assert_eq!(warm_pittsburgh.mean_temperature, 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct ClimatePresetBuilder {
    preset: ClimatePreset,
}

impl ClimatePresetBuilder {
    /// Sets the city name.
    pub fn name(mut self, name: &str) -> Self {
        self.preset.name = name.to_string();
        self
    }

    /// Sets the monthly mean temperature, °C.
    pub fn mean_temperature(mut self, t: f64) -> Self {
        self.preset.mean_temperature = t;
        self
    }

    /// Sets the diurnal amplitude, °C.
    pub fn diurnal_amplitude(mut self, a: f64) -> Self {
        self.preset.diurnal_amplitude = a;
        self
    }

    /// Sets the synoptic standard deviation, °C.
    pub fn synoptic_std(mut self, s: f64) -> Self {
        self.preset.synoptic_std = s;
        self
    }

    /// Sets the mean cloud cover fraction.
    pub fn mean_cloud_cover(mut self, c: f64) -> Self {
        self.preset.mean_cloud_cover = c.clamp(0.0, 1.0);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ClimatePreset {
        self.preset
    }
}

/// Seeded stochastic weather generator.
///
/// Sampling is a function of the [`SimClock`] *and* the generator's
/// internal AR(1) states, so successive calls must be made with
/// monotonically advancing clocks. Use [`WeatherGenerator::trace`] to
/// materialize a whole horizon at once; a trace is the reproduction's
/// equivalent of "a fixed set of disturbances of one day" from the
/// paper's Fig. 1 motivation experiment.
#[derive(Debug, Clone)]
pub struct WeatherGenerator {
    preset: ClimatePreset,
    rng: StdRng,
    synoptic: f64,
    fast_noise: f64,
    cloud_anomaly: f64,
    wind_anomaly: f64,
}

impl WeatherGenerator {
    /// Creates a generator for `preset` with a reproducible `seed`.
    pub fn new(preset: ClimatePreset, seed: u64) -> Self {
        Self {
            preset,
            rng: seeded_rng(seed),
            synoptic: 0.0,
            fast_noise: 0.0,
            cloud_anomaly: 0.0,
            wind_anomaly: 0.0,
        }
    }

    /// The climate preset this generator draws from.
    pub fn preset(&self) -> &ClimatePreset {
        &self.preset
    }

    /// Samples one step of weather and advances the internal stochastic
    /// state.
    pub fn sample(&mut self, clock: &SimClock) -> WeatherSample {
        let p = &self.preset;
        let hour = clock.hour_of_day();
        let doy = clock.day_of_year();

        // AR(1) updates. phi chosen from the e-folding timescale.
        let steps_per_day = crate::time::STEPS_PER_DAY as f64;
        let phi_syn = (-1.0 / (p.synoptic_timescale_days * steps_per_day)).exp();
        let syn_innov_std = p.synoptic_std * (1.0 - phi_syn * phi_syn).sqrt();
        self.synoptic =
            phi_syn * self.synoptic + syn_innov_std * sample_standard_normal(&mut self.rng);

        let phi_fast: f64 = 0.7;
        let fast_innov_std = p.noise_std * (1.0 - phi_fast * phi_fast).sqrt();
        self.fast_noise =
            phi_fast * self.fast_noise + fast_innov_std * sample_standard_normal(&mut self.rng);

        let phi_cloud: f64 = 0.97;
        self.cloud_anomaly = phi_cloud * self.cloud_anomaly
            + p.cloud_variability
                * (1.0 - phi_cloud * phi_cloud).sqrt()
                * sample_standard_normal(&mut self.rng);

        let phi_wind: f64 = 0.9;
        self.wind_anomaly = phi_wind * self.wind_anomaly
            + 1.2 * (1.0 - phi_wind * phi_wind).sqrt() * sample_standard_normal(&mut self.rng);

        // Diurnal cycle peaking at ~15:00, coldest ~03:00.
        let diurnal = p.diurnal_amplitude * (std::f64::consts::TAU * (hour - 15.0) / 24.0).cos();
        let temperature = p.mean_temperature + diurnal + self.synoptic + self.fast_noise;

        let cloud = (p.mean_cloud_cover + self.cloud_anomaly).clamp(0.0, 1.0);
        let clear = solar::clear_sky_ghi(p.latitude_deg, doy, hour);
        // Clouds pass 25%..100% of clear-sky irradiance.
        let solar_radiation = clear * (1.0 - 0.75 * cloud);

        let humidity = (p.mean_humidity
            + p.humidity_temp_coupling * (diurnal + self.fast_noise)
            + 10.0 * (cloud - p.mean_cloud_cover))
            .clamp(5.0, 100.0);

        let wind_speed = (p.mean_wind + self.wind_anomaly).max(0.0);

        WeatherSample {
            outdoor_temperature: temperature,
            relative_humidity: humidity,
            wind_speed,
            solar_radiation,
        }
    }

    /// Generates a contiguous trace of `steps` samples starting from the
    /// given clock (the clock is copied; the caller's clock is not
    /// advanced).
    pub fn trace(&mut self, start: &SimClock, steps: usize) -> Vec<WeatherSample> {
        let mut clock = *start;
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            out.push(self.sample(&clock));
            clock.advance();
        }
        out
    }

    /// Draws a uniformly random in-range perturbation useful for testing;
    /// exposed so downstream crates don't each reimplement jitter.
    pub fn jitter(&mut self, scale: f64) -> f64 {
        self.rng.gen_range(-scale..=scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_stats::OnlineStats;

    fn month_trace(preset: ClimatePreset, seed: u64) -> Vec<WeatherSample> {
        let mut generator = WeatherGenerator::new(preset, seed);
        let clock = SimClock::january();
        generator.trace(&clock, 31 * crate::time::STEPS_PER_DAY)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = month_trace(ClimatePreset::pittsburgh_4a(), 7);
        let b = month_trace(ClimatePreset::pittsburgh_4a(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_trace() {
        let a = month_trace(ClimatePreset::pittsburgh_4a(), 7);
        let b = month_trace(ClimatePreset::pittsburgh_4a(), 8);
        assert_ne!(a, b);
    }

    #[test]
    fn pittsburgh_colder_than_tucson() {
        let pit: OnlineStats = month_trace(ClimatePreset::pittsburgh_4a(), 1)
            .iter()
            .map(|w| w.outdoor_temperature)
            .collect();
        let tuc: OnlineStats = month_trace(ClimatePreset::tucson_2b(), 1)
            .iter()
            .map(|w| w.outdoor_temperature)
            .collect();
        assert!(pit.mean() + 5.0 < tuc.mean());
    }

    #[test]
    fn mean_temperature_close_to_preset() {
        let preset = ClimatePreset::pittsburgh_4a();
        let target = preset.mean_temperature;
        let s: OnlineStats = month_trace(preset, 3)
            .iter()
            .map(|w| w.outdoor_temperature)
            .collect();
        assert!(
            (s.mean() - target).abs() < 3.0,
            "monthly mean {} too far from preset {}",
            s.mean(),
            target
        );
    }

    #[test]
    fn humidity_stays_in_physical_range() {
        for w in month_trace(ClimatePreset::new_york_4a(), 11) {
            assert!((5.0..=100.0).contains(&w.relative_humidity));
        }
    }

    #[test]
    fn wind_nonnegative() {
        for w in month_trace(ClimatePreset::pittsburgh_4a(), 13) {
            assert!(w.wind_speed >= 0.0);
        }
    }

    #[test]
    fn solar_zero_at_night_positive_at_noon() {
        let mut generator = WeatherGenerator::new(ClimatePreset::tucson_2b(), 5);
        let mut clock = SimClock::january();
        let mut saw_noon_sun = false;
        for _ in 0..crate::time::STEPS_PER_DAY {
            let w = generator.sample(&clock);
            let h = clock.hour_of_day();
            if !(6.0..=20.0).contains(&h) {
                assert_eq!(w.solar_radiation, 0.0, "sun up at hour {h}");
            }
            if (11.5..12.5).contains(&h) && w.solar_radiation > 100.0 {
                saw_noon_sun = true;
            }
            clock.advance();
        }
        assert!(saw_noon_sun);
    }

    #[test]
    fn tucson_sunnier_than_pittsburgh() {
        let sun = |preset| {
            month_trace(preset, 21)
                .iter()
                .map(|w| w.solar_radiation)
                .sum::<f64>()
        };
        assert!(sun(ClimatePreset::tucson_2b()) > 1.5 * sun(ClimatePreset::pittsburgh_4a()));
    }

    #[test]
    fn pittsburgh_closer_to_new_york_than_tucson() {
        use hvac_stats::{jensen_shannon_distance, Histogram};
        let hist = |preset| {
            let t: Vec<f64> = month_trace(preset, 2)
                .iter()
                .map(|w| w.outdoor_temperature)
                .collect();
            Histogram::from_samples(40, -20.0, 30.0, &t)
                .unwrap()
                .probabilities()
        };
        let pit = hist(ClimatePreset::pittsburgh_4a());
        let nyc = hist(ClimatePreset::new_york_4a());
        let tuc = hist(ClimatePreset::tucson_2b());
        let d_pit_nyc = jensen_shannon_distance(&pit, &nyc).unwrap();
        let d_pit_tuc = jensen_shannon_distance(&pit, &tuc).unwrap();
        assert!(
            d_pit_nyc < d_pit_tuc,
            "4A cities should be closer: {d_pit_nyc} vs {d_pit_tuc}"
        );
    }

    #[test]
    fn july_presets_are_hot() {
        let pit_summer: OnlineStats = {
            let mut generator = WeatherGenerator::new(ClimatePreset::pittsburgh_4a_july(), 5);
            generator
                .trace(&SimClock::july(), 31 * crate::time::STEPS_PER_DAY)
                .iter()
                .map(|w| w.outdoor_temperature)
                .collect()
        };
        let pit_winter: OnlineStats = month_trace(ClimatePreset::pittsburgh_4a(), 5)
            .iter()
            .map(|w| w.outdoor_temperature)
            .collect();
        assert!(pit_summer.mean() > pit_winter.mean() + 15.0);
    }

    #[test]
    fn builder_overrides_fields() {
        let c = ClimatePreset::builder(ClimatePreset::tucson_2b())
            .name("Hotter Tucson")
            .mean_temperature(15.0)
            .diurnal_amplitude(9.0)
            .synoptic_std(1.0)
            .mean_cloud_cover(2.0) // clamped
            .build();
        assert_eq!(c.name, "Hotter Tucson");
        assert_eq!(c.mean_temperature, 15.0);
        assert_eq!(c.mean_cloud_cover, 1.0);
    }

    #[test]
    fn trace_does_not_advance_caller_clock() {
        let mut generator = WeatherGenerator::new(ClimatePreset::pittsburgh_4a(), 2);
        let clock = SimClock::january();
        let _ = generator.trace(&clock, 10);
        assert_eq!(clock.step(), 0);
    }
}
