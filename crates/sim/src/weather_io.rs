//! Weather trace CSV import/export.
//!
//! The synthetic generator ([`crate::weather::WeatherGenerator`]) stands
//! in for TMY3 files; this module is the bridge back to real data. A
//! user with actual weather records (TMY3 exports, BMS logs, EPW
//! conversions) can load them as a replayable trace and drive
//! `HvacEnv::with_weather_trace` with them — the rest of the pipeline is
//! agnostic to where the disturbances came from.
//!
//! Format: a header line followed by one row per 15-minute step:
//!
//! ```csv
//! outdoor_temperature_c,relative_humidity_pct,wind_speed_ms,solar_radiation_wm2
//! -1.5,72.0,4.1,0.0
//! ```

use crate::weather::WeatherSample;
use crate::SimError;

/// The canonical CSV header.
pub const WEATHER_CSV_HEADER: &str =
    "outdoor_temperature_c,relative_humidity_pct,wind_speed_ms,solar_radiation_wm2";

/// Serializes a weather trace to CSV.
///
/// # Example
///
/// ```
/// use hvac_sim::weather_io::{weather_to_csv, weather_from_csv};
/// use hvac_sim::WeatherSample;
///
/// # fn main() -> Result<(), hvac_sim::SimError> {
/// let trace = vec![WeatherSample::default(); 3];
/// let csv = weather_to_csv(&trace);
/// let restored = weather_from_csv(&csv)?;
/// assert_eq!(trace, restored);
/// # Ok(())
/// # }
/// ```
pub fn weather_to_csv(trace: &[WeatherSample]) -> String {
    let mut out = String::from(WEATHER_CSV_HEADER);
    out.push('\n');
    for w in trace {
        out.push_str(&format!(
            "{:?},{:?},{:?},{:?}\n",
            w.outdoor_temperature, w.relative_humidity, w.wind_speed, w.solar_radiation
        ));
    }
    out
}

/// Parses a weather trace from CSV (header required; blank lines
/// skipped).
///
/// Values are validated for physical plausibility: finite temperatures
/// in (−90, 60) °C, humidity in `[0, 100]`, non-negative wind and solar.
///
/// # Errors
///
/// Returns [`SimError::NonFiniteInput`] (naming the field) for a
/// missing/invalid header, malformed rows, or out-of-range values.
pub fn weather_from_csv(text: &str) -> Result<Vec<WeatherSample>, SimError> {
    let mut lines = text.lines();
    let header = lines.next().map(str::trim);
    if header != Some(WEATHER_CSV_HEADER) {
        return Err(SimError::NonFiniteInput {
            what: "weather CSV header",
        });
    }
    let mut trace = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(SimError::NonFiniteInput {
                what: "weather CSV row width",
            });
        }
        let parse = |idx: usize, what: &'static str| -> Result<f64, SimError> {
            fields[idx]
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or(SimError::NonFiniteInput { what })
        };
        let outdoor_temperature = parse(0, "outdoor temperature")?;
        let relative_humidity = parse(1, "relative humidity")?;
        let wind_speed = parse(2, "wind speed")?;
        let solar_radiation = parse(3, "solar radiation")?;
        if !(-90.0..60.0).contains(&outdoor_temperature) {
            return Err(SimError::NonFiniteInput {
                what: "outdoor temperature out of physical range",
            });
        }
        if !(0.0..=100.0).contains(&relative_humidity) {
            return Err(SimError::NonFiniteInput {
                what: "relative humidity out of [0, 100]",
            });
        }
        if wind_speed < 0.0 {
            return Err(SimError::NonFiniteInput {
                what: "negative wind speed",
            });
        }
        if solar_radiation < 0.0 {
            return Err(SimError::NonFiniteInput {
                what: "negative solar radiation",
            });
        }
        trace.push(WeatherSample {
            outdoor_temperature,
            relative_humidity,
            wind_speed,
            solar_radiation,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weather::{ClimatePreset, WeatherGenerator};
    use crate::SimClock;

    #[test]
    fn roundtrip_synthetic_trace() {
        let mut generator = WeatherGenerator::new(ClimatePreset::pittsburgh_4a(), 1);
        let trace = generator.trace(&SimClock::january(), 200);
        let restored = weather_from_csv(&weather_to_csv(&trace)).unwrap();
        assert_eq!(trace, restored);
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = format!("{WEATHER_CSV_HEADER}\n1.0,50.0,3.0,0.0\n\n2.0,60.0,4.0,100.0\n");
        let trace = weather_from_csv(&csv).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].solar_radiation, 100.0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(weather_from_csv("temp,rh\n1,2\n").is_err());
        assert!(weather_from_csv("").is_err());
    }

    #[test]
    fn rejects_malformed_rows() {
        for row in [
            "1.0,50.0,3.0",         // short
            "1.0,50.0,3.0,0.0,9.9", // long
            "abc,50.0,3.0,0.0",     // non-numeric
            "NaN,50.0,3.0,0.0",     // NaN
            "100.0,50.0,3.0,0.0",   // impossible temperature
            "1.0,150.0,3.0,0.0",    // impossible humidity
            "1.0,50.0,-3.0,0.0",    // negative wind
            "1.0,50.0,3.0,-1.0",    // negative solar
        ] {
            let csv = format!("{WEATHER_CSV_HEADER}\n{row}\n");
            assert!(weather_from_csv(&csv).is_err(), "accepted {row:?}");
        }
    }

    #[test]
    fn loaded_trace_drives_the_environment() {
        // End-to-end: CSV → trace → building step.
        let csv = format!("{WEATHER_CSV_HEADER}\n-5.0,70.0,4.0,0.0\n-4.5,71.0,4.2,10.0\n");
        let trace = weather_from_csv(&csv).unwrap();
        let mut building = crate::Building::new(crate::BuildingConfig::single_zone()).unwrap();
        for w in &trace {
            building.step(w, &[0.0], &[(20.0, 26.0)]).unwrap();
        }
        assert!(building.zone_temperature(0).is_finite());
    }
}
