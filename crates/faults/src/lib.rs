//! Deterministic sensor- and simulator-fault injection.
//!
//! The paper proves its three safety criteria over *clean* observations;
//! a deployed controller sees stuck sensors, dropped fields, spikes,
//! quantized ADCs, drifting biases, skewed clocks and implausible
//! weather feeds long before it sees a clean TMY trace. This crate makes
//! those failure modes first-class and reproducible:
//!
//! * [`FaultKind`] — the seven fault models, each a pure per-reading
//!   transform (plus per-fault state such as the frozen value of a
//!   stuck sensor or the accumulated drift of a bias fault);
//! * [`Fault`] — one fault model bound to a target feature and a
//!   per-step activation window;
//! * [`FaultSchedule`] — a seeded, composable list of faults; the same
//!   schedule replayed over the same episode corrupts bit-identically,
//!   and an empty schedule is a guaranteed no-op;
//! * [`FaultInjector`] — the stateful applier (one per episode);
//! * [`FaultedEnv`] — an [`hvac_env::Environment`] wrapper around
//!   [`hvac_env::HvacEnv`] that corrupts only what the *policy
//!   observes*: the true building state, reward and comfort accounting
//!   are untouched, so episode metrics always measure reality;
//! * [`corrupt_weather_trace`] — the simulator-side variant: corrupts a
//!   weather trace itself, so the building *physically experiences* the
//!   anomaly instead of merely reporting it;
//! * [`FaultyWriter`] — the persistence-side variant: a seeded
//!   [`std::io::Write`] adapter ([`WriteFaultSchedule`]) that tears
//!   writes, fills the disk (`ENOSPC`), fails flushes (`EIO`) and
//!   injects latency spikes, for crash-recovery tests of append-only
//!   stores such as the audit chain.
//!
//! [`FaultModel`] names each model and carries a three-point intensity
//! ladder used by the `fault_robustness` bench and the CLI.
//!
//! # Example
//!
//! ```
//! use hvac_env::{run_episode, EnvConfig, HvacEnv, Environment};
//! use hvac_faults::{FaultModel, FaultSchedule, FaultedEnv};
//!
//! # fn main() -> Result<(), hvac_env::EnvError> {
//! let config = EnvConfig::pittsburgh().with_episode_steps(96);
//! let schedule = FaultModel::Dropout.schedule(2, 96, 7);
//! let mut env = FaultedEnv::new(HvacEnv::new(config)?, schedule);
//! let obs = env.reset();
//! // Dropped readings surface as NaN — exactly what a guard must catch.
//! # let _ = obs;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod model;
pub mod schedule;
pub mod writer;

pub use env::{corrupt_weather_trace, FaultedEnv};
pub use model::{Fault, FaultKind, FaultModel};
pub use schedule::{FaultInjector, FaultSchedule};
pub use writer::{FaultyWriter, WriteFault, WriteFaultKind, WriteFaultSchedule};
