//! Fault models and their named intensity ladders.

use crate::schedule::FaultSchedule;
use hvac_env::space::feature;
use hvac_sim::STEPS_PER_DAY;

/// One fault model: how a reading (or a whole observation frame) is
/// corrupted on each step the fault is active.
///
/// Per-feature kinds corrupt the single feature a [`Fault`] names;
/// [`FaultKind::ClockSkew`] and [`FaultKind::WeatherAnomaly`] are
/// frame-level and ignore the target feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Sensor frozen: from window entry on, the reading is pinned at the
    /// entry value plus `offset` (a stuck ADC code need not equal the
    /// last true value).
    StuckAt {
        /// Added to the window-entry reading before freezing.
        offset: f64,
    },
    /// Missing field: the reading becomes NaN with probability
    /// `probability` per step (seeded, reproducible).
    Dropout {
        /// Per-step drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Additive spike of `±magnitude` with probability `probability`
    /// per step; the sign is drawn from the seeded stream.
    Spike {
        /// Spike magnitude (absolute).
        magnitude: f64,
        /// Per-step spike probability in `[0, 1]`.
        probability: f64,
    },
    /// Coarse ADC: the reading is rounded to the nearest multiple of
    /// `step`.
    Quantize {
        /// Quantization grid width (> 0).
        step: f64,
    },
    /// Calibration drift: an additive bias that grows by `rate` every
    /// active step (so `k` steps into the window the reading is off by
    /// `rate × (k + 1)`).
    BiasDrift {
        /// Bias growth per step, °C (or feature units) per step.
        rate: f64,
    },
    /// Skewed timestamp: `hour_of_day` is shifted by `hours`
    /// (wrapping mod 24). Frame-level; ignores the target feature.
    ClockSkew {
        /// Shift applied to the reported hour of day.
        hours: f64,
    },
    /// Implausible weather feed ("heat burst"): the outdoor temperature
    /// reading gains `delta` °C and solar radiation gains
    /// `20 × delta` W/m². Frame-level; ignores the target feature.
    WeatherAnomaly {
        /// Outdoor-temperature excursion, °C.
        delta: f64,
    },
}

/// A fault model bound to a target feature and an activation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// How readings are corrupted while active.
    pub kind: FaultKind,
    /// Target feature index (see [`hvac_env::space::feature`]); ignored
    /// by frame-level kinds.
    pub feature: usize,
    /// Active decision steps `[start, end)` within the episode.
    pub window: (usize, usize),
}

impl Fault {
    /// Whether the fault is active at decision step `step`.
    pub fn is_active(&self, step: usize) -> bool {
        step >= self.window.0 && step < self.window.1
    }
}

/// The named fault models of the robustness benchmark, each with a
/// three-point intensity ladder (0 = mild, 1 = moderate, 2 = severe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModel {
    /// Zone-temperature sensor freezes (severe: frozen warm, +8 °C).
    StuckAt,
    /// Zone-temperature reading drops to NaN (severe: every step, and
    /// the occupancy feed drops too).
    Dropout,
    /// Additive ±spikes on the zone temperature.
    Spike,
    /// Coarse quantization of the zone temperature.
    Quantize,
    /// Warm calibration drift on the zone temperature.
    BiasDrift,
    /// Reported hour of day shifted.
    ClockSkew,
    /// Implausible heat-burst weather feed.
    WeatherAnomaly,
}

impl FaultModel {
    /// Every model, in benchmark order.
    pub const ALL: [FaultModel; 7] = [
        FaultModel::StuckAt,
        FaultModel::Dropout,
        FaultModel::Spike,
        FaultModel::Quantize,
        FaultModel::BiasDrift,
        FaultModel::ClockSkew,
        FaultModel::WeatherAnomaly,
    ];

    /// Number of intensity rungs per model.
    pub const INTENSITIES: usize = 3;

    /// Stable name (CLI argument / report key).
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::StuckAt => "stuck_at",
            FaultModel::Dropout => "dropout",
            FaultModel::Spike => "spike",
            FaultModel::Quantize => "quantize",
            FaultModel::BiasDrift => "bias_drift",
            FaultModel::ClockSkew => "clock_skew",
            FaultModel::WeatherAnomaly => "weather_anomaly",
        }
    }

    /// Parses a model name as accepted by the CLI and bench.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// Human-readable label of one intensity rung (for report tables).
    pub fn intensity_label(&self, intensity: usize) -> String {
        let i = intensity.min(Self::INTENSITIES - 1);
        match self {
            FaultModel::StuckAt => ["+0.0 °C", "+3.0 °C", "+8.0 °C"][i].to_string(),
            FaultModel::Dropout => ["p=0.05", "p=0.30", "p=1.00+occ"][i].to_string(),
            FaultModel::Spike => ["±2 p=0.05", "±8 p=0.20", "±30 p=0.60"][i].to_string(),
            FaultModel::Quantize => ["0.5 °C", "2.0 °C", "8.0 °C"][i].to_string(),
            FaultModel::BiasDrift => {
                ["+0.01 °C/step", "+0.05 °C/step", "+0.25 °C/step"][i].to_string()
            }
            FaultModel::ClockSkew => ["+1 h", "+4 h", "+12 h"][i].to_string(),
            FaultModel::WeatherAnomaly => ["+8 °C", "+25 °C", "+60 °C"][i].to_string(),
        }
    }

    /// Builds the preset [`FaultSchedule`] for one intensity rung over an
    /// episode of `episode_steps` decision steps.
    ///
    /// The fault window opens on day 2 (step [`STEPS_PER_DAY`]), so the
    /// first day establishes clean last-good values, and stays open to
    /// the end of the episode. The stuck-at window opens mid-afternoon
    /// of day 2 — the warmest point of the occupied day — so the frozen
    /// reading is a *warm* one, the direction that lulls a winter
    /// controller into under-heating.
    ///
    /// Intensities above the top rung clamp to the top rung.
    pub fn schedule(&self, intensity: usize, episode_steps: usize, seed: u64) -> FaultSchedule {
        let i = intensity.min(Self::INTENSITIES - 1);
        let start = STEPS_PER_DAY.min(episode_steps);
        let window = (start, episode_steps);
        let zone = feature::ZONE_TEMPERATURE;
        let mut schedule = FaultSchedule::new(seed);
        match self {
            FaultModel::StuckAt => {
                // 14:30 of day 2 = step 96 + 58.
                let afternoon = (STEPS_PER_DAY + 58).min(episode_steps);
                schedule = schedule.with(Fault {
                    kind: FaultKind::StuckAt {
                        offset: [0.0, 3.0, 8.0][i],
                    },
                    feature: zone,
                    window: (afternoon, episode_steps),
                });
            }
            FaultModel::Dropout => {
                let p = [0.05, 0.3, 1.0][i];
                schedule = schedule.with(Fault {
                    kind: FaultKind::Dropout { probability: p },
                    feature: zone,
                    window,
                });
                if i == 2 {
                    // A severe bus failure takes the occupancy feed down
                    // with the zone sensor.
                    schedule = schedule.with(Fault {
                        kind: FaultKind::Dropout { probability: 1.0 },
                        feature: feature::OCCUPANT_COUNT,
                        window,
                    });
                }
            }
            FaultModel::Spike => {
                let (magnitude, p) = [(2.0, 0.05), (8.0, 0.2), (30.0, 0.6)][i];
                schedule = schedule.with(Fault {
                    kind: FaultKind::Spike {
                        magnitude,
                        probability: p,
                    },
                    feature: zone,
                    window,
                });
            }
            FaultModel::Quantize => {
                schedule = schedule.with(Fault {
                    kind: FaultKind::Quantize {
                        step: [0.5, 2.0, 8.0][i],
                    },
                    feature: zone,
                    window,
                });
            }
            FaultModel::BiasDrift => {
                schedule = schedule.with(Fault {
                    kind: FaultKind::BiasDrift {
                        rate: [0.01, 0.05, 0.25][i],
                    },
                    feature: zone,
                    window,
                });
            }
            FaultModel::ClockSkew => {
                schedule = schedule.with(Fault {
                    kind: FaultKind::ClockSkew {
                        hours: [1.0, 4.0, 12.0][i],
                    },
                    feature: feature::HOUR_OF_DAY,
                    window,
                });
            }
            FaultModel::WeatherAnomaly => {
                schedule = schedule.with(Fault {
                    kind: FaultKind::WeatherAnomaly {
                        delta: [8.0, 25.0, 60.0][i],
                    },
                    feature: feature::OUTDOOR_TEMPERATURE,
                    window,
                });
            }
        }
        schedule
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for model in FaultModel::ALL {
            assert_eq!(FaultModel::from_name(model.name()), Some(model));
        }
        assert_eq!(FaultModel::from_name("bogus"), None);
    }

    #[test]
    fn window_activation() {
        let fault = Fault {
            kind: FaultKind::Quantize { step: 1.0 },
            feature: feature::ZONE_TEMPERATURE,
            window: (10, 20),
        };
        assert!(!fault.is_active(9));
        assert!(fault.is_active(10));
        assert!(fault.is_active(19));
        assert!(!fault.is_active(20));
    }

    #[test]
    fn presets_cover_every_model_and_clamp_intensity() {
        for model in FaultModel::ALL {
            for intensity in 0..FaultModel::INTENSITIES {
                let s = model.schedule(intensity, 96 * 7, 1);
                assert!(!s.faults().is_empty(), "{model} rung {intensity}");
                assert!(!model.intensity_label(intensity).is_empty());
            }
            // Out-of-range intensity clamps instead of panicking.
            let clamped = model.schedule(99, 96 * 7, 1);
            assert_eq!(
                clamped.faults(),
                model.schedule(2, 96 * 7, 1).faults(),
                "{model}"
            );
        }
    }

    #[test]
    fn severe_dropout_takes_occupancy_down() {
        let s = FaultModel::Dropout.schedule(2, 96 * 7, 1);
        assert_eq!(s.faults().len(), 2);
        assert_eq!(s.faults()[1].feature, feature::OCCUPANT_COUNT);
    }
}
