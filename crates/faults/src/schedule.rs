//! Composable fault schedules and the stateful injector that applies
//! them.

use crate::model::{Fault, FaultKind};
use hvac_env::space::feature;
use hvac_env::Observation;
use hvac_stats::seeded_rng;
use rand::rngs::StdRng;
use rand::Rng;

/// A seeded list of faults, each with its own activation window.
///
/// The schedule is pure configuration: cloning it and replaying the same
/// episode corrupts bit-identically, because every stochastic fault
/// draws from its own stream derived from `(seed, fault index)` and
/// advances only on its active steps.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultSchedule {
    /// An empty schedule (a guaranteed no-op) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The configured faults, in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The schedule seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the schedule corrupts nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Per-fault mutable state: the stochastic stream and, for stuck-at
/// faults, the frozen value captured at window entry.
#[derive(Debug, Clone)]
struct FaultState {
    rng: StdRng,
    stuck: Option<f64>,
}

/// Applies a [`FaultSchedule`] to a stream of observations, one call per
/// decision step.
///
/// The injector is deliberately separable from the environment wrapper:
/// tests (and the serve-path fuzzers) can corrupt observation sequences
/// without simulating a building.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    states: Vec<FaultState>,
    step: usize,
}

impl FaultInjector {
    /// Creates an injector positioned at decision step 0.
    pub fn new(schedule: FaultSchedule) -> Self {
        let states = Self::fresh_states(&schedule);
        Self {
            schedule,
            states,
            step: 0,
        }
    }

    fn fresh_states(schedule: &FaultSchedule) -> Vec<FaultState> {
        (0..schedule.faults.len())
            .map(|i| FaultState {
                // Golden-ratio stride decorrelates per-fault streams
                // while keeping them a pure function of (seed, index).
                rng: seeded_rng(
                    schedule
                        .seed
                        .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ),
                stuck: None,
            })
            .collect()
    }

    /// Rewinds to decision step 0 and re-derives every fault stream, so
    /// a reset episode replays the exact same corruption.
    pub fn reset(&mut self) {
        self.states = Self::fresh_states(&self.schedule);
        self.step = 0;
    }

    /// The schedule being applied.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// The decision step the next [`FaultInjector::corrupt`] call will
    /// corrupt.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Corrupts the observation for the current decision step and
    /// advances to the next. Faults apply in schedule order, each seeing
    /// the output of the previous one.
    pub fn corrupt(&mut self, clean: &Observation) -> Observation {
        let mut x = clean.to_vector();
        for (fault, state) in self.schedule.faults.iter().zip(self.states.iter_mut()) {
            if !fault.is_active(self.step) {
                continue;
            }
            match fault.kind {
                FaultKind::StuckAt { offset } => {
                    let frozen = *state.stuck.get_or_insert(x[fault.feature] + offset);
                    x[fault.feature] = frozen;
                }
                FaultKind::Dropout { probability } => {
                    let roll: f64 = state.rng.gen();
                    if roll < probability {
                        x[fault.feature] = f64::NAN;
                    }
                }
                FaultKind::Spike {
                    magnitude,
                    probability,
                } => {
                    // Both draws happen every active step so the stream
                    // stays aligned whatever the outcomes.
                    let roll: f64 = state.rng.gen();
                    let sign = if state.rng.gen::<bool>() { 1.0 } else { -1.0 };
                    if roll < probability {
                        x[fault.feature] += sign * magnitude;
                    }
                }
                FaultKind::Quantize { step } => {
                    x[fault.feature] = (x[fault.feature] / step).round() * step;
                }
                FaultKind::BiasDrift { rate } => {
                    x[fault.feature] += rate * (self.step - fault.window.0 + 1) as f64;
                }
                FaultKind::ClockSkew { hours } => {
                    x[feature::HOUR_OF_DAY] = (x[feature::HOUR_OF_DAY] + hours).rem_euclid(24.0);
                }
                FaultKind::WeatherAnomaly { delta } => {
                    x[feature::OUTDOOR_TEMPERATURE] += delta;
                    x[feature::SOLAR_RADIATION] += 20.0 * delta;
                }
            }
        }
        self.step += 1;
        Observation::from_vector(&x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::Disturbances;

    fn clean(step: usize) -> Observation {
        Observation::new(
            20.0 + (step % 5) as f64 * 0.1,
            Disturbances {
                outdoor_temperature: -2.0,
                relative_humidity: 60.0,
                wind_speed: 3.0,
                solar_radiation: 100.0,
                occupant_count: 5.0,
                hour_of_day: (step as f64 * 0.25) % 24.0,
            },
        )
    }

    fn bits(o: &Observation) -> Vec<u64> {
        o.to_vector().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn empty_schedule_is_a_bitwise_noop() {
        let mut injector = FaultInjector::new(FaultSchedule::new(1));
        for step in 0..50 {
            let o = clean(step);
            assert_eq!(bits(&injector.corrupt(&o)), bits(&o));
        }
    }

    #[test]
    fn replay_is_bitwise_deterministic() {
        let schedule = FaultSchedule::new(9)
            .with(Fault {
                kind: FaultKind::Dropout { probability: 0.4 },
                feature: feature::ZONE_TEMPERATURE,
                window: (5, 80),
            })
            .with(Fault {
                kind: FaultKind::Spike {
                    magnitude: 6.0,
                    probability: 0.3,
                },
                feature: feature::OUTDOOR_TEMPERATURE,
                window: (0, 100),
            });
        let run = |mut injector: FaultInjector| {
            (0..100)
                .map(|s| bits(&injector.corrupt(&clean(s))))
                .collect::<Vec<_>>()
        };
        let a = run(FaultInjector::new(schedule.clone()));
        let b = run(FaultInjector::new(schedule.clone()));
        assert_eq!(a, b);
        // And reset() replays in place.
        let mut injector = FaultInjector::new(schedule);
        let first = run(injector.clone());
        for s in 0..30 {
            injector.corrupt(&clean(s));
        }
        injector.reset();
        assert_eq!(run(injector), first);
    }

    #[test]
    fn stuck_at_freezes_the_entry_value_plus_offset() {
        let schedule = FaultSchedule::new(1).with(Fault {
            kind: FaultKind::StuckAt { offset: 3.0 },
            feature: feature::ZONE_TEMPERATURE,
            window: (2, 100),
        });
        let mut injector = FaultInjector::new(schedule);
        assert_eq!(injector.corrupt(&clean(0)).zone_temperature, 20.0);
        assert_eq!(injector.corrupt(&clean(1)).zone_temperature, 20.1);
        let entry = clean(2).zone_temperature + 3.0;
        for step in 2..20 {
            assert_eq!(injector.corrupt(&clean(step)).zone_temperature, entry);
        }
    }

    #[test]
    fn bias_drift_grows_linearly() {
        let schedule = FaultSchedule::new(1).with(Fault {
            kind: FaultKind::BiasDrift { rate: 0.5 },
            feature: feature::ZONE_TEMPERATURE,
            window: (10, 100),
        });
        let mut injector = FaultInjector::new(schedule);
        for step in 0..10 {
            injector.corrupt(&clean(step));
        }
        let k1 = injector.corrupt(&clean(10));
        let k2 = injector.corrupt(&clean(11));
        assert!((k1.zone_temperature - (clean(10).zone_temperature + 0.5)).abs() < 1e-12);
        assert!((k2.zone_temperature - (clean(11).zone_temperature + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn clock_skew_wraps_and_weather_anomaly_hits_two_fields() {
        let schedule = FaultSchedule::new(1)
            .with(Fault {
                kind: FaultKind::ClockSkew { hours: 12.0 },
                feature: feature::HOUR_OF_DAY,
                window: (0, 10),
            })
            .with(Fault {
                kind: FaultKind::WeatherAnomaly { delta: 60.0 },
                feature: feature::OUTDOOR_TEMPERATURE,
                window: (0, 10),
            });
        let mut injector = FaultInjector::new(schedule);
        let o = clean(80); // hour 20.0
        let corrupted = injector.corrupt(&o);
        assert!((corrupted.disturbances.hour_of_day - 8.0).abs() < 1e-12);
        assert_eq!(corrupted.disturbances.outdoor_temperature, 58.0);
        assert_eq!(corrupted.disturbances.solar_radiation, 1300.0);
        // Zone temperature is untouched by frame-level weather faults.
        assert_eq!(corrupted.zone_temperature, o.zone_temperature);
    }

    #[test]
    fn full_dropout_nans_every_active_step() {
        let schedule = FaultSchedule::new(3).with(Fault {
            kind: FaultKind::Dropout { probability: 1.0 },
            feature: feature::ZONE_TEMPERATURE,
            window: (1, 50),
        });
        let mut injector = FaultInjector::new(schedule);
        assert!(injector.corrupt(&clean(0)).zone_temperature.is_finite());
        for step in 1..50 {
            assert!(injector.corrupt(&clean(step)).zone_temperature.is_nan());
        }
    }

    #[test]
    fn quantize_snaps_to_grid() {
        let schedule = FaultSchedule::new(1).with(Fault {
            kind: FaultKind::Quantize { step: 8.0 },
            feature: feature::ZONE_TEMPERATURE,
            window: (0, 10),
        });
        let mut injector = FaultInjector::new(schedule);
        // 20.0 / 8 = 2.5 → rounds away from zero → 24.
        assert_eq!(injector.corrupt(&clean(0)).zone_temperature, 24.0);
    }
}
