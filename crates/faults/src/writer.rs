//! Deterministic I/O fault injection for append-only writers.
//!
//! The sensor faults in [`crate::schedule`] corrupt what a policy
//! *observes*; the faults here corrupt what a chain *persists*. A
//! [`FaultyWriter`] wraps any [`std::io::Write`] sink and replays a
//! seeded [`WriteFaultSchedule`] against it: short writes that leave a
//! torn record on disk, a disk that fills mid-append (`ENOSPC`), flushes
//! that fail (`EIO`), and latency spikes that stall the write path. Like
//! [`crate::FaultSchedule`], the same seed replays the same corruption
//! bit-identically, so crash-recovery tests are reproducible.

use hvac_stats::seeded_rng;
use rand::rngs::StdRng;
use rand::Rng;
use std::io::{self, Write};
use std::time::Duration;

/// The write-path failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteFaultKind {
    /// On a probability roll, forward only the first half of the buffer
    /// (at least one byte) and report the partial count. A buffering
    /// caller that retries sees no damage; a caller that dies after the
    /// partial write leaves a torn tail.
    ShortWrite {
        /// Chance that an active write is cut short.
        probability: f64,
    },
    /// Accept exactly `budget` bytes in total, then fail every further
    /// write with the OS `ENOSPC` code — a disk that fills mid-append.
    /// The final accepted write is capped to the remaining budget, which
    /// is what tears a length-prefixed record.
    DiskFull {
        /// Total bytes the sink accepts before reporting full.
        budget: u64,
    },
    /// On a probability roll, fail `flush` with the OS `EIO` code — an
    /// fsync that reports failure after the bytes were buffered.
    FlushFail {
        /// Chance that an active flush fails.
        probability: f64,
    },
    /// On a probability roll, stall the write by `micros` microseconds —
    /// a latency spike from a contended or remounting volume.
    Latency {
        /// Chance that an active write stalls.
        probability: f64,
        /// Stall duration in microseconds.
        micros: u64,
    },
}

/// One write-path fault bound to an activation window over write-call
/// indices (`[start, end)`, matching [`crate::Fault`] semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct WriteFault {
    /// The failure mode.
    pub kind: WriteFaultKind,
    /// Half-open `[start, end)` window of write/flush call indices on
    /// which the fault is live.
    pub window: (u64, u64),
}

impl WriteFault {
    /// Whether the fault is live on the given call index.
    pub fn is_active(&self, call: u64) -> bool {
        call >= self.window.0 && call < self.window.1
    }
}

/// A seeded list of write faults. Pure configuration: replaying the same
/// schedule against the same write sequence corrupts bit-identically,
/// because every stochastic fault draws from its own stream derived from
/// `(seed, fault index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteFaultSchedule {
    seed: u64,
    faults: Vec<WriteFault>,
}

impl WriteFaultSchedule {
    /// An empty schedule (a guaranteed pass-through) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: WriteFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The configured faults, in application order.
    pub fn faults(&self) -> &[WriteFault] {
        &self.faults
    }

    /// The schedule seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the schedule corrupts nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A [`Write`] adapter that applies a [`WriteFaultSchedule`] to an inner
/// sink.
///
/// Faults apply in schedule order on each call; probability rolls are
/// drawn on every *active* call whatever the outcome, so the per-fault
/// streams stay aligned (the same idiom as [`crate::FaultInjector`]).
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    schedule: WriteFaultSchedule,
    rngs: Vec<StdRng>,
    calls: u64,
    written: u64,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`, positioned at write-call index 0.
    pub fn new(inner: W, schedule: WriteFaultSchedule) -> Self {
        let rngs = (0..schedule.faults.len())
            .map(|i| {
                // Golden-ratio stride decorrelates per-fault streams
                // while keeping them a pure function of (seed, index).
                seeded_rng(
                    schedule
                        .seed
                        .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                )
            })
            .collect();
        Self {
            inner,
            schedule,
            rngs,
            calls: 0,
            written: 0,
        }
    }

    /// Total bytes the inner sink has accepted.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Write/flush calls seen so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

fn enospc() -> io::Error {
    // 28 = ENOSPC on Linux; keeps the error distinguishable from EIO
    // without taking a libc dependency.
    io::Error::from_raw_os_error(28)
}

fn eio() -> io::Error {
    io::Error::from_raw_os_error(5)
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let call = self.calls;
        self.calls += 1;
        let mut keep = buf.len();
        for (fault, rng) in self.schedule.faults.iter().zip(self.rngs.iter_mut()) {
            if !fault.is_active(call) {
                continue;
            }
            match fault.kind {
                WriteFaultKind::Latency {
                    probability,
                    micros,
                } => {
                    let roll: f64 = rng.gen();
                    if roll < probability {
                        std::thread::sleep(Duration::from_micros(micros));
                    }
                }
                WriteFaultKind::DiskFull { budget } => {
                    if self.written >= budget {
                        return Err(enospc());
                    }
                    keep = keep.min((budget - self.written) as usize);
                }
                WriteFaultKind::ShortWrite { probability } => {
                    let roll: f64 = rng.gen();
                    if roll < probability {
                        keep = keep.min(buf.len().div_ceil(2).max(1));
                    }
                }
                WriteFaultKind::FlushFail { .. } => {}
            }
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let n = self.inner.write(&buf[..keep])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        let call = self.calls;
        self.calls += 1;
        for (fault, rng) in self.schedule.faults.iter().zip(self.rngs.iter_mut()) {
            if !fault.is_active(call) {
                continue;
            }
            if let WriteFaultKind::FlushFail { probability } = fault.kind {
                let roll: f64 = rng.gen();
                if roll < probability {
                    return Err(eio());
                }
            }
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_all_records(writer: &mut impl Write, records: usize) -> io::Result<()> {
        for i in 0..records {
            let line = format!("record {i:04} payload payload payload\n");
            writer.write_all(line.as_bytes())?;
        }
        writer.flush()
    }

    #[test]
    fn empty_schedule_is_a_pass_through() {
        let mut writer = FaultyWriter::new(Vec::new(), WriteFaultSchedule::new(1));
        write_all_records(&mut writer, 10).unwrap();
        let mut clean = Vec::new();
        write_all_records(&mut clean, 10).unwrap();
        assert_eq!(writer.into_inner(), clean);
    }

    #[test]
    fn disk_full_tears_exactly_at_the_byte_budget() {
        let schedule = WriteFaultSchedule::new(1).with(WriteFault {
            kind: WriteFaultKind::DiskFull { budget: 100 },
            window: (0, u64::MAX),
        });
        let mut writer = FaultyWriter::new(Vec::new(), schedule);
        let err = write_all_records(&mut writer, 10).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert_eq!(writer.bytes_written(), 100);
        let torn = writer.into_inner();
        assert_eq!(torn.len(), 100);
        // The prefix is byte-identical to a clean run.
        let mut clean = Vec::new();
        write_all_records(&mut clean, 10).unwrap();
        assert_eq!(torn[..], clean[..100]);
        // And 100 bytes lands mid-record: the tail is torn.
        assert_ne!(torn.last(), Some(&b'\n'));
    }

    #[test]
    fn short_writes_report_partial_counts_deterministically() {
        let schedule = WriteFaultSchedule::new(7).with(WriteFault {
            kind: WriteFaultKind::ShortWrite { probability: 0.5 },
            window: (0, u64::MAX),
        });
        let run = |seed_schedule: WriteFaultSchedule| {
            let mut writer = FaultyWriter::new(Vec::new(), seed_schedule);
            let counts: Vec<usize> = (0..40)
                .map(|_| writer.write(b"0123456789abcdef").unwrap())
                .collect();
            (counts, writer.into_inner())
        };
        let (counts_a, bytes_a) = run(schedule.clone());
        let (counts_b, bytes_b) = run(schedule);
        assert_eq!(counts_a, counts_b);
        assert_eq!(bytes_a, bytes_b);
        assert!(counts_a.contains(&8), "some writes cut short");
        assert!(counts_a.contains(&16), "some writes intact");
        // write_all-style retry recovers everything despite the cuts.
        let schedule = WriteFaultSchedule::new(7).with(WriteFault {
            kind: WriteFaultKind::ShortWrite { probability: 0.5 },
            window: (0, u64::MAX),
        });
        let mut writer = FaultyWriter::new(Vec::new(), schedule);
        write_all_records(&mut writer, 10).unwrap();
        let mut clean = Vec::new();
        write_all_records(&mut clean, 10).unwrap();
        assert_eq!(writer.into_inner(), clean);
    }

    #[test]
    fn flush_fail_reports_eio_only_inside_its_window() {
        let schedule = WriteFaultSchedule::new(1).with(WriteFault {
            kind: WriteFaultKind::FlushFail { probability: 1.0 },
            window: (2, 3),
        });
        let mut writer = FaultyWriter::new(Vec::new(), schedule);
        writer.flush().unwrap(); // call 0: outside window
        assert_eq!(writer.write(b"x").unwrap(), 1); // call 1
        let err = writer.flush().unwrap_err(); // call 2: active
        assert_eq!(err.raw_os_error(), Some(5));
        writer.flush().unwrap(); // call 3: window closed
    }
}
