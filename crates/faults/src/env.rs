//! The faulted environment wrapper and simulator-side trace corruption.

use crate::schedule::{FaultInjector, FaultSchedule};
use hvac_env::{
    Disturbances, EnvError, Environment, HvacEnv, Observation, SetpointAction, StepOutcome,
};
use hvac_sim::WeatherSample;

/// An [`HvacEnv`] whose *reported* observations pass through a
/// [`FaultSchedule`].
///
/// Only the policy's view is corrupted: the building dynamics, reward,
/// occupancy accounting and comfort-violation bookkeeping inside
/// [`StepOutcome`] are all computed by the inner environment on the true
/// state. Episode metrics over a faulted run therefore measure what the
/// building *actually experienced* while the controller was being lied
/// to — exactly the quantity the robustness benchmark compares between
/// raw and guarded policies.
///
/// With an empty schedule the wrapper is a bitwise no-op, so any episode
/// can be replayed bit-identically with and without faults.
pub struct FaultedEnv {
    inner: HvacEnv,
    injector: FaultInjector,
    true_observation: Observation,
}

impl FaultedEnv {
    /// Wraps `inner` with `schedule`.
    pub fn new(inner: HvacEnv, schedule: FaultSchedule) -> Self {
        let true_observation = inner.observe();
        Self {
            inner,
            injector: FaultInjector::new(schedule),
            true_observation,
        }
    }

    /// The wrapped environment.
    pub fn inner(&self) -> &HvacEnv {
        &self.inner
    }

    /// The *clean* observation at the current decision time — what a
    /// healthy sensor suite would report. Benchmarks use it to audit
    /// decisions against ground truth.
    pub fn true_observation(&self) -> Observation {
        self.true_observation
    }

    /// The schedule in force.
    pub fn schedule(&self) -> &FaultSchedule {
        self.injector.schedule()
    }

    /// Resets the inner environment and rewinds the fault streams;
    /// returns the (possibly corrupted) initial observation.
    pub fn reset(&mut self) -> Observation {
        self.injector.reset();
        self.true_observation = Environment::reset(&mut self.inner);
        self.injector.corrupt(&self.true_observation)
    }

    /// Steps the inner environment on `action` and corrupts the next
    /// observation in the outcome.
    ///
    /// # Errors
    ///
    /// Propagates inner-environment errors.
    pub fn step(&mut self, action: SetpointAction) -> Result<StepOutcome, EnvError> {
        let mut out = Environment::step(&mut self.inner, action)?;
        self.true_observation = out.observation;
        out.observation = self.injector.corrupt(&out.observation);
        Ok(out)
    }
}

impl Environment for FaultedEnv {
    fn reset(&mut self) -> Observation {
        FaultedEnv::reset(self)
    }

    fn step(&mut self, action: SetpointAction) -> Result<StepOutcome, EnvError> {
        FaultedEnv::step(self, action)
    }
}

/// Applies the weather-capable faults of `schedule` to a weather trace
/// in place — the simulator-side injection: the building *physically
/// experiences* the anomaly (feed it to
/// [`HvacEnv::with_weather_trace`](hvac_env::HvacEnv::with_weather_trace)),
/// rather than merely reporting it.
///
/// Zone-temperature, occupancy and hour-of-day faults have no weather
/// field to corrupt and are skipped; the stochastic streams are the same
/// ones [`FaultInjector`] uses, so an observation-side and a
/// simulator-side run of one schedule corrupt the same steps.
pub fn corrupt_weather_trace(trace: &mut [WeatherSample], schedule: &FaultSchedule) {
    let mut injector = FaultInjector::new(schedule.clone());
    for sample in trace.iter_mut() {
        let carrier = Observation::new(
            0.0,
            Disturbances {
                outdoor_temperature: sample.outdoor_temperature,
                relative_humidity: sample.relative_humidity,
                wind_speed: sample.wind_speed,
                solar_radiation: sample.solar_radiation,
                occupant_count: 0.0,
                hour_of_day: 0.0,
            },
        );
        let corrupted = injector.corrupt(&carrier).disturbances;
        sample.outdoor_temperature = corrupted.outdoor_temperature;
        sample.relative_humidity = corrupted.relative_humidity;
        sample.wind_speed = corrupted.wind_speed;
        sample.solar_radiation = corrupted.solar_radiation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Fault, FaultKind, FaultModel};
    use hvac_env::space::feature;
    use hvac_env::{run_episode, EnvConfig, Policy};

    struct Hold(SetpointAction);
    impl Policy for Hold {
        fn decide(&mut self, _o: &Observation) -> SetpointAction {
            self.0
        }
        fn name(&self) -> &str {
            "hold"
        }
        fn is_deterministic(&self) -> bool {
            true
        }
    }

    fn env(steps: usize) -> HvacEnv {
        HvacEnv::new(EnvConfig::pittsburgh().with_episode_steps(steps)).unwrap()
    }

    #[test]
    fn empty_schedule_replays_the_clean_episode_bit_identically() {
        let action = SetpointAction::new(21, 25).unwrap();
        let mut clean_env = env(60);
        let clean = run_episode(&mut clean_env, &mut Hold(action)).unwrap();
        let mut faulted = FaultedEnv::new(env(60), FaultSchedule::new(7));
        let wrapped = run_episode(&mut faulted, &mut Hold(action)).unwrap();
        assert_eq!(clean, wrapped);
    }

    #[test]
    fn faulted_episode_replays_bit_identically() {
        let schedule = FaultModel::Spike.schedule(2, 60, 11);
        let action = SetpointAction::new(20, 26).unwrap();
        let run = || {
            let mut faulted = FaultedEnv::new(env(60), schedule.clone());
            run_episode(&mut faulted, &mut Hold(action)).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.steps
                .iter()
                .map(|s| s.observation.zone_temperature.to_bits())
                .collect::<Vec<_>>(),
            b.steps
                .iter()
                .map(|s| s.observation.zone_temperature.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn reset_rewinds_the_fault_streams() {
        let schedule = FaultSchedule::new(5).with(Fault {
            kind: FaultKind::Dropout { probability: 0.5 },
            feature: feature::ZONE_TEMPERATURE,
            window: (0, 60),
        });
        let mut faulted = FaultedEnv::new(env(60), schedule);
        let action = SetpointAction::off();
        let trace = |e: &mut FaultedEnv| {
            let first = e.reset().zone_temperature.to_bits();
            let mut bits = vec![first];
            for _ in 0..20 {
                bits.push(
                    e.step(action)
                        .unwrap()
                        .observation
                        .zone_temperature
                        .to_bits(),
                );
            }
            bits
        };
        assert_eq!(trace(&mut faulted), trace(&mut faulted));
    }

    #[test]
    fn metrics_measure_the_true_state_not_the_corrupted_one() {
        // Zone readings are NaN every step, yet reward and violation
        // bookkeeping stay finite because the inner env never sees the
        // corruption.
        // Window covers the final post-step observation too (the
        // injector corrupts `episode_steps + 1` frames: the reset frame
        // plus one per step).
        let schedule = FaultSchedule::new(1).with(Fault {
            kind: FaultKind::Dropout { probability: 1.0 },
            feature: feature::ZONE_TEMPERATURE,
            window: (0, 97),
        });
        let mut faulted = FaultedEnv::new(env(96), schedule);
        let obs = faulted.reset();
        assert!(obs.zone_temperature.is_nan());
        for _ in 0..96 {
            let out = faulted.step(SetpointAction::new(21, 25).unwrap()).unwrap();
            assert!(out.observation.zone_temperature.is_nan());
            assert!(out.reward.is_finite());
            assert!(out.comfort_violation_degrees.is_finite());
            assert!(faulted.true_observation().zone_temperature.is_finite());
            if out.done {
                break;
            }
        }
    }

    #[test]
    fn true_observation_tracks_the_inner_env() {
        let schedule = FaultModel::BiasDrift.schedule(2, 96, 3);
        let mut faulted = FaultedEnv::new(env(96), schedule);
        faulted.reset();
        for _ in 0..10 {
            faulted.step(SetpointAction::off()).unwrap();
        }
        assert_eq!(faulted.true_observation(), faulted.inner().observe());
    }

    #[test]
    fn weather_trace_corruption_is_deterministic_and_windowed() {
        let base = vec![
            WeatherSample {
                outdoor_temperature: -2.0,
                relative_humidity: 60.0,
                wind_speed: 3.0,
                solar_radiation: 100.0,
            };
            20
        ];
        let schedule = FaultSchedule::new(2).with(Fault {
            kind: FaultKind::WeatherAnomaly { delta: 25.0 },
            feature: feature::OUTDOOR_TEMPERATURE,
            window: (10, 20),
        });
        let mut a = base.clone();
        corrupt_weather_trace(&mut a, &schedule);
        let mut b = base.clone();
        corrupt_weather_trace(&mut b, &schedule);
        assert_eq!(a, b);
        for (i, (corrupted, clean)) in a.iter().zip(base.iter()).enumerate() {
            if i < 10 {
                assert_eq!(corrupted, clean, "step {i} is outside the window");
            } else {
                assert_eq!(corrupted.outdoor_temperature, 23.0, "step {i}");
                assert_eq!(corrupted.solar_radiation, 600.0, "step {i}");
            }
        }
    }
}
