//! End-to-end observability tests: a quick pipeline run must produce a
//! populated `TelemetrySummary`, and the JSONL sink must capture valid
//! span events for all four stages.
//!
//! Both tests run a real (tiny) pipeline; the second swaps the global
//! sink, so the two are serialized through a mutex to keep the sink
//! state deterministic within this test binary.

use hvac_telemetry::json::{self, JsonValue};
use std::sync::{Arc, Mutex, OnceLock};
use veri_hvac::env::EnvConfig;
use veri_hvac::pipeline::{run_pipeline, PipelineConfig};

const STAGES: [&str; 4] = ["dynamics", "extraction", "tree_fit", "verification"];

fn sink_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

#[test]
fn summary_reports_all_four_stages_and_work_counters() {
    let _guard = sink_lock().lock().unwrap();
    let config = PipelineConfig::quick(EnvConfig::pittsburgh());
    let artifacts = run_pipeline(&config).unwrap();
    let telemetry = &artifacts.telemetry;

    let stage_names: Vec<&str> = telemetry.stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(stage_names, STAGES, "stages must appear in execution order");

    // Child stage wall-times are disjoint sub-intervals of the run.
    let stage_sum: std::time::Duration = telemetry.stages.iter().map(|s| s.wall).sum();
    assert!(
        stage_sum <= telemetry.total_wall,
        "stage sum {stage_sum:?} exceeds total {total:?}",
        total = telemetry.total_wall
    );
    for stage in &telemetry.stages {
        assert!(stage.wall <= telemetry.total_wall, "stage {}", stage.name);
    }

    // Work counters (process-global, so >= this run's known floor).
    let points = config.extraction.n_points as u64;
    let mc_runs = config.extraction.mc_runs as u64;
    assert!(telemetry.counter("extract.points") >= points);
    assert!(telemetry.rollouts() >= points * mc_runs);
    assert!(telemetry.trajectories() >= telemetry.rollouts() * config.rs.samples as u64);
    assert!(telemetry.split_evaluations() > 0);
    assert!(telemetry.tree_nodes() >= 1);
    // paths_checked counts leaves *before* correction; correction can
    // split leaves, so compare against 1, not the final leaf count.
    assert!(telemetry.paths_checked() >= 1);
    let _ = artifacts.policy.tree().leaf_count();

    // Span counters fed by the RAII timers.
    for stage in STAGES {
        assert!(
            telemetry.counter(&format!("span.{stage}.count")) >= 1,
            "missing span counter for {stage}"
        );
    }
}

#[test]
fn jsonl_sink_captures_valid_span_events_for_every_stage() {
    let _guard = sink_lock().lock().unwrap();
    let path =
        std::env::temp_dir().join(format!("veri_hvac_telemetry_{}.jsonl", std::process::id()));
    let sink = hvac_telemetry::JsonlSink::create(&path).unwrap();
    let previous = hvac_telemetry::set_sink(Arc::new(sink));

    let config = PipelineConfig::quick(EnvConfig::pittsburgh());
    let run_result = run_pipeline(&config);
    hvac_telemetry::flush();
    hvac_telemetry::set_sink(previous);
    run_result.unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "JSONL sink wrote nothing");

    let mut opens = Vec::new();
    let mut closes = Vec::new();
    let mut pipeline_nanos = None;
    let mut last_seq = None;
    for line in text.lines() {
        let value = json::parse(line).unwrap_or_else(|e| panic!("invalid JSON line {line:?}: {e}"));
        let event = value.get("event").and_then(JsonValue::as_str).unwrap();

        // seq strictly increases: no interleaved/torn writes.
        let seq = value.get("seq").and_then(JsonValue::as_u64).unwrap();
        if let Some(prev) = last_seq {
            assert!(seq > prev, "seq went {prev} -> {seq}");
        }
        last_seq = Some(seq);

        match event {
            "span_open" => opens.push(
                value
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_string(),
            ),
            "span_close" => {
                let name = value.get("name").and_then(JsonValue::as_str).unwrap();
                let nanos = value.get("nanos").and_then(JsonValue::as_u64).unwrap();
                if name == "pipeline" {
                    pipeline_nanos = Some(nanos);
                }
                closes.push((name.to_string(), nanos));
            }
            _ => {}
        }
    }

    for stage in STAGES {
        assert!(opens.iter().any(|n| n == stage), "no span_open for {stage}");
        assert!(
            closes.iter().any(|(n, _)| n == stage),
            "no span_close for {stage}"
        );
    }
    // Each stage is a child of the "pipeline" root span: child <= parent.
    let parent = pipeline_nanos.expect("no span_close for pipeline root");
    for (name, nanos) in &closes {
        if STAGES.contains(&name.as_str()) {
            assert!(
                *nanos <= parent,
                "stage {name} ({nanos} ns) outlived pipeline root ({parent} ns)"
            );
        }
    }
}
