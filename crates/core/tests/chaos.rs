//! Chaos harness: SIGKILL a loaded fleet server mid-traffic, restart it
//! over the same audit dir, and prove the crash left nothing the
//! offline auditor cannot vouch for — every tenant's chain recovers,
//! audits green, and carries exactly one `recovery` record.

use std::io::{BufRead, BufReader, Write as _};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hvac_telemetry::http::{blocking_request, BlockingClient};
use hvac_telemetry::json::{parse, JsonValue};
use veri_hvac::audit::Auditor;
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{ActionSpace, SetpointAction, POLICY_INPUT_DIM};

const BIN: &str = env!("CARGO_BIN_EXE_veri_hvac");
const TENANTS: [&str; 2] = ["alpha", "beta"];

fn toy_policy(split: f64) -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        let temp = 12.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < split { heat } else { off });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

/// Spawns `veri_hvac serve-fleet` and returns the child plus the bound
/// address parsed from its startup banner.
fn spawn_fleet(manifest: &std::path::Path, extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(BIN)
        .args(["serve", "--fleet"])
        .arg(manifest)
        .args(["--addr", "127.0.0.1:0", "--snapshot-every", "1"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve-fleet");
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .unwrap();
        if let Some(rest) = line.strip_prefix("serving fleet on http://") {
            break rest.trim().parse().unwrap();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn sigkill_under_load_recovers_with_exactly_one_recovery_record_per_chain() {
    let dir = std::env::temp_dir().join(format!("hvac-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let audit_dir = dir.join("audit");
    for (tenant, split) in TENANTS.iter().zip([20.0, 17.0]) {
        std::fs::write(
            dir.join(format!("{tenant}.tree")),
            toy_policy(split).to_compact_string(),
        )
        .unwrap();
    }
    let manifest = dir.join("fleet.json");
    let mut doc = String::from("{\"tenants\":[");
    for (i, tenant) in TENANTS.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&format!(r#"{{"id":"{tenant}","policy":"{tenant}.tree"}}"#));
    }
    doc.push_str("]}");
    let mut f = std::fs::File::create(&manifest).unwrap();
    f.write_all(doc.as_bytes()).unwrap();

    // Phase 1: load the fleet, then SIGKILL it with requests in flight.
    let audit_flag = audit_dir.to_str().unwrap().to_string();
    let (mut child, addr) = spawn_fleet(&manifest, &["--audit-dir", &audit_flag]);
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = TENANTS
        .iter()
        .map(|tenant| {
            let stop = Arc::clone(&stop);
            let tenant = tenant.to_string();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let Ok(mut client) = BlockingClient::connect(addr) else {
                    return 0;
                };
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let body = format!(r#"{{"zone_temperature":{}}}"#, 14 + i % 10);
                    match client.request("POST", &format!("/decide/{tenant}"), &[], &body) {
                        Ok((200, _, _)) => ok += 1,
                        // The kill raced this request; the socket is
                        // dead for good.
                        _ => break,
                    }
                    i += 1;
                }
                ok
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(600));
    child.kill().expect("SIGKILL the loaded server");
    child.wait().unwrap();
    stop.store(true, Ordering::Relaxed);
    let served: Vec<u64> = hammers.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        served.iter().all(|&n| n > 0),
        "every tenant must have live traffic before the kill: {served:?}"
    );

    // The kill skipped every shutdown hook: chains end unsealed (and
    // possibly torn).
    for tenant in TENANTS {
        let text = std::fs::read_to_string(audit_dir.join(format!("{tenant}.jsonl"))).unwrap();
        let report = Auditor::new(&text).run();
        assert!(!report.passed(), "{tenant}: a SIGKILLed chain cannot seal");
    }

    // Phase 2: restart over the same audit dir. Startup must recover
    // every chain; --duration drains and seals gracefully at the end.
    let (mut child, addr) =
        spawn_fleet(&manifest, &["--audit-dir", &audit_flag, "--duration", "2"]);
    let (status, text) = blocking_request(addr, "GET", "/tenants", "").unwrap();
    assert_eq!(status, 200, "{text}");
    let v = parse(&text).unwrap();
    assert_eq!(
        v.get("count").and_then(JsonValue::as_u64),
        Some(2),
        "{text}"
    );
    for tenant in TENANTS {
        let (status, _) = blocking_request(
            addr,
            "POST",
            &format!("/decide/{tenant}"),
            r#"{"zone_temperature":18}"#,
        )
        .unwrap();
        assert_eq!(status, 200, "post-restart decide for {tenant}");
    }
    assert!(
        child.wait().unwrap().success(),
        "graceful drain must exit 0"
    );

    // Every chain now audits green end to end, with exactly one
    // recovery record covering the crash.
    for (tenant, split) in TENANTS.iter().zip([20.0, 17.0]) {
        let text = std::fs::read_to_string(audit_dir.join(format!("{tenant}.jsonl"))).unwrap();
        let report = Auditor::new(&text).with_policy(&toy_policy(split)).run();
        assert!(report.passed(), "{tenant}: {report}");
        assert_eq!(report.recoveries, 1, "{tenant}: {report}");
        assert!(report.sealed, "{tenant}: {report}");
        assert_eq!(report.failure_class(), "none", "{tenant}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_recover_flag_repairs_a_torn_chain_in_place() {
    let dir = std::env::temp_dir().join(format!("hvac-chaos-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("solo.tree"), toy_policy(20.0).to_compact_string()).unwrap();
    std::fs::write(
        dir.join("fleet.json"),
        r#"{"tenants":[{"id":"solo","policy":"solo.tree"}]}"#,
    )
    .unwrap();
    let audit_dir = dir.join("audit");
    let audit_flag = audit_dir.to_str().unwrap().to_string();

    // A short graceful run seals a clean chain...
    let (mut child, addr) = spawn_fleet(
        &dir.join("fleet.json"),
        &["--audit-dir", &audit_flag, "--duration", "1"],
    );
    for temp in [15, 18, 22] {
        let (status, _) = blocking_request(
            addr,
            "POST",
            "/decide/solo",
            &format!(r#"{{"zone_temperature":{temp}}}"#),
        )
        .unwrap();
        assert_eq!(status, 200);
    }
    assert!(child.wait().unwrap().success());
    // ...which we then tear mid-record, as a crash would.
    let chain = audit_dir.join("solo.jsonl");
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&chain)
            .unwrap();
        f.write_all(b"299 {\"kind\":\"decision\",\"seq\":41")
            .unwrap();
    }
    let chain_flag = chain.to_str().unwrap();

    // Plain audit: fails, --json names the machine-readable class.
    let out = Command::new(BIN)
        .args(["audit", "--chain", chain_flag, "--json"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "torn chain must fail the audit");
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"failure_class\":\"torn_tail\""), "{json}");
    assert!(json.contains("\"torn_tail_offset\":"), "{json}");

    // --recover truncates the torn bytes, appends the recovery record,
    // seals, and the same invocation re-audits green.
    let out = Command::new(BIN)
        .args(["audit", "--chain", chain_flag, "--json", "--recover"])
        .output()
        .unwrap();
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{json}");
    assert!(json.contains("\"failure_class\":\"none\""), "{json}");
    assert!(json.contains("\"recoveries\":1"), "{json}");

    // Recovery is idempotent at the audit level: a second plain audit
    // still passes, and the torn fragment is gone from the file.
    let text = std::fs::read_to_string(&chain).unwrap();
    assert!(!text.contains("\"seq\":41"), "torn bytes must be truncated");
    let _ = std::fs::remove_dir_all(&dir);
}
