//! Cache semantics of the content-addressed pipeline: a warm re-run
//! hits every stage and reproduces bit-identical artifacts, a config
//! change invalidates exactly the downstream stages, and concurrent
//! runs keep their telemetry summaries non-interleaved.

use std::path::PathBuf;
use veri_hvac::env::EnvConfig;
use veri_hvac::pipeline::{run_pipeline, run_pipeline_cached, PipelineConfig};
use veri_hvac::ArtifactStore;

fn temp_store(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("veri-hvac-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_rerun_hits_every_stage_with_bit_identical_artifacts() {
    let root = temp_store("warm");
    let store = ArtifactStore::open(&root).unwrap();
    let config = PipelineConfig::quick(EnvConfig::pittsburgh());

    let cold = run_pipeline_cached(&config, &store).unwrap();
    assert_eq!(
        cold.telemetry.counter("cache.hits"),
        0,
        "cold run must miss"
    );
    assert_eq!(cold.telemetry.counter("cache.misses"), 6);

    let warm = run_pipeline_cached(&config, &store).unwrap();
    assert_eq!(warm.telemetry.counter("cache.hits"), 6, "warm run must hit");
    assert_eq!(warm.telemetry.counter("cache.misses"), 0);

    // Every artifact loads back bit-identical to what the cold run
    // computed — the serializers round-trip exactly and the augmenter
    // refit is deterministic.
    assert_eq!(
        cold.historical.to_compact_string(),
        warm.historical.to_compact_string()
    );
    assert_eq!(
        cold.model.to_compact_string(),
        warm.model.to_compact_string()
    );
    assert_eq!(
        cold.augmenter.to_compact_string(),
        warm.augmenter.to_compact_string()
    );
    assert_eq!(
        cold.decision_data.to_compact_string(),
        warm.decision_data.to_compact_string()
    );
    assert_eq!(
        cold.policy.to_compact_string(),
        warm.policy.to_compact_string()
    );
    assert_eq!(cold.report, warm.report);

    // A cached run is equivalent to an uncached one.
    let uncached = run_pipeline(&config).unwrap();
    assert_eq!(
        uncached.policy.to_compact_string(),
        warm.policy.to_compact_string()
    );
    assert_eq!(uncached.report, warm.report);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn noise_change_misses_exactly_the_downstream_stages() {
    let root = temp_store("noise");
    let store = ArtifactStore::open(&root).unwrap();
    let config = PipelineConfig::quick(EnvConfig::pittsburgh());
    run_pipeline_cached(&config, &store).unwrap();

    // noise_level feeds the augmenter: historical data and the dynamics
    // model stay valid, the other four stages recompute.
    let mut noisier = config.clone();
    noisier.noise_level = 0.09;
    let run = run_pipeline_cached(&noisier, &store).unwrap();
    assert_eq!(run.telemetry.counter("cache.hits"), 2);
    assert_eq!(run.telemetry.counter("cache.misses"), 4);
    assert!((run.augmenter.noise_level() - 0.09).abs() < f64::EPSILON);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_runs_report_non_interleaved_telemetry() {
    let config = PipelineConfig::quick(EnvConfig::pittsburgh());
    let expected_points = config.extraction.n_points as u64;
    let expected_rollouts = expected_points * config.extraction.mc_runs as u64;

    // Two pipelines in flight at once: each summary must count exactly
    // its own run's work, not the process-global total.
    let (a, b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| run_pipeline(&config).unwrap());
        let hb = scope.spawn(|| run_pipeline(&config).unwrap());
        (ha.join().unwrap(), hb.join().unwrap())
    });
    for run in [&a, &b] {
        assert_eq!(run.telemetry.counter("extract.points"), expected_points);
        assert_eq!(run.telemetry.rollouts(), expected_rollouts);
    }
}
