//! The compiled fast path on *shipped* policies: every tree the
//! pipeline actually produces must compile into the flat kernel and
//! survive the exhaustive box-grid equivalence sweep (leaf-box
//! corners, threshold-adjacent ±1 ulp probes, NaN/∞ hostiles) before
//! it may serve. A synthetic toy tree proving equivalent means little
//! if the real extraction output doesn't.

use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::prove_equivalence;
use veri_hvac::env::{EnvConfig, Observation, Policy, POLICY_INPUT_DIM};
use veri_hvac::pipeline::{run_pipeline, PipelineConfig};

#[test]
fn pipeline_fitted_policy_passes_the_full_box_grid_sweep() {
    let config = PipelineConfig::quick(EnvConfig::pittsburgh());
    let artifacts = run_pipeline(&config).unwrap();

    // The pipeline's verification stage may have corrected leaves
    // (which invalidates any cached kernel), so compile the policy as
    // `veri-hvac verify` does: recompile + re-prove, then serve.
    let mut policy = artifacts.policy.clone();
    let proof = policy
        .recompile()
        .expect("the shipped policy must compile and prove equivalent");
    let kernel = policy.compiled().expect("proof implies a kernel");
    assert!(
        proof.probes >= proof.leaves,
        "the sweep probes every leaf box at least once: {proof:?}"
    );
    assert_eq!(kernel.n_features(), POLICY_INPUT_DIM);

    // The proof is re-checkable from the artifact text alone — the
    // round-tripped kernel is the same function.
    let artifact = policy.compiled_artifact().unwrap();
    let restored = veri_hvac::dtree::CompiledTree::from_compact_string(
        &artifact,
        veri_hvac::dtree::CompileOptions { quantized: true },
    )
    .unwrap();
    let reproof = prove_equivalence(policy.tree(), &restored).unwrap();
    assert_eq!(reproof.probes, proof.probes);
    assert!(reproof.quantized, "quantized kernel swept too");

    // And the served decisions agree with the enum walk across a dense
    // observation sweep (belt to the proof's suspenders).
    let mut walk = DtPolicy::new_uncompiled(policy.tree().clone()).unwrap();
    for step in 0..500 {
        let mut x = [0.0f64; POLICY_INPUT_DIM];
        x[0] = 10.0 + f64::from(step) * 0.031;
        x[1] = f64::from(step % 24);
        let o = Observation::from_vector(&x);
        assert_eq!(policy.decide(&o), walk.decide(&o), "step {step}");
    }
}
