//! Integration tests for the multi-tenant fleet controller: per-tenant
//! bit-identity against in-process decisions, tenant routing and
//! isolation, lockstep `/tick` batching, and the loaded-shutdown
//! guarantee that every tenant's audit chain still seals green under
//! concurrent traffic.

use hvac_telemetry::http::{blocking_request, BlockingClient};
use hvac_telemetry::json::{parse, JsonValue};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use veri_hvac::audit::Auditor;
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{
    ActionSpace, Disturbances, Observation, Policy, SetpointAction, POLICY_INPUT_DIM,
};
use veri_hvac::fleet::{serve_fleet, Fleet, FleetOptions};
use veri_hvac::serve::MAX_DECIDE_BODY_BYTES;

/// Cold zones → heat hard, warm zones → off (the serve tests' toy
/// tree), with a tunable split so tenants can run distinct policies.
fn toy_policy(split: f64) -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        let temp = 12.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < split { heat } else { off });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

fn obs(temp: f64) -> Observation {
    Observation::new(temp, Disturbances::default())
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hvac-fleet-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn multi_tenant_decisions_are_bit_identical_to_in_process() {
    // Three tenants over two distinct trees: a and b share one policy
    // (the registry must dedup them), c runs its own.
    let fleet = Fleet::new(FleetOptions::default());
    fleet
        .add_tenant("building-a", toy_policy(20.0), None)
        .unwrap();
    fleet
        .add_tenant("building-b", toy_policy(20.0), None)
        .unwrap();
    fleet
        .add_tenant("building-c", toy_policy(17.0), None)
        .unwrap();
    assert_eq!(fleet.policy_count(), 2, "shared tree is deduped");
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");

    let mut references = vec![
        ("building-a", toy_policy(20.0)),
        ("building-b", toy_policy(20.0)),
        ("building-c", toy_policy(17.0)),
    ];
    let temps = [14.0, 16.2, 17.9, 19.1, 21.4, 23.0];
    let mut client = BlockingClient::connect(server.addr()).unwrap();
    for (tenant, reference) in &mut references {
        for temp in temps {
            let expected = reference.decide(&obs(temp));
            // Path-addressed…
            let body = format!(r#"{{"zone_temperature":{temp}}}"#);
            let (status, _, text) = client
                .request("POST", &format!("/decide/{tenant}"), &[], &body)
                .unwrap();
            assert_eq!(status, 200, "{text}");
            let v = parse(&text).unwrap();
            assert_eq!(
                v.get("tenant").and_then(JsonValue::as_str),
                Some(*tenant),
                "{text}"
            );
            let heating = v
                .get("heating_setpoint")
                .and_then(JsonValue::as_u64)
                .unwrap();
            let cooling = v
                .get("cooling_setpoint")
                .and_then(JsonValue::as_u64)
                .unwrap();
            assert_eq!(heating as i32, expected.heating(), "{tenant} at {temp} °C");
            assert_eq!(cooling as i32, expected.cooling(), "{tenant} at {temp} °C");
            // …and body-addressed, bit-identically.
            let body = format!(r#"{{"tenant":"{tenant}","zone_temperature":{temp}}}"#);
            let (status, _, text) = client.request("POST", "/decide", &[], &body).unwrap();
            assert_eq!(status, 200, "{text}");
            let v = parse(&text).unwrap();
            assert_eq!(
                v.get("heating_setpoint").and_then(JsonValue::as_u64),
                Some(heating)
            );
            assert_eq!(
                v.get("cooling_setpoint").and_then(JsonValue::as_u64),
                Some(cooling)
            );
        }
    }

    // The roster reports every tenant with its decision count.
    let (status, roster) = blocking_request(server.addr(), "GET", "/tenants", "").unwrap();
    assert_eq!(status, 200);
    let v = parse(&roster).unwrap();
    assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(v.get("policies").and_then(JsonValue::as_u64), Some(2));
    let tenants = v.get("tenants").and_then(JsonValue::as_array).unwrap();
    for t in tenants {
        assert_eq!(
            t.get("decisions").and_then(JsonValue::as_u64),
            Some(2 * temps.len() as u64),
            "{roster}"
        );
    }
    let (_, version) = blocking_request(server.addr(), "GET", "/version", "").unwrap();
    let v = parse(&version).unwrap();
    assert_eq!(v.get("fleet").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(v.get("tenants").and_then(JsonValue::as_u64), Some(3));
    server.shutdown();
}

#[test]
fn lockstep_tick_matches_per_tenant_decides_bit_for_bit() {
    let build = |split| {
        let fleet = Fleet::new(FleetOptions::default());
        for i in 0..8 {
            fleet
                .add_tenant(&format!("zone-{i}"), toy_policy(split), None)
                .unwrap();
        }
        fleet
    };
    let ticked = build(19.0);
    let scalar = build(19.0);

    // Drive both fleets through the same observation schedule: one via
    // lockstep tick(), one via per-tenant HTTP decides.
    let server = serve_fleet(scalar, "127.0.0.1:0").expect("bind");
    let mut client = BlockingClient::connect(server.addr()).unwrap();
    for step in 0..10 {
        let requests: Vec<(String, Observation)> = (0..8)
            .map(|i| {
                let temp = 13.0 + f64::from(step) * 0.7 + f64::from(i) * 0.3;
                (format!("zone-{i}"), obs(temp))
            })
            .collect();
        let decisions = ticked.tick(&requests).unwrap();
        assert_eq!(decisions.len(), 8);
        for (i, decision) in decisions.iter().enumerate() {
            assert_eq!(decision.tenant, format!("zone-{i}"), "original order kept");
            let temp = 13.0 + f64::from(step) * 0.7 + i as f64 * 0.3;
            let body = format!(r#"{{"zone_temperature":{temp}}}"#);
            let (status, _, text) = client
                .request("POST", &format!("/decide/zone-{i}"), &[], &body)
                .unwrap();
            assert_eq!(status, 200, "{text}");
            let v = parse(&text).unwrap();
            assert_eq!(
                v.get("heating_setpoint").and_then(JsonValue::as_u64),
                Some(decision.action.heating() as u64),
                "step {step} zone-{i}"
            );
            assert_eq!(
                v.get("cooling_setpoint").and_then(JsonValue::as_u64),
                Some(decision.action.cooling() as u64),
                "step {step} zone-{i}"
            );
            assert_eq!(
                v.get("guard_state").and_then(JsonValue::as_str),
                Some(decision.state.name()),
                "step {step} zone-{i}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn tick_endpoint_decides_a_batch_and_rejects_malformed_ones() {
    let fleet = Fleet::new(FleetOptions::default());
    fleet.add_tenant("a", toy_policy(20.0), None).unwrap();
    fleet.add_tenant("b", toy_policy(20.0), None).unwrap();
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");

    let body = r#"{"requests":[
        {"tenant":"a","observation":{"zone_temperature":15.0}},
        {"tenant":"b","observation":{"zone_temperature":23.0}}]}"#;
    let (status, text) = blocking_request(server.addr(), "POST", "/tick", body).unwrap();
    assert_eq!(status, 200, "{text}");
    let v = parse(&text).unwrap();
    assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(2));
    let decisions = v.get("decisions").and_then(JsonValue::as_array).unwrap();
    assert_eq!(
        decisions[0]
            .get("heating_setpoint")
            .and_then(JsonValue::as_u64),
        Some(23)
    );
    assert_eq!(
        decisions[1]
            .get("heating_setpoint")
            .and_then(JsonValue::as_u64),
        Some(SetpointAction::off().heating() as u64)
    );

    // Unknown tenant fails the whole batch before any lock is taken.
    let body = r#"{"requests":[{"tenant":"nope","observation":{"zone_temperature":15}}]}"#;
    let (status, text) = blocking_request(server.addr(), "POST", "/tick", body).unwrap();
    assert_eq!(status, 422);
    assert!(text.contains("unknown tenant"), "{text}");

    // Duplicate tenant violates lockstep.
    let body = r#"{"requests":[
        {"tenant":"a","observation":{"zone_temperature":15}},
        {"tenant":"a","observation":{"zone_temperature":16}}]}"#;
    let (status, text) = blocking_request(server.addr(), "POST", "/tick", body).unwrap();
    assert_eq!(status, 422);
    assert!(text.contains("duplicate tenant"), "{text}");

    // Shape errors name every offending element.
    let body = r#"{"requests":[{"tenant":"a"},{"observation":{"zone_temperature":1}}]}"#;
    let (status, text) = blocking_request(server.addr(), "POST", "/tick", body).unwrap();
    assert_eq!(status, 422);
    assert!(
        text.contains("request 0") && text.contains("request 1"),
        "{text}"
    );
    server.shutdown();
}

#[test]
fn unknown_and_invalid_tenants_are_structured_errors() {
    let fleet = Fleet::new(FleetOptions::default());
    fleet.add_tenant("only", toy_policy(20.0), None).unwrap();
    fleet.add_tenant("other", toy_policy(20.0), None).unwrap();
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");
    let body = r#"{"zone_temperature":18}"#;

    // Unknown tenant in the path: 404.
    let (status, text) = blocking_request(server.addr(), "POST", "/decide/ghost", body).unwrap();
    assert_eq!(status, 404, "{text}");
    assert!(text.contains("unknown tenant"), "{text}");

    // Unknown tenant in the body: 404 too.
    let named = r#"{"tenant":"ghost","zone_temperature":18}"#;
    let (status, _) = blocking_request(server.addr(), "POST", "/decide", named).unwrap();
    assert_eq!(status, 404);

    // Invalid id charset (dots could escape the audit dir): 422.
    let (status, text) = blocking_request(server.addr(), "POST", "/decide/../etc", body).unwrap();
    assert_eq!(status, 422, "{text}");

    // Multi-tenant fleet with no tenant named: 422 pointing at both
    // addressing forms.
    let (status, text) = blocking_request(server.addr(), "POST", "/decide", body).unwrap();
    assert_eq!(status, 422);
    assert!(text.contains("tenant"), "{text}");

    // Non-string tenant field: 422.
    let named = r#"{"tenant":7,"zone_temperature":18}"#;
    let (status, _) = blocking_request(server.addr(), "POST", "/decide", named).unwrap();
    assert_eq!(status, 422);
    server.shutdown();
}

#[test]
fn single_tenant_fleet_accepts_unnamed_decides() {
    let fleet = Fleet::new(FleetOptions::default());
    fleet.add_tenant("solo", toy_policy(20.0), None).unwrap();
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");
    let (status, text) = blocking_request(
        server.addr(),
        "POST",
        "/decide",
        r#"{"zone_temperature":15}"#,
    )
    .unwrap();
    assert_eq!(status, 200, "{text}");
    let v = parse(&text).unwrap();
    assert_eq!(v.get("tenant").and_then(JsonValue::as_str), Some("solo"));
    assert_eq!(
        v.get("heating_setpoint").and_then(JsonValue::as_u64),
        Some(23)
    );
    server.shutdown();
}

#[test]
fn one_tenants_faulted_stream_never_degrades_another() {
    let fleet = Fleet::new(FleetOptions::default());
    fleet.add_tenant("noisy", toy_policy(20.0), None).unwrap();
    fleet.add_tenant("clean", toy_policy(20.0), None).unwrap();
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");

    // Hammer the noisy tenant with out-of-range readings until its
    // guard has walked the whole ladder.
    for _ in 0..8 {
        let (status, text) = blocking_request(
            server.addr(),
            "POST",
            "/decide/noisy",
            r#"{"zone_temperature":300}"#,
        )
        .unwrap();
        assert_eq!(status, 200, "{text}");
    }
    let (_, text) = blocking_request(
        server.addr(),
        "POST",
        "/decide/noisy",
        r#"{"zone_temperature":300}"#,
    )
    .unwrap();
    let v = parse(&text).unwrap();
    assert_eq!(
        v.get("guard_state").and_then(JsonValue::as_str),
        Some("fallback"),
        "{text}"
    );

    // The clean tenant's guard never left the normal rung.
    let (_, text) = blocking_request(
        server.addr(),
        "POST",
        "/decide/clean",
        r#"{"zone_temperature":18}"#,
    )
    .unwrap();
    let v = parse(&text).unwrap();
    assert_eq!(
        v.get("guard_state").and_then(JsonValue::as_str),
        Some("normal"),
        "{text}"
    );
    server.shutdown();
}

#[test]
fn loaded_shutdown_still_seals_every_chain_green() {
    let dir = fresh_dir("loaded-shutdown");
    let tenants = ["alpha", "beta", "gamma", "delta"];
    let fleet = Fleet::new(FleetOptions {
        audit_dir: Some(dir.clone()),
        ..FleetOptions::default()
    });
    for t in tenants {
        fleet.add_tenant(t, toy_policy(20.0), None).unwrap();
    }
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // One hammering client per tenant, all firing through keep-alive
    // connections until the server shuts down under them.
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = tenants
        .iter()
        .map(|tenant| {
            let stop = Arc::clone(&stop);
            let tenant = tenant.to_string();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut client = match BlockingClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return 0,
                };
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let temp = 14 + i % 10;
                    let body = format!(r#"{{"zone_temperature":{temp}}}"#);
                    match client.request("POST", &format!("/decide/{tenant}"), &[], &body) {
                        Ok((200, _, _)) => ok += 1,
                        // Shutdown raced the request: reconnects will
                        // fail too, so stop counting.
                        _ => break,
                    }
                    i += 1;
                }
                ok
            })
        })
        .collect();

    // Let traffic build, then shut down while requests are in flight.
    std::thread::sleep(std::time::Duration::from_millis(300));
    server.shutdown();
    stop.store(true, Ordering::Relaxed);
    let served: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        served.iter().all(|&n| n > 0),
        "every tenant saw traffic: {served:?}"
    );

    // Every chain sealed AFTER its last decision: the worker pool
    // drains before shutdown hooks run, so each file ends on a seal
    // record covering at least every 200-answered decision, and the
    // offline auditor passes.
    let reference = toy_policy(20.0);
    for (tenant, &count) in tenants.iter().zip(&served) {
        let text = std::fs::read_to_string(dir.join(format!("{tenant}.jsonl"))).unwrap();
        assert!(text.ends_with('\n'), "{tenant} chain ends mid-record");
        assert!(
            text.lines().last().unwrap().contains(r#""kind":"seal""#),
            "{tenant} chain does not end in a seal"
        );
        let report = Auditor::new(&text).with_policy(&reference).run();
        assert!(report.passed(), "{tenant}: {report}");
        assert!(report.sealed, "{tenant} chain is unsealed");
        assert!(
            report.decisions >= count,
            "{tenant}: chain has {} decisions but the client saw {count} OKs",
            report.decisions
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_bodies_beyond_the_single_decide_cap_are_accepted_on_tick() {
    // The tick endpoint exists precisely because batches outgrow the
    // single-observation body cap.
    let fleet = Fleet::new(FleetOptions::default());
    for i in 0..64 {
        fleet
            .add_tenant(&format!("t{i}"), toy_policy(20.0), None)
            .unwrap();
    }
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");
    let mut body = String::from("{\"requests\":[");
    for i in 0..64 {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            r#"{{"tenant":"t{i}","observation":{{"zone_temperature":18.0,"outdoor_temperature":-3.0,"relative_humidity":55.0,"wind_speed":4.5,"solar_radiation":120.0,"occupant_count":3,"hour_of_day":10.5}}}}"#
        ));
    }
    body.push_str("]}");
    assert!(
        body.len() > MAX_DECIDE_BODY_BYTES / 2,
        "batch is meaningfully large"
    );
    let (status, text) = blocking_request(server.addr(), "POST", "/tick", &body).unwrap();
    assert_eq!(status, 200, "{text}");
    let v = parse(&text).unwrap();
    assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(64));
    server.shutdown();
}

#[test]
fn killed_fleet_restarts_bit_identically_with_one_recovery_record() {
    use veri_hvac::fleet::FleetOptions as FO;
    let dir = fresh_dir("restart");
    let fleet = Fleet::new(FO {
        audit_dir: Some(dir.clone()),
        ..FO::default()
    });
    fleet.add_tenant("alpha", toy_policy(20.0), None).unwrap();
    // An uninterrupted reference controller sees the exact same stream.
    let reference = Fleet::new(FO::default());
    reference
        .add_tenant("alpha", toy_policy(20.0), None)
        .unwrap();

    // Walk the guard off the normal rung so rehydration has real state
    // to carry, then snapshot (the drain / periodic snapshot).
    for _ in 0..9 {
        let r = vec![("alpha".to_string(), obs(300.0))];
        fleet.tick(&r).unwrap();
        reference.tick(&r).unwrap();
    }
    assert_eq!(fleet.snapshot_all(), 1);
    // Crash: no drop-seal, and a torn half-record on the chain tail
    // (the decision that was mid-write when the process died).
    std::mem::forget(fleet);
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("alpha.jsonl"))
            .unwrap();
        f.write_all(b"310 {\"kind\":\"decision\",\"seq\":99,\"prev")
            .unwrap();
    }

    // Restart over the same audit dir: the chain is recovered and the
    // guard rehydrated from the snapshot.
    let restarted = Fleet::new(FO {
        audit_dir: Some(dir.clone()),
        ..FO::default()
    });
    restarted
        .add_tenant("alpha", toy_policy(20.0), None)
        .unwrap();

    // One more bad reading proves the rehydration: a guard that kept
    // its 9-deep invalid run answers from the fallback rung, where a
    // fresh guard would only now be starting its first hold.
    let bad = vec![("alpha".to_string(), obs(300.0))];
    let a = restarted.tick(&bad).unwrap();
    let b = reference.tick(&bad).unwrap();
    assert_eq!(a[0].state.name(), b[0].state.name());
    assert_eq!(
        a[0].state.name(),
        "fallback",
        "a fresh (non-rehydrated) guard could not be this deep in the ladder"
    );

    // From here both controllers see a clean stream: every decision and
    // guard rung must match bit-for-bit.
    for step in 0..40 {
        let r = vec![("alpha".to_string(), obs(15.0 + f64::from(step) * 0.2))];
        let a = restarted.tick(&r).unwrap();
        let b = reference.tick(&r).unwrap();
        assert_eq!(a[0].action, b[0].action, "step {step}");
        assert_eq!(a[0].state.name(), b[0].state.name(), "step {step}");
    }

    // Seal and audit: green, exactly one recovery record, torn bytes
    // gone.
    drop(restarted);
    let text = std::fs::read_to_string(dir.join("alpha.jsonl")).unwrap();
    assert!(!text.contains("\"seq\":99,\"prev"), "torn tail truncated");
    let report = Auditor::new(&text).with_policy(&toy_policy(20.0)).run();
    assert!(report.passed(), "{report}");
    assert_eq!(report.recoveries, 1, "{report}");
    assert!(report.sealed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_diffs_swaps_archives_and_rolls_back_atomically() {
    use veri_hvac::fleet::TenantSpec;
    let dir = fresh_dir("reload");
    let fleet = Fleet::new(FleetOptions {
        audit_dir: Some(dir.clone()),
        ..FleetOptions::default()
    });
    fleet.add_tenant("a", toy_policy(20.0), None).unwrap();
    fleet.add_tenant("b", toy_policy(17.0), None).unwrap();
    let batch = vec![("a".to_string(), obs(18.0)), ("b".to_string(), obs(18.0))];
    fleet.tick(&batch).unwrap();
    // 18 °C under b's split of 17: off.
    assert_eq!(fleet.tick(&batch).unwrap()[1].action, SetpointAction::off());

    let spec = |id: &str, split: f64| TenantSpec {
        id: id.to_string(),
        policy: toy_policy(split),
        certificate_id: None,
    };
    let report = fleet
        .reload(vec![spec("a", 20.0), spec("b", 19.0), spec("c", 20.0)])
        .unwrap();
    assert_eq!(report.added, vec!["c".to_string()]);
    assert_eq!(report.changed, vec!["b".to_string()]);
    assert!(report.removed.is_empty());
    assert_eq!(report.unchanged, vec!["a".to_string()]);
    assert_eq!(fleet.tenant_ids(), ["a", "b", "c"]);

    // b immediately serves the new split: 18 °C now heats.
    assert_eq!(fleet.tick(&batch).unwrap()[1].action.heating(), 23);
    // Its superseded chain was sealed and archived; the live file is a
    // fresh genesis. The unchanged tenant's chain carried straight on.
    let archived = std::fs::read_to_string(dir.join("b.jsonl.archived-1")).unwrap();
    assert!(
        archived
            .lines()
            .last()
            .unwrap()
            .contains("\"kind\":\"seal\""),
        "archived chain must be sealed"
    );
    let live = std::fs::read_to_string(dir.join("b.jsonl")).unwrap();
    assert_eq!(
        live.lines()
            .filter(|l| l.contains("\"kind\":\"genesis\""))
            .count(),
        1
    );
    assert!(!dir.join("a.jsonl.archived-1").exists());

    // Dropping c from the manifest seals and archives its chain too.
    let report = fleet
        .reload(vec![spec("a", 20.0), spec("b", 19.0)])
        .unwrap();
    assert_eq!(report.removed, vec!["c".to_string()]);
    assert_eq!(fleet.tenant_ids(), ["a", "b"]);
    assert!(dir.join("c.jsonl.archived-1").exists());
    assert!(!dir.join("c.jsonl").exists());

    // An empty manifest and an invalid spec are both refused with the
    // serving roster intact and no stray scratch files.
    assert!(fleet.reload(Vec::new()).is_err());
    let err = fleet
        .reload(vec![spec("a", 20.0), spec("../evil", 20.0)])
        .unwrap_err();
    assert!(err.contains("invalid tenant id"), "{err}");
    assert_eq!(fleet.tenant_ids(), ["a", "b"]);
    assert!(
        std::fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .contains(".new")),
        "failed reloads must clean up their scratch chains"
    );
    drop(fleet);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tick_serves_the_compiled_kernel_bit_identically_to_the_enum_walk() {
    // Two fleets over the same trees: one serving the flat compiled
    // kernel (the default — DtPolicy::new proves and installs it), one
    // pinned to the reference enum walk. Every lockstep decision must
    // agree bit for bit, or the fast path is not a fast path.
    let splits = [14.5, 17.0, 19.5, 21.0];
    let compiled_fleet = Fleet::new(FleetOptions::default());
    let walk_fleet = Fleet::new(FleetOptions::default());
    for (i, &split) in splits.iter().enumerate() {
        let policy = toy_policy(split);
        assert!(
            policy.compiled().is_some(),
            "fitted trees must compile and prove"
        );
        let walk = DtPolicy::new_uncompiled(policy.tree().clone()).expect("same tree, no kernel");
        assert!(walk.compiled().is_none());
        compiled_fleet
            .add_tenant(&format!("zone-{i}"), policy, None)
            .unwrap();
        walk_fleet
            .add_tenant(&format!("zone-{i}"), walk, None)
            .unwrap();
    }

    // Sweep across both sides of every split, the splits themselves,
    // and guard-hostile temps (the guard holds/falls back before the
    // policy, identically in both fleets).
    for step in 0..60 {
        let temp = 11.0 + f64::from(step) * 0.21;
        let requests: Vec<(String, Observation)> = (0..splits.len())
            .map(|i| (format!("zone-{i}"), obs(temp + i as f64 * 0.045)))
            .collect();
        let fast = compiled_fleet.tick(&requests).unwrap();
        let slow = walk_fleet.tick(&requests).unwrap();
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.tenant, s.tenant);
            assert_eq!(f.action, s.action, "step {step} tenant {}", f.tenant);
            assert_eq!(f.state, s.state, "step {step} tenant {}", f.tenant);
        }
    }
}

#[test]
fn malformed_manifest_policy_is_a_per_tenant_409_not_a_worker_panic() {
    use veri_hvac::fleet::{serve_fleet_with_reload, TenantSpec};
    let fleet = Fleet::new(FleetOptions::default());
    fleet.add_tenant("good", toy_policy(20.0), None).unwrap();

    // The reload source replays what the manifest loader does per
    // tenant: parse the policy file, surface a typed error naming the
    // tenant. A split whose child index points past the arena must come
    // back as a structured refusal, never a panic.
    let malformed = "dtree v1\nfeatures 7\nclasses 90\nnodes 3\nS 0 20.0 9 2\nL 0 10\nL 1 10\n";
    let source: Arc<veri_hvac::fleet::ReloadSource> = Arc::new(move || {
        let policy = DtPolicy::from_compact_string(malformed)
            .map_err(|e| format!("tenant \"bad\": malformed policy: {e}"))?;
        Ok(vec![TenantSpec {
            id: "bad".to_string(),
            policy,
            certificate_id: None,
        }])
    });
    let server = serve_fleet_with_reload(fleet, "127.0.0.1:0", Some(source)).expect("bind");
    let mut admin = BlockingClient::connect(server.addr()).unwrap();
    let (status, _, text) = admin.request("POST", "/admin/reload", &[], "").unwrap();
    assert_eq!(status, 409, "{text}");
    assert!(text.contains("tenant"), "{text}");
    assert!(
        text.contains("references child 9"),
        "the typed TreeError detail must reach the operator: {text}"
    );

    // The serving roster is untouched and still decides.
    let body = r#"{"zone_temperature":16.0}"#;
    let (status, _, text) = admin.request("POST", "/decide/good", &[], body).unwrap();
    assert_eq!(status, 200, "{text}");
    server.shutdown();
}

#[test]
fn admin_reload_swaps_under_load_without_tearing_batches() {
    use std::sync::atomic::AtomicUsize;
    use veri_hvac::fleet::{serve_fleet_with_reload, TenantSpec};
    let fleet = Fleet::new(FleetOptions::default());
    fleet.add_tenant("a", toy_policy(20.0), None).unwrap();
    fleet.add_tenant("b", toy_policy(17.0), None).unwrap();

    // Each reload flips b between two splits; a never changes.
    let flips = Arc::new(AtomicUsize::new(0));
    let source_flips = Arc::clone(&flips);
    let source: Arc<veri_hvac::fleet::ReloadSource> = Arc::new(move || {
        let n = source_flips.fetch_add(1, Ordering::Relaxed) + 1;
        let split = if n.is_multiple_of(2) { 17.0 } else { 19.0 };
        Ok(vec![
            TenantSpec {
                id: "a".to_string(),
                policy: toy_policy(20.0),
                certificate_id: None,
            },
            TenantSpec {
                id: "b".to_string(),
                policy: toy_policy(split),
                certificate_id: None,
            },
        ])
    });
    let server = serve_fleet_with_reload(fleet, "127.0.0.1:0", Some(source)).expect("bind");
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let off_heat = SetpointAction::off().heating() as u64;
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = BlockingClient::connect(addr).unwrap();
                let body = r#"{"requests":[
                    {"tenant":"a","observation":{"zone_temperature":18.0}},
                    {"tenant":"b","observation":{"zone_temperature":18.0}}]}"#;
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (status, _, text) = client.request("POST", "/tick", &[], body).unwrap();
                    // Never a torn batch: always both answers, a's from
                    // its stable policy, b's from one of the two live
                    // splits.
                    assert_eq!(status, 200, "{text}");
                    let v = parse(&text).unwrap();
                    assert_eq!(
                        v.get("count").and_then(JsonValue::as_u64),
                        Some(2),
                        "{text}"
                    );
                    let d = v.get("decisions").and_then(JsonValue::as_array).unwrap();
                    assert_eq!(
                        d[0].get("heating_setpoint").and_then(JsonValue::as_u64),
                        Some(23),
                        "{text}"
                    );
                    let b_heat = d[1]
                        .get("heating_setpoint")
                        .and_then(JsonValue::as_u64)
                        .unwrap();
                    assert!(b_heat == 23 || b_heat == off_heat, "{text}");
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Reload repeatedly while the batches fly.
    let mut admin = BlockingClient::connect(addr).unwrap();
    for i in 0..6 {
        let (status, _, text) = admin.request("POST", "/admin/reload", &[], "").unwrap();
        assert_eq!(status, 200, "reload {i}: {text}");
        let v = parse(&text).unwrap();
        let changed = v.get("changed").and_then(JsonValue::as_array).unwrap();
        assert_eq!(changed.len(), 1, "reload {i}: {text}");
        assert_eq!(v.get("unchanged").and_then(JsonValue::as_u64), Some(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    let served: Vec<u64> = hammers.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(served.iter().all(|&n| n > 0), "{served:?}");
    assert!(flips.load(Ordering::Relaxed) >= 6);
    server.shutdown();
}
