//! Integration tests for the multi-tenant fleet controller: per-tenant
//! bit-identity against in-process decisions, tenant routing and
//! isolation, lockstep `/tick` batching, and the loaded-shutdown
//! guarantee that every tenant's audit chain still seals green under
//! concurrent traffic.

use hvac_telemetry::http::{blocking_request, BlockingClient};
use hvac_telemetry::json::{parse, JsonValue};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use veri_hvac::audit::Auditor;
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{
    ActionSpace, Disturbances, Observation, Policy, SetpointAction, POLICY_INPUT_DIM,
};
use veri_hvac::fleet::{serve_fleet, Fleet, FleetOptions};
use veri_hvac::serve::MAX_DECIDE_BODY_BYTES;

/// Cold zones → heat hard, warm zones → off (the serve tests' toy
/// tree), with a tunable split so tenants can run distinct policies.
fn toy_policy(split: f64) -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        let temp = 12.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < split { heat } else { off });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

fn obs(temp: f64) -> Observation {
    Observation::new(temp, Disturbances::default())
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hvac-fleet-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn multi_tenant_decisions_are_bit_identical_to_in_process() {
    // Three tenants over two distinct trees: a and b share one policy
    // (the registry must dedup them), c runs its own.
    let mut fleet = Fleet::new(FleetOptions::default());
    fleet
        .add_tenant("building-a", toy_policy(20.0), None)
        .unwrap();
    fleet
        .add_tenant("building-b", toy_policy(20.0), None)
        .unwrap();
    fleet
        .add_tenant("building-c", toy_policy(17.0), None)
        .unwrap();
    assert_eq!(fleet.registry().len(), 2, "shared tree is deduped");
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");

    let mut references = vec![
        ("building-a", toy_policy(20.0)),
        ("building-b", toy_policy(20.0)),
        ("building-c", toy_policy(17.0)),
    ];
    let temps = [14.0, 16.2, 17.9, 19.1, 21.4, 23.0];
    let mut client = BlockingClient::connect(server.addr()).unwrap();
    for (tenant, reference) in &mut references {
        for temp in temps {
            let expected = reference.decide(&obs(temp));
            // Path-addressed…
            let body = format!(r#"{{"zone_temperature":{temp}}}"#);
            let (status, _, text) = client
                .request("POST", &format!("/decide/{tenant}"), &[], &body)
                .unwrap();
            assert_eq!(status, 200, "{text}");
            let v = parse(&text).unwrap();
            assert_eq!(
                v.get("tenant").and_then(JsonValue::as_str),
                Some(*tenant),
                "{text}"
            );
            let heating = v
                .get("heating_setpoint")
                .and_then(JsonValue::as_u64)
                .unwrap();
            let cooling = v
                .get("cooling_setpoint")
                .and_then(JsonValue::as_u64)
                .unwrap();
            assert_eq!(heating as i32, expected.heating(), "{tenant} at {temp} °C");
            assert_eq!(cooling as i32, expected.cooling(), "{tenant} at {temp} °C");
            // …and body-addressed, bit-identically.
            let body = format!(r#"{{"tenant":"{tenant}","zone_temperature":{temp}}}"#);
            let (status, _, text) = client.request("POST", "/decide", &[], &body).unwrap();
            assert_eq!(status, 200, "{text}");
            let v = parse(&text).unwrap();
            assert_eq!(
                v.get("heating_setpoint").and_then(JsonValue::as_u64),
                Some(heating)
            );
            assert_eq!(
                v.get("cooling_setpoint").and_then(JsonValue::as_u64),
                Some(cooling)
            );
        }
    }

    // The roster reports every tenant with its decision count.
    let (status, roster) = blocking_request(server.addr(), "GET", "/tenants", "").unwrap();
    assert_eq!(status, 200);
    let v = parse(&roster).unwrap();
    assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(v.get("policies").and_then(JsonValue::as_u64), Some(2));
    let tenants = v.get("tenants").and_then(JsonValue::as_array).unwrap();
    for t in tenants {
        assert_eq!(
            t.get("decisions").and_then(JsonValue::as_u64),
            Some(2 * temps.len() as u64),
            "{roster}"
        );
    }
    let (_, version) = blocking_request(server.addr(), "GET", "/version", "").unwrap();
    let v = parse(&version).unwrap();
    assert_eq!(v.get("fleet").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(v.get("tenants").and_then(JsonValue::as_u64), Some(3));
    server.shutdown();
}

#[test]
fn lockstep_tick_matches_per_tenant_decides_bit_for_bit() {
    let build = |split| {
        let mut fleet = Fleet::new(FleetOptions::default());
        for i in 0..8 {
            fleet
                .add_tenant(&format!("zone-{i}"), toy_policy(split), None)
                .unwrap();
        }
        fleet
    };
    let ticked = build(19.0);
    let scalar = build(19.0);

    // Drive both fleets through the same observation schedule: one via
    // lockstep tick(), one via per-tenant HTTP decides.
    let server = serve_fleet(scalar, "127.0.0.1:0").expect("bind");
    let mut client = BlockingClient::connect(server.addr()).unwrap();
    for step in 0..10 {
        let requests: Vec<(String, Observation)> = (0..8)
            .map(|i| {
                let temp = 13.0 + f64::from(step) * 0.7 + f64::from(i) * 0.3;
                (format!("zone-{i}"), obs(temp))
            })
            .collect();
        let decisions = ticked.tick(&requests).unwrap();
        assert_eq!(decisions.len(), 8);
        for (i, decision) in decisions.iter().enumerate() {
            assert_eq!(decision.tenant, format!("zone-{i}"), "original order kept");
            let temp = 13.0 + f64::from(step) * 0.7 + i as f64 * 0.3;
            let body = format!(r#"{{"zone_temperature":{temp}}}"#);
            let (status, _, text) = client
                .request("POST", &format!("/decide/zone-{i}"), &[], &body)
                .unwrap();
            assert_eq!(status, 200, "{text}");
            let v = parse(&text).unwrap();
            assert_eq!(
                v.get("heating_setpoint").and_then(JsonValue::as_u64),
                Some(decision.action.heating() as u64),
                "step {step} zone-{i}"
            );
            assert_eq!(
                v.get("cooling_setpoint").and_then(JsonValue::as_u64),
                Some(decision.action.cooling() as u64),
                "step {step} zone-{i}"
            );
            assert_eq!(
                v.get("guard_state").and_then(JsonValue::as_str),
                Some(decision.state.name()),
                "step {step} zone-{i}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn tick_endpoint_decides_a_batch_and_rejects_malformed_ones() {
    let mut fleet = Fleet::new(FleetOptions::default());
    fleet.add_tenant("a", toy_policy(20.0), None).unwrap();
    fleet.add_tenant("b", toy_policy(20.0), None).unwrap();
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");

    let body = r#"{"requests":[
        {"tenant":"a","observation":{"zone_temperature":15.0}},
        {"tenant":"b","observation":{"zone_temperature":23.0}}]}"#;
    let (status, text) = blocking_request(server.addr(), "POST", "/tick", body).unwrap();
    assert_eq!(status, 200, "{text}");
    let v = parse(&text).unwrap();
    assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(2));
    let decisions = v.get("decisions").and_then(JsonValue::as_array).unwrap();
    assert_eq!(
        decisions[0]
            .get("heating_setpoint")
            .and_then(JsonValue::as_u64),
        Some(23)
    );
    assert_eq!(
        decisions[1]
            .get("heating_setpoint")
            .and_then(JsonValue::as_u64),
        Some(SetpointAction::off().heating() as u64)
    );

    // Unknown tenant fails the whole batch before any lock is taken.
    let body = r#"{"requests":[{"tenant":"nope","observation":{"zone_temperature":15}}]}"#;
    let (status, text) = blocking_request(server.addr(), "POST", "/tick", body).unwrap();
    assert_eq!(status, 422);
    assert!(text.contains("unknown tenant"), "{text}");

    // Duplicate tenant violates lockstep.
    let body = r#"{"requests":[
        {"tenant":"a","observation":{"zone_temperature":15}},
        {"tenant":"a","observation":{"zone_temperature":16}}]}"#;
    let (status, text) = blocking_request(server.addr(), "POST", "/tick", body).unwrap();
    assert_eq!(status, 422);
    assert!(text.contains("duplicate tenant"), "{text}");

    // Shape errors name every offending element.
    let body = r#"{"requests":[{"tenant":"a"},{"observation":{"zone_temperature":1}}]}"#;
    let (status, text) = blocking_request(server.addr(), "POST", "/tick", body).unwrap();
    assert_eq!(status, 422);
    assert!(
        text.contains("request 0") && text.contains("request 1"),
        "{text}"
    );
    server.shutdown();
}

#[test]
fn unknown_and_invalid_tenants_are_structured_errors() {
    let mut fleet = Fleet::new(FleetOptions::default());
    fleet.add_tenant("only", toy_policy(20.0), None).unwrap();
    fleet.add_tenant("other", toy_policy(20.0), None).unwrap();
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");
    let body = r#"{"zone_temperature":18}"#;

    // Unknown tenant in the path: 404.
    let (status, text) = blocking_request(server.addr(), "POST", "/decide/ghost", body).unwrap();
    assert_eq!(status, 404, "{text}");
    assert!(text.contains("unknown tenant"), "{text}");

    // Unknown tenant in the body: 404 too.
    let named = r#"{"tenant":"ghost","zone_temperature":18}"#;
    let (status, _) = blocking_request(server.addr(), "POST", "/decide", named).unwrap();
    assert_eq!(status, 404);

    // Invalid id charset (dots could escape the audit dir): 422.
    let (status, text) = blocking_request(server.addr(), "POST", "/decide/../etc", body).unwrap();
    assert_eq!(status, 422, "{text}");

    // Multi-tenant fleet with no tenant named: 422 pointing at both
    // addressing forms.
    let (status, text) = blocking_request(server.addr(), "POST", "/decide", body).unwrap();
    assert_eq!(status, 422);
    assert!(text.contains("tenant"), "{text}");

    // Non-string tenant field: 422.
    let named = r#"{"tenant":7,"zone_temperature":18}"#;
    let (status, _) = blocking_request(server.addr(), "POST", "/decide", named).unwrap();
    assert_eq!(status, 422);
    server.shutdown();
}

#[test]
fn single_tenant_fleet_accepts_unnamed_decides() {
    let mut fleet = Fleet::new(FleetOptions::default());
    fleet.add_tenant("solo", toy_policy(20.0), None).unwrap();
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");
    let (status, text) = blocking_request(
        server.addr(),
        "POST",
        "/decide",
        r#"{"zone_temperature":15}"#,
    )
    .unwrap();
    assert_eq!(status, 200, "{text}");
    let v = parse(&text).unwrap();
    assert_eq!(v.get("tenant").and_then(JsonValue::as_str), Some("solo"));
    assert_eq!(
        v.get("heating_setpoint").and_then(JsonValue::as_u64),
        Some(23)
    );
    server.shutdown();
}

#[test]
fn one_tenants_faulted_stream_never_degrades_another() {
    let mut fleet = Fleet::new(FleetOptions::default());
    fleet.add_tenant("noisy", toy_policy(20.0), None).unwrap();
    fleet.add_tenant("clean", toy_policy(20.0), None).unwrap();
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");

    // Hammer the noisy tenant with out-of-range readings until its
    // guard has walked the whole ladder.
    for _ in 0..8 {
        let (status, text) = blocking_request(
            server.addr(),
            "POST",
            "/decide/noisy",
            r#"{"zone_temperature":300}"#,
        )
        .unwrap();
        assert_eq!(status, 200, "{text}");
    }
    let (_, text) = blocking_request(
        server.addr(),
        "POST",
        "/decide/noisy",
        r#"{"zone_temperature":300}"#,
    )
    .unwrap();
    let v = parse(&text).unwrap();
    assert_eq!(
        v.get("guard_state").and_then(JsonValue::as_str),
        Some("fallback"),
        "{text}"
    );

    // The clean tenant's guard never left the normal rung.
    let (_, text) = blocking_request(
        server.addr(),
        "POST",
        "/decide/clean",
        r#"{"zone_temperature":18}"#,
    )
    .unwrap();
    let v = parse(&text).unwrap();
    assert_eq!(
        v.get("guard_state").and_then(JsonValue::as_str),
        Some("normal"),
        "{text}"
    );
    server.shutdown();
}

#[test]
fn loaded_shutdown_still_seals_every_chain_green() {
    let dir = fresh_dir("loaded-shutdown");
    let tenants = ["alpha", "beta", "gamma", "delta"];
    let mut fleet = Fleet::new(FleetOptions {
        audit_dir: Some(dir.clone()),
        ..FleetOptions::default()
    });
    for t in tenants {
        fleet.add_tenant(t, toy_policy(20.0), None).unwrap();
    }
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // One hammering client per tenant, all firing through keep-alive
    // connections until the server shuts down under them.
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = tenants
        .iter()
        .map(|tenant| {
            let stop = Arc::clone(&stop);
            let tenant = tenant.to_string();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut client = match BlockingClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return 0,
                };
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let temp = 14 + i % 10;
                    let body = format!(r#"{{"zone_temperature":{temp}}}"#);
                    match client.request("POST", &format!("/decide/{tenant}"), &[], &body) {
                        Ok((200, _, _)) => ok += 1,
                        // Shutdown raced the request: reconnects will
                        // fail too, so stop counting.
                        _ => break,
                    }
                    i += 1;
                }
                ok
            })
        })
        .collect();

    // Let traffic build, then shut down while requests are in flight.
    std::thread::sleep(std::time::Duration::from_millis(300));
    server.shutdown();
    stop.store(true, Ordering::Relaxed);
    let served: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        served.iter().all(|&n| n > 0),
        "every tenant saw traffic: {served:?}"
    );

    // Every chain sealed AFTER its last decision: the worker pool
    // drains before shutdown hooks run, so each file ends on a seal
    // record covering at least every 200-answered decision, and the
    // offline auditor passes.
    let reference = toy_policy(20.0);
    for (tenant, &count) in tenants.iter().zip(&served) {
        let text = std::fs::read_to_string(dir.join(format!("{tenant}.jsonl"))).unwrap();
        assert!(text.ends_with('\n'), "{tenant} chain ends mid-record");
        assert!(
            text.lines().last().unwrap().contains(r#""kind":"seal""#),
            "{tenant} chain does not end in a seal"
        );
        let report = Auditor::new(&text).with_policy(&reference).run();
        assert!(report.passed(), "{tenant}: {report}");
        assert!(report.sealed, "{tenant} chain is unsealed");
        assert!(
            report.decisions >= count,
            "{tenant}: chain has {} decisions but the client saw {count} OKs",
            report.decisions
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_bodies_beyond_the_single_decide_cap_are_accepted_on_tick() {
    // The tick endpoint exists precisely because batches outgrow the
    // single-observation body cap.
    let mut fleet = Fleet::new(FleetOptions::default());
    for i in 0..64 {
        fleet
            .add_tenant(&format!("t{i}"), toy_policy(20.0), None)
            .unwrap();
    }
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");
    let mut body = String::from("{\"requests\":[");
    for i in 0..64 {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            r#"{{"tenant":"t{i}","observation":{{"zone_temperature":18.0,"outdoor_temperature":-3.0,"relative_humidity":55.0,"wind_speed":4.5,"solar_radiation":120.0,"occupant_count":3,"hour_of_day":10.5}}}}"#
        ));
    }
    body.push_str("]}");
    assert!(
        body.len() > MAX_DECIDE_BODY_BYTES / 2,
        "batch is meaningfully large"
    );
    let (status, text) = blocking_request(server.addr(), "POST", "/tick", &body).unwrap();
    assert_eq!(status, 200, "{text}");
    let v = parse(&text).unwrap();
    assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(64));
    server.shutdown();
}
