//! CLI regression tests for the artifact-carrying subcommands: extract
//! must persist the augmenter it actually used, verify must load that
//! augmenter (never refit at a hard-coded noise level), legacy artifact
//! dirs must fail with a clear message, and sweep must be cache-warm
//! deterministic regardless of thread count.

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_veri_hvac");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("veri-hvac-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn veri_hvac binary")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn verify_uses_the_persisted_augmenter_not_a_hardcoded_refit() {
    let out_dir = temp_dir("extract-verify");
    let out = out_dir.to_str().unwrap();

    // Extract at a noise level that differs from both the config
    // default (0.01) and the old hard-coded refit (0.01): if verify
    // refits instead of loading, the notice below cannot appear.
    let extract = run(&[
        "extract",
        "--city",
        "pittsburgh",
        "--noise",
        "0.05",
        "--out-dir",
        out,
        "--quiet",
    ]);
    assert!(
        extract.status.success(),
        "extract failed: {}",
        stderr(&extract)
    );
    let manifest = std::fs::read_to_string(out_dir.join("manifest.json")).unwrap();
    assert!(
        manifest.contains("\"noise_level\":0.05"),
        "manifest must record the extraction noise level: {manifest}"
    );
    assert!(out_dir.join("augmenter.aug").is_file());

    let verify = run(&["verify", "--artifacts", out, "--samples", "200", "--quiet"]);
    assert!(
        verify.status.success(),
        "verify failed: {}",
        stderr(&verify)
    );
    let text = stdout(&verify);
    assert!(
        text.contains("using persisted augmenter (noise 0.05)"),
        "verify must use the manifest's augmenter: {text}"
    );

    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn verify_rejects_legacy_artifact_dirs_with_a_clear_error() {
    let src_dir = temp_dir("legacy-src");
    let src = src_dir.to_str().unwrap();
    let extract = run(&[
        "extract",
        "--city",
        "pittsburgh",
        "--out-dir",
        src,
        "--quiet",
    ]);
    assert!(
        extract.status.success(),
        "extract failed: {}",
        stderr(&extract)
    );

    // A pre-manifest layout: policy + model only.
    let legacy_dir = temp_dir("legacy");
    std::fs::create_dir_all(&legacy_dir).unwrap();
    for file in ["policy.dtree", "model.dynmodel"] {
        std::fs::copy(src_dir.join(file), legacy_dir.join(file)).unwrap();
    }

    let verify = run(&[
        "verify",
        "--artifacts",
        legacy_dir.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(!verify.status.success(), "legacy dir must be rejected");
    let text = stderr(&verify);
    assert!(
        text.contains("predates persisted augmenters"),
        "error must explain the legacy layout: {text}"
    );

    let _ = std::fs::remove_dir_all(&src_dir);
    let _ = std::fs::remove_dir_all(&legacy_dir);
}

#[test]
fn sweep_is_warm_cache_resumable_and_thread_count_invariant() {
    let cache_dir = temp_dir("sweep-cache");
    let cache = cache_dir.to_str().unwrap();
    let cold_out_dir = temp_dir("sweep-cold");
    let warm_out_dir = temp_dir("sweep-warm");
    let single_out_dir = temp_dir("sweep-single");

    let sweep = |threads: &str, out: &PathBuf| {
        run(&[
            "sweep",
            "--cities",
            "pittsburgh",
            "--seeds",
            "0..2",
            "--threads",
            threads,
            "--cache-dir",
            cache,
            "--out",
            out.to_str().unwrap(),
            "--quiet",
        ])
    };

    let cold = sweep("2", &cold_out_dir);
    assert!(
        cold.status.success(),
        "cold sweep failed: {}",
        stderr(&cold)
    );
    let cold_summary = std::fs::read_to_string(cold_out_dir.join("sweep-summary.json")).unwrap();
    assert!(
        cold_summary.contains("\"cache_hits\":0"),
        "cold sweep must miss everything: {cold_summary}"
    );
    assert!(cold_out_dir.join("run-pittsburgh-seed0.json").is_file());
    assert!(cold_out_dir.join("run-pittsburgh-seed1.json").is_file());

    // Second pass over the same cache: every stage of every run hits.
    let warm = sweep("2", &warm_out_dir);
    assert!(
        warm.status.success(),
        "warm sweep failed: {}",
        stderr(&warm)
    );
    let warm_summary = std::fs::read_to_string(warm_out_dir.join("sweep-summary.json")).unwrap();
    assert!(
        warm_summary.contains("\"cache_misses\":0"),
        "warm sweep must hit everything: {warm_summary}"
    );

    // Reports carry no wall times: output is byte-identical whether the
    // pool has one worker or several.
    let single = sweep("1", &single_out_dir);
    assert!(
        single.status.success(),
        "single-thread sweep failed: {}",
        stderr(&single)
    );
    let single_summary =
        std::fs::read_to_string(single_out_dir.join("sweep-summary.json")).unwrap();
    assert_eq!(
        warm_summary, single_summary,
        "sweep output must not depend on --threads"
    );

    // Verification results are identical cold and warm, and every run
    // appears in the aggregate in (city, seed) order.
    let strip_cache = |s: &str| {
        s.replace("\"cache_hits\":0", "")
            .replace("\"cache_hits\":12", "")
            .replace("\"cache_misses\":0", "")
            .replace("\"cache_misses\":12", "")
            .replace("\"cache_hits\":6", "")
            .replace("\"cache_misses\":6", "")
    };
    assert_eq!(strip_cache(&cold_summary), strip_cache(&warm_summary));

    for dir in [&cache_dir, &cold_out_dir, &warm_out_dir, &single_out_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
