//! Seeded randomized hostile-input tests for the serving surface and
//! the policy stack.
//!
//! Ten thousand mutated JSON bodies per seed go through
//! [`veri_hvac::serve::observation_from_json`] and
//! [`veri_hvac::serve::decide_json`]; ten thousand hostile observations
//! (NaN, ±∞, subnormals, absurd magnitudes) go through
//! [`DtPolicy::decide`] raw and wrapped in a [`GuardedPolicy`]. The
//! contract under attack is the same everywhere: **no panic**, and
//! every outcome is either a valid decision or a structured error.
//!
//! The generator is a hand-rolled xorshift64* so the suite stays
//! std-only and every failure replays from its printed seed.

use std::sync::Mutex;

use veri_hvac::control::{DtPolicy, GuardConfig, GuardedPolicy};
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{
    ActionSpace, ComfortRange, Disturbances, Observation, Policy, SetpointAction, COOLING_RANGE,
    HEATING_RANGE, POLICY_INPUT_DIM,
};
use veri_hvac::serve::{decide_json, observation_from_json};

const BODIES_PER_SEED: usize = 10_000;
const SEEDS: [u64; 3] = [0x5EED_0001, 0x5EED_0002, 0x5EED_0003];

/// xorshift64* — deterministic, seed-replayable, no dependencies.
struct XorShift64Star(u64);

impl XorShift64Star {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A value drawn from a hostile distribution: plausible readings,
    /// absurd magnitudes, NaN, infinities, subnormals and exact zeros.
    fn hostile_f64(&mut self) -> f64 {
        match self.below(8) {
            0 => self.f64_unit() * 50.0 - 10.0,
            1 => self.f64_unit() * 2e9 - 1e9,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => f64::MIN_POSITIVE / 2.0,
            6 => 0.0,
            _ => f64::from_bits(self.next_u64()),
        }
    }
}

/// A well-formed decide body, the starting point for mutation.
fn valid_body(rng: &mut XorShift64Star) -> String {
    let fields: Vec<String> = feature::NAMES
        .iter()
        .map(|name| format!("\"{name}\":{:.3}", rng.f64_unit() * 40.0 - 5.0))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Mutates a valid body into something hostile. Every branch is a
/// shape real clients actually send when broken.
fn mutate_body(rng: &mut XorShift64Star, base: &str) -> String {
    const TOKENS: [&str; 10] = [
        "NaN",
        "Infinity",
        "-Infinity",
        "1e999",
        "-1e999",
        "null",
        "\"21\"",
        "[]",
        "{}",
        "1e",
    ];
    match rng.below(6) {
        // Truncate mid-token.
        0 => base[..rng.below(base.len() + 1)].to_string(),
        // Flip a few bytes to arbitrary values.
        1 => {
            let mut bytes = base.as_bytes().to_vec();
            for _ in 0..=rng.below(4) {
                let i = rng.below(bytes.len());
                bytes[i] = (rng.next_u64() & 0xFF) as u8;
            }
            String::from_utf8_lossy(&bytes).into_owned()
        }
        // Splice a hostile token at a random position.
        2 => {
            let i = rng.below(base.len() + 1);
            let mut s = base.to_string();
            s.insert_str(i, TOKENS[rng.below(TOKENS.len())]);
            s
        }
        // Replace one field's value with a hostile literal.
        3 => {
            let name = feature::NAMES[rng.below(POLICY_INPUT_DIM)];
            let token = TOKENS[rng.below(TOKENS.len())];
            let fields: Vec<String> = feature::NAMES
                .iter()
                .map(|n| {
                    if *n == name {
                        format!("\"{n}\":{token}")
                    } else {
                        format!("\"{n}\":21.0")
                    }
                })
                .collect();
            format!("{{{}}}", fields.join(","))
        }
        // Pure garbage bytes.
        4 => {
            let len = rng.below(64);
            let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            String::from_utf8_lossy(&bytes).into_owned()
        }
        // Drop a random number of fields.
        _ => {
            let keep = rng.below(POLICY_INPUT_DIM + 1);
            let fields: Vec<String> = feature::NAMES
                .iter()
                .take(keep)
                .map(|n| format!("\"{n}\":21.0"))
                .collect();
            format!("{{{}}}", fields.join(","))
        }
    }
}

/// Cold zones → heat, warm zones → off: enough structure for the tree
/// to exercise real split paths under attack.
fn toy_policy() -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..20 {
        let temp = 14.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < 20.0 { heat } else { off });
    }
    let tree =
        DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).expect("fit");
    DtPolicy::new(tree).expect("policy")
}

fn assert_legal(action: SetpointAction, context: &str) {
    assert!(
        HEATING_RANGE.contains(&action.heating()) && COOLING_RANGE.contains(&action.cooling()),
        "{context}: illegal action {action:?}"
    );
}

#[test]
fn mutated_bodies_never_panic_the_observation_parser() {
    for seed in SEEDS {
        let mut rng = XorShift64Star::new(seed);
        for i in 0..BODIES_PER_SEED {
            let base = valid_body(&mut rng);
            let body = mutate_body(&mut rng, &base);
            match observation_from_json(&body) {
                Ok(obs) => {
                    // Anything accepted must be fully finite: the
                    // parser is the first line of the NaN defense.
                    assert!(
                        obs.to_vector().iter().all(|v| v.is_finite()),
                        "seed {seed:#x} body {i}: non-finite observation accepted: {body:?}"
                    );
                }
                Err(message) => {
                    assert!(
                        !message.is_empty(),
                        "seed {seed:#x} body {i}: empty error for {body:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn mutated_decide_bodies_yield_a_decision_or_a_structured_error() {
    let policy = Mutex::new(GuardedPolicy::new(
        toy_policy(),
        GuardConfig::new(ComfortRange::winter()),
    ));
    for seed in SEEDS {
        let mut rng = XorShift64Star::new(seed);
        for i in 0..BODIES_PER_SEED {
            let base = valid_body(&mut rng);
            let body = mutate_body(&mut rng, &base);
            match decide_json(&policy, &body) {
                Ok(response) => {
                    for key in ["heating_setpoint", "cooling_setpoint", "guard_state"] {
                        assert!(
                            response.contains(key),
                            "seed {seed:#x} body {i}: decision missing {key}: {response}"
                        );
                    }
                }
                Err(message) => {
                    assert!(
                        !message.is_empty(),
                        "seed {seed:#x} body {i}: empty error for {body:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn hostile_observations_never_panic_raw_or_guarded_policies() {
    let mut raw = toy_policy();
    let mut guarded = GuardedPolicy::new(toy_policy(), GuardConfig::new(ComfortRange::winter()));
    for seed in SEEDS {
        let mut rng = XorShift64Star::new(seed);
        for i in 0..BODIES_PER_SEED {
            let obs = Observation::new(
                rng.hostile_f64(),
                Disturbances {
                    outdoor_temperature: rng.hostile_f64(),
                    relative_humidity: rng.hostile_f64(),
                    wind_speed: rng.hostile_f64(),
                    solar_radiation: rng.hostile_f64(),
                    occupant_count: rng.hostile_f64(),
                    hour_of_day: rng.hostile_f64(),
                },
            );
            // The bare tree must stay panic-free even on NaN paths
            // (comparisons send NaN down a deterministic branch)...
            assert_legal(raw.decide(&obs), &format!("raw, seed {seed:#x} obs {i}"));
            // ...and the guard must both survive and stay legal.
            assert_legal(
                guarded.decide(&obs),
                &format!("guarded, seed {seed:#x} obs {i}"),
            );
        }
    }
}

/// The malformed-tree corpus: every shape of broken policy file the
/// loaders must reject with a typed error — cycles, dangling child
/// indices, non-finite thresholds, truncations — plus seeded random
/// mutations of a valid artifact. Covers both the enum-tree format
/// (`dtree v1`) and the compiled-kernel format (`ctree v1`); the
/// contract is the hostile-input contract everywhere: **no panic**,
/// **no loop**, every outcome a parsed tree or a structured error.
#[test]
fn malformed_tree_corpus_is_rejected_not_served() {
    use veri_hvac::dtree::{CompileOptions, CompiledTree};

    let dtree_corpus: &[(&str, &str)] = &[
        (
            "cycle (self-referencing split)",
            "dtree v1\nfeatures 7\nclasses 90\nnodes 1\nS 0 20.0 0 0\n",
        ),
        (
            "cycle (two-node loop)",
            "dtree v1\nfeatures 7\nclasses 90\nnodes 2\nS 0 20.0 1 1\nS 1 5.0 0 0\n",
        ),
        (
            "bad child index",
            "dtree v1\nfeatures 7\nclasses 90\nnodes 3\nS 0 20.0 9 2\nL 0 10\nL 1 10\n",
        ),
        (
            "NaN threshold",
            "dtree v1\nfeatures 7\nclasses 90\nnodes 3\nS 0 NaN 1 2\nL 0 10\nL 1 10\n",
        ),
        (
            "infinite threshold",
            "dtree v1\nfeatures 7\nclasses 90\nnodes 3\nS 0 inf 1 2\nL 0 10\nL 1 10\n",
        ),
        ("truncated (header only)", "dtree v1\n"),
        (
            "truncated (missing node)",
            "dtree v1\nfeatures 7\nclasses 90\nnodes 3\nS 0 20.0 1 2\nL 0 10\n",
        ),
        (
            "truncated mid-line",
            "dtree v1\nfeatures 7\nclasses 90\nnodes 3\nS 0 20.0\n",
        ),
    ];
    for (what, text) in dtree_corpus {
        let err = DecisionTree::from_compact_string(text)
            .expect_err(&format!("corpus entry must be rejected: {what}"));
        assert!(!err.to_string().is_empty(), "{what}: empty error message");
    }

    let ctree_corpus: &[(&str, &str)] = &[
        ("cycle (self-referencing split)", "ctree v1\nfeatures 7\nclasses 90\nroot S0\nsplits 1\nleaves 1\nN 0 20.0 S0 L0\nF 0 0\n"),
        ("cycle (backward edge)", "ctree v1\nfeatures 7\nclasses 90\nroot S0\nsplits 2\nleaves 2\nN 0 20.0 S1 L0\nN 1 5.0 S0 L1\nF 0 0\nF 1 1\n"),
        ("bad child index", "ctree v1\nfeatures 7\nclasses 90\nroot S0\nsplits 1\nleaves 2\nN 0 20.0 L0 S9\nF 0 0\nF 1 1\n"),
        ("bad leaf index", "ctree v1\nfeatures 7\nclasses 90\nroot S0\nsplits 1\nleaves 2\nN 0 20.0 L0 L7\nF 0 0\nF 1 1\n"),
        ("NaN threshold", "ctree v1\nfeatures 7\nclasses 90\nroot S0\nsplits 1\nleaves 2\nN 0 NaN L0 L1\nF 0 0\nF 1 1\n"),
        ("truncated (header only)", "ctree v1\n"),
        ("truncated (missing leaf)", "ctree v1\nfeatures 7\nclasses 90\nroot S0\nsplits 1\nleaves 2\nN 0 20.0 L0 L1\nF 0 0\n"),
        ("truncated mid-line", "ctree v1\nfeatures 7\nclasses 90\nroot S0\nsplits 1\nleaves 2\nN 0 20.0\n"),
    ];
    for (what, text) in ctree_corpus {
        let err = CompiledTree::from_compact_string(text, CompileOptions { quantized: true })
            .expect_err(&format!("corpus entry must be rejected: {what}"));
        assert!(!err.to_string().is_empty(), "{what}: empty error message");
    }

    // Seeded random mutations of a *valid* artifact: flip, drop or
    // duplicate one line, or corrupt one numeric field. Either the
    // parse fails with a typed error, or it succeeds and the parsed
    // tree still serves hostile observations without panicking.
    let valid = toy_policy().tree().to_compact_string();
    let lines: Vec<&str> = valid.lines().collect();
    for seed in SEEDS {
        let mut rng = XorShift64Star::new(seed);
        for i in 0..500 {
            let mut mutated: Vec<String> = lines.iter().map(ToString::to_string).collect();
            match rng.below(4) {
                0 => {
                    let k = rng.below(mutated.len());
                    mutated.remove(k);
                }
                1 => {
                    let k = rng.below(mutated.len());
                    let line = mutated[k].clone();
                    mutated.insert(k, line);
                }
                2 => {
                    let k = rng.below(mutated.len());
                    mutated[k] = mutated[k].replace(['0', '1', '2'], "999999");
                }
                _ => {
                    let k = rng.below(mutated.len());
                    mutated.truncate(k);
                }
            }
            let text = format!("{}\n", mutated.join("\n"));
            if let Ok(tree) = DecisionTree::from_compact_string(&text) {
                let x = [rng.hostile_f64(); POLICY_INPUT_DIM];
                // A mutation that survives parsing must still be safe
                // to walk (the typed-error paths, never a panic).
                let _ = tree.predict(&x);
            } else {
                // Rejected: that is the point of the corpus.
            }
            let _ = i;
        }
    }
}
