//! End-to-end traceability of a client request id through the live
//! ops plane: `X-Request-Id` on the request must come back on the
//! response, show up in the flight recorder and the windowed latency
//! series, and land — hash-covered — in the sealed audit chain.

use hvac_audit::{AuditChain, Auditor, ChainConfig, FlushPolicy};
use hvac_control::DtPolicy;
use hvac_dtree::{DecisionTree, TreeConfig};
use hvac_env::space::feature;
use hvac_env::{ActionSpace, SetpointAction, POLICY_INPUT_DIM};
use hvac_telemetry::http::{
    blocking_request, blocking_request_with_headers, header_value, REQUEST_ID_HEADER,
};
use hvac_telemetry::json::{parse, JsonValue};
use std::path::PathBuf;
use std::sync::Arc;
use veri_hvac::{serve_with_options, OpsOptions, ServeOptions};

/// Cold zones → heat hard, warm zones → off (the serve tests' toy
/// tree).
fn toy_policy() -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..20 {
        let temp = 14.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < 20.0 { heat } else { off });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("veri-hvac-ops-plane-{}-{name}", std::process::id()));
    path
}

#[test]
fn client_request_id_is_traceable_end_to_end() {
    let policy = toy_policy();
    let policy_hash = hvac_audit::policy_hash(&policy);
    let chain_path = temp_path("e2e.jsonl");
    let chain = Arc::new(
        AuditChain::create(
            &chain_path,
            &policy_hash,
            "",
            ChainConfig {
                checkpoint_every: 16,
                flush: FlushPolicy::Always,
            },
        )
        .expect("audit chain"),
    );

    let options = ServeOptions {
        audit: Some(Arc::clone(&chain)),
        ops: OpsOptions {
            flight_capacity: 64,
            ..OpsOptions::default()
        },
        ..ServeOptions::default()
    };
    let server = serve_with_options(policy.clone(), options, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // A burst of traced decisions, one id we will follow all the way.
    let tracked = "e2e-trace-0001";
    for i in 0..20 {
        let id = if i == 7 {
            tracked.to_string()
        } else {
            format!("e2e-filler-{i:04}")
        };
        let body = format!(r#"{{"zone_temperature":{}}}"#, 14 + i % 10);
        let (status, headers, text) = blocking_request_with_headers(
            addr,
            "POST",
            "/decide",
            &[(REQUEST_ID_HEADER, &id)],
            &body,
        )
        .unwrap();
        assert_eq!(status, 200, "{text}");
        // 1. The id comes back on the response, header and body both.
        assert_eq!(header_value(&headers, REQUEST_ID_HEADER), Some(id.as_str()));
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("trace_id").and_then(JsonValue::as_str),
            Some(id.as_str())
        );
    }

    // 2. The flight recorder holds the tracked request with its stage
    //    timings and decision.
    let (status, flight) = blocking_request(addr, "GET", "/debug/flight", "").unwrap();
    assert_eq!(status, 200);
    let v = parse(&flight).unwrap();
    let records = v.get("records").and_then(JsonValue::as_array).unwrap();
    assert_eq!(records.len(), 20, "all decisions fit in the ring");
    let mine = records
        .iter()
        .find(|r| r.get("trace_id").and_then(JsonValue::as_str) == Some(tracked))
        .expect("tracked id in flight snapshot");
    assert!(mine.get("decide_ns").and_then(JsonValue::as_u64).unwrap() > 0);
    assert_eq!(
        mine.get("http_status").and_then(JsonValue::as_u64),
        Some(200)
    );

    // 3. The windowed latency series counted the burst.
    let (_, summary) = blocking_request(addr, "GET", "/summary.json", "").unwrap();
    let v = parse(&summary).unwrap();
    let count = v
        .get("windows")
        .and_then(|w| w.get("serve.decide.ns"))
        .and_then(|w| w.get("count"))
        .and_then(JsonValue::as_u64)
        .expect("windowed serve.decide.ns");
    assert!(count >= 20, "window count {count}");

    // 4. Graceful shutdown seals the chain; the tracked id is inside,
    //    hash-covered, and the whole chain audits green.
    server.shutdown();
    let text = std::fs::read_to_string(&chain_path).unwrap();
    assert!(
        text.contains(&format!("\"trace_id\":\"{tracked}\"")),
        "tracked id missing from sealed chain"
    );
    let report = Auditor::new(&text).with_policy(&policy).run();
    assert!(report.passed(), "{report}");
    assert_eq!(report.decisions, 20);
    assert!(report.sealed);
    let _ = std::fs::remove_file(&chain_path);
}

#[test]
fn invalid_request_ids_get_a_structured_422_and_no_decision() {
    let server =
        serve_with_options(toy_policy(), ServeOptions::default(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    for bad in ["has space", "tab\tchar", &"x".repeat(200)] {
        let (status, _, text) = blocking_request_with_headers(
            addr,
            "POST",
            "/decide",
            &[(REQUEST_ID_HEADER, bad)],
            r#"{"zone_temperature":18}"#,
        )
        .unwrap();
        assert_eq!(status, 422, "id {bad:?}: {text}");
        let v = parse(&text).unwrap();
        assert!(
            v.get("error")
                .and_then(JsonValue::as_str)
                .is_some_and(|e| e.contains("X-Request-Id")),
            "structured error, got {text}"
        );
    }

    // None of the rejected requests reached the flight recorder as a
    // decision: the ring records /decide outcomes, and these were
    // turned away at the HTTP layer.
    let (_, flight) = blocking_request(addr, "GET", "/debug/flight", "").unwrap();
    let v = parse(&flight).unwrap();
    assert_eq!(v.get("recorded").and_then(JsonValue::as_u64), Some(0));
    server.shutdown();
}
