//! Online decision serving — the first traffic-serving path of the
//! reproduction.
//!
//! The paper's argument (Table 3) is that a verified decision tree is
//! cheap enough to serve live traffic: one root-to-leaf descent per
//! request. This module puts that claim on the wire: [`serve_policy`]
//! wraps a [`DtPolicy`] in the zero-dependency HTTP server of
//! `hvac-telemetry` and answers
//!
//! * `POST /decide` — body is a flat JSON observation (see
//!   [`observation_from_json`]); the response carries the chosen
//!   setpoints, the action index, and the in-handler latency;
//! * `GET /metrics`, `/healthz`, `/summary.json` — the standard
//!   observability routes, including the per-request
//!   `serve.decide.ns` latency histogram and `serve.decisions`
//!   counter this module records.
//!
//! The served policy is wrapped in a
//! [`GuardedPolicy`](hvac_control::GuardedPolicy): invalid readings
//! degrade down the ladder (hold → rule-based fallback → fail-safe
//! setpoints) instead of reaching the tree, and each response reports
//! the rung in a `guard_state` field. On clean inputs the guard is
//! bit-identical to the bare policy, so a served decision still
//! matches calling [`Policy::decide`] in process on the same state.
//!
//! The endpoint itself is hardened: request bodies beyond
//! [`MAX_DECIDE_BODY_BYTES`] are answered `413`, clients that stall
//! longer than [`DECIDE_TIMEOUT`] get `408`, parse failures are a
//! structured `422` JSON (`{"error": …, "status": …}`), and no
//! handler panic can reach the socket.

use hvac_audit::AuditChain;
use hvac_control::{DtPolicy, GuardConfig, GuardedPolicy};
use hvac_env::space::feature;
use hvac_env::{ComfortRange, Observation, Policy, POLICY_INPUT_DIM};
use hvac_telemetry::http::{HttpServer, Response};
use hvac_telemetry::json::{parse, JsonValue, ObjectWriter};
use hvac_telemetry::{warn, LATENCY_BOUNDS_NS};
use std::net::ToSocketAddrs;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Largest accepted `POST /decide` body. A flat 7-field observation
/// fits in a few hundred bytes; anything near this cap is hostile.
pub const MAX_DECIDE_BODY_BYTES: usize = 16 * 1024;

/// Per-request socket timeout on the serving endpoint.
pub const DECIDE_TIMEOUT: Duration = Duration::from_secs(5);

/// Parses a flat JSON object into an [`Observation`].
///
/// Field names are the canonical feature names of
/// [`feature::NAMES`] **or** the short aliases used throughout the
/// workspace (`zone_temperature`, `outdoor_temperature`,
/// `relative_humidity`, `wind_speed`, `solar_radiation`,
/// `occupant_count`, `hour_of_day`). `zone_temperature` is required;
/// missing disturbances default to 0.
///
/// # Errors
///
/// Returns a single aggregated message naming **every** malformed or
/// missing field (semicolon-separated), so a client fixing a bad body
/// sees all its problems at once instead of one per round trip.
pub fn observation_from_json(text: &str) -> Result<Observation, String> {
    let value = parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err("body must be a JSON object".to_string());
    }
    const ALIASES: [&str; POLICY_INPUT_DIM] = [
        "zone_temperature",
        "outdoor_temperature",
        "relative_humidity",
        "wind_speed",
        "solar_radiation",
        "occupant_count",
        "hour_of_day",
    ];
    let mut x = [0.0f64; POLICY_INPUT_DIM];
    let mut problems: Vec<String> = Vec::new();
    for (i, slot) in x.iter_mut().enumerate() {
        let field = value
            .get(ALIASES[i])
            .or_else(|| value.get(feature::NAMES[i]));
        match field {
            Some(v) => match v.as_f64() {
                // Oversized literals (`1e999`) parse to ±∞ — every
                // path that yields a value must reject non-finite, or
                // NaN/∞ leak straight into the tree descent.
                Some(n) if n.is_finite() => *slot = n,
                Some(_) => problems.push(format!("field {:?} must be finite", ALIASES[i])),
                None => problems.push(format!("field {:?} must be a number", ALIASES[i])),
            },
            None if i == feature::ZONE_TEMPERATURE => {
                problems.push("missing required field \"zone_temperature\"".to_string());
            }
            None => {}
        }
    }
    if problems.is_empty() {
        Ok(Observation::from_vector(&x))
    } else {
        Err(problems.join("; "))
    }
}

/// Decides on `body` with the guarded `policy` and renders the
/// response JSON (setpoints, action index, `guard_state`, latency).
///
/// A poisoned mutex is recovered rather than propagated: the guard and
/// tree hold no invariants a panicking thread could have broken
/// half-way (both update plain counters), and a serving endpoint must
/// not turn one contained panic into a permanent 5xx.
///
/// # Errors
///
/// Propagates [`observation_from_json`] errors.
pub fn decide_json(policy: &Mutex<GuardedPolicy<DtPolicy>>, body: &str) -> Result<String, String> {
    decide_json_audited(policy, None, body)
}

/// [`decide_json`] with an optional tamper-evident decision chain:
/// when `audit` is given, the guard's ladder transitions and the
/// decision itself (observation, setpoints, action index, guard rung)
/// are appended to the chain before the response is rendered.
///
/// A failed chain append never fails the request — the decision was
/// already taken and the actuator side must not stall on audit I/O —
/// but it is counted (`serve.audit.errors`) and logged, so a full
/// chain that stopped recording is loudly visible.
///
/// # Errors
///
/// Propagates [`observation_from_json`] errors.
pub fn decide_json_audited(
    policy: &Mutex<GuardedPolicy<DtPolicy>>,
    audit: Option<&AuditChain>,
    body: &str,
) -> Result<String, String> {
    let observation = observation_from_json(body)?;
    let started = Instant::now();
    let mut guard = policy.lock().unwrap_or_else(PoisonError::into_inner);
    let action = guard.decide(&observation);
    let state = guard.state();
    let index = guard.inner().action_space().index_of(action);
    let transitions = if audit.is_some() {
        guard.take_transitions()
    } else {
        Vec::new()
    };
    drop(guard);
    if let Some(chain) = audit {
        // Ladder movements first, then the decision they led to, so
        // the chain reads in causal order.
        let mut result = Ok(());
        for t in &transitions {
            result = result.and(chain.append_transition(t.from.name(), t.to.name()));
        }
        result = result.and(chain.append_decision(
            observation.to_vector(),
            action.heating() as u64,
            action.cooling() as u64,
            index as u64,
            state.name(),
        ));
        if let Err(e) = result {
            hvac_telemetry::counter("serve.audit.errors").incr();
            warn!("audit chain append failed: {e}");
        }
    }
    let latency_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    hvac_telemetry::counter("serve.decisions").incr();
    hvac_telemetry::histogram("serve.decide.ns", LATENCY_BOUNDS_NS).record(latency_ns);
    let mut o = ObjectWriter::new();
    o.u64_field("heating_setpoint", action.heating() as u64);
    o.u64_field("cooling_setpoint", action.cooling() as u64);
    o.u64_field("action_index", index as u64);
    o.str_field("action", &action.to_string());
    o.str_field("guard_state", state.name());
    o.u64_field("latency_ns", latency_ns);
    Ok(o.finish())
}

/// Serving configuration beyond the policy itself: the guard's
/// fallback comfort band, an optional tamper-evident audit chain, and
/// the id of the verification certificate the policy was served under
/// (stamped into `GET /version`).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Fallback comfort band for the degradation guard.
    pub comfort: ComfortRange,
    /// When set, every decision and guard transition is appended to
    /// this chain, and graceful shutdown seals it.
    pub audit: Option<Arc<AuditChain>>,
    /// Certificate id reported by `GET /version` (`None` serves
    /// uncertified).
    pub certificate_id: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            comfort: ComfortRange::winter(),
            audit: None,
            certificate_id: None,
        }
    }
}

/// Renders the `GET /version` body: crate version, build info (the
/// `VERI_HVAC_BUILD_INFO` compile-time env var when CI stamps one,
/// a `-src` marker otherwise), the served policy's content hash, and
/// the certificate id when the policy is certified.
fn version_json(policy_hash: &str, certificate_id: Option<&str>) -> String {
    let mut o = ObjectWriter::new();
    o.str_field("crate_version", env!("CARGO_PKG_VERSION"));
    o.str_field(
        "build",
        option_env!("VERI_HVAC_BUILD_INFO").unwrap_or(concat!(
            "v",
            env!("CARGO_PKG_VERSION"),
            "-src"
        )),
    );
    o.str_field("policy_hash", policy_hash);
    o.bool_field("certified", certificate_id.is_some());
    if let Some(id) = certificate_id {
        o.str_field("certificate_id", id);
    }
    o.finish()
}

/// Binds the serving endpoint: `POST /decide` over `policy` (wrapped
/// in a [`GuardedPolicy`] with the serve-safe [`GuardConfig::new`]
/// preset and the options' comfort band as fallback), `GET /version`,
/// and the built-in observability routes. With an audit chain in
/// `options`, every decision is appended to the chain and a graceful
/// shutdown (explicit or drop) seals it, so the chain file ends on a
/// complete, verifiable seal record. Returns the running server;
/// `server.addr()` has the bound port.
///
/// # Errors
///
/// Propagates socket binding errors.
pub fn serve_with_options(
    policy: DtPolicy,
    options: ServeOptions,
    addr: impl ToSocketAddrs,
) -> std::io::Result<HttpServer> {
    let policy_hash = hvac_audit::policy_hash(&policy);
    let ServeOptions {
        comfort,
        audit,
        certificate_id,
    } = options;
    let shared = Mutex::new(GuardedPolicy::new(policy, GuardConfig::new(comfort)));
    let decide_chain = audit.clone();
    let mut builder = HttpServer::builder()
        .max_body_bytes(MAX_DECIDE_BODY_BYTES)
        .request_timeout(DECIDE_TIMEOUT)
        .route("POST", "/decide", move |req| {
            match decide_json_audited(&shared, decide_chain.as_deref(), &req.body) {
                Ok(body) => Response::json(200, body),
                Err(message) => Response::error(422, &message),
            }
        })
        .route("GET", "/version", move |_req| {
            Response::json(200, version_json(&policy_hash, certificate_id.as_deref()))
        });
    if let Some(chain) = audit {
        builder = builder.on_shutdown(move || {
            if let Err(e) = chain.seal() {
                warn!("audit chain seal failed on shutdown: {e}");
            }
        });
    }
    builder.bind(addr)
}

/// Binds the serving endpoint with only a custom comfort band — no
/// audit chain, no certificate (see [`serve_with_options`]).
///
/// # Errors
///
/// Propagates socket binding errors.
pub fn serve_guarded_policy(
    policy: DtPolicy,
    comfort: ComfortRange,
    addr: impl ToSocketAddrs,
) -> std::io::Result<HttpServer> {
    serve_with_options(
        policy,
        ServeOptions {
            comfort,
            ..ServeOptions::default()
        },
        addr,
    )
}

/// [`serve_guarded_policy`] with the paper's winter comfort band as
/// the fallback — the evaluation setting (January, Pittsburgh).
///
/// # Errors
///
/// Propagates socket binding errors.
pub fn serve_policy(policy: DtPolicy, addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
    serve_guarded_policy(policy, ComfortRange::winter(), addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_dtree::{DecisionTree, TreeConfig};
    use hvac_env::{ActionSpace, Disturbances, SetpointAction};
    use hvac_telemetry::http::blocking_request;

    /// Cold zones → heat hard, warm zones → off (same toy tree as the
    /// dt_policy unit tests).
    fn toy_policy() -> DtPolicy {
        let space = ActionSpace::new();
        let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
        let off = space.index_of(SetpointAction::off());
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let temp = 14.0 + f64::from(i) * 0.5;
            let mut row = vec![0.0; POLICY_INPUT_DIM];
            row[feature::ZONE_TEMPERATURE] = temp;
            inputs.push(row);
            labels.push(if temp < 20.0 { heat } else { off });
        }
        let tree =
            DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
        DtPolicy::new(tree).unwrap()
    }

    #[test]
    fn observation_parsing_accepts_every_alias() {
        // One body per short alias, each carrying a distinct value.
        let obs = observation_from_json(
            r#"{"zone_temperature":18.5,"outdoor_temperature":-3.0,
                "relative_humidity":55.0,"wind_speed":4.5,"solar_radiation":120.0,
                "occupant_count":3,"hour_of_day":10.5}"#,
        )
        .unwrap();
        assert_eq!(obs.zone_temperature, 18.5);
        assert_eq!(obs.disturbances.outdoor_temperature, -3.0);
        assert_eq!(obs.disturbances.relative_humidity, 55.0);
        assert_eq!(obs.disturbances.wind_speed, 4.5);
        assert_eq!(obs.disturbances.solar_radiation, 120.0);
        assert_eq!(obs.disturbances.occupant_count, 3.0);
        assert_eq!(obs.disturbances.hour_of_day, 10.5);
    }

    #[test]
    fn observation_parsing_accepts_every_canonical_name() {
        // Same seven fields under their `feature::NAMES` spellings.
        let mut body = String::from("{");
        for (i, name) in feature::NAMES.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("\"{name}\":{}", 10 + i));
        }
        body.push('}');
        let obs = observation_from_json(&body).unwrap();
        assert_eq!(obs.to_vector(), [10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0]);
    }

    #[test]
    fn observation_parsing_rejects_each_branch() {
        // Branch: unparsable JSON.
        assert!(observation_from_json("not json")
            .unwrap_err()
            .contains("invalid JSON"));
        // Branch: valid JSON, not an object.
        assert!(observation_from_json("[1,2,3]")
            .unwrap_err()
            .contains("object"));
        // Branch: required field missing.
        assert!(observation_from_json(r#"{"outdoor_temperature":1}"#)
            .unwrap_err()
            .contains("zone_temperature"));
        // Branch: present but not a number.
        assert!(observation_from_json(r#"{"zone_temperature":"cold"}"#)
            .unwrap_err()
            .contains("must be a number"));
        // Branch: present, numeric, non-finite (oversized literal → ∞).
        assert!(observation_from_json(r#"{"zone_temperature":1e999}"#)
            .unwrap_err()
            .contains("must be finite"));
    }

    #[test]
    fn observation_parsing_aggregates_all_problems() {
        let err = observation_from_json(
            r#"{"outdoor_temperature":"windy","wind_speed":1e999,"hour_of_day":[]}"#,
        )
        .unwrap_err();
        // All four problems in one message: missing zone temperature
        // plus the three malformed fields.
        assert!(err.contains("zone_temperature"), "{err}");
        assert!(err.contains("outdoor_temperature"), "{err}");
        assert!(err.contains("wind_speed"), "{err}");
        assert!(err.contains("hour_of_day"), "{err}");
        assert_eq!(err.matches(';').count(), 3, "{err}");
    }

    #[test]
    fn served_decision_matches_in_process_policy() {
        let mut reference = toy_policy();
        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        for temp in [15.0, 18.3, 21.0, 23.5] {
            let obs = Observation::new(temp, Disturbances::default());
            let expected = reference.decide(&obs);
            let body = format!(r#"{{"zone_temperature":{temp}}}"#);
            let (status, text) = blocking_request(server.addr(), "POST", "/decide", &body).unwrap();
            assert_eq!(status, 200, "{text}");
            let v = parse(&text).unwrap();
            let heating = v
                .get("heating_setpoint")
                .and_then(JsonValue::as_u64)
                .unwrap();
            let cooling = v
                .get("cooling_setpoint")
                .and_then(JsonValue::as_u64)
                .unwrap();
            assert_eq!(heating as i32, expected.heating(), "at {temp} °C");
            assert_eq!(cooling as i32, expected.cooling(), "at {temp} °C");
            assert!(v.get("latency_ns").and_then(JsonValue::as_u64).is_some());
            // Clean inputs never leave the normal rung.
            assert_eq!(
                v.get("guard_state").and_then(JsonValue::as_str),
                Some("normal")
            );
        }
        // The serving path records its latency histogram and counter.
        let snap = hvac_telemetry::snapshot();
        assert!(snap.counters["serve.decisions"] >= 4);
        assert!(snap.histograms["serve.decide.ns"].count >= 4);
        // Malformed bodies are a structured 422, not a crash.
        let (status, text) = blocking_request(server.addr(), "POST", "/decide", "{broken").unwrap();
        assert_eq!(status, 422);
        let v = parse(&text).expect("422 body is JSON");
        assert!(v.get("error").is_some());
        assert_eq!(v.get("status").and_then(JsonValue::as_u64), Some(422));
        server.shutdown();
    }

    #[test]
    fn out_of_range_readings_degrade_instead_of_reaching_the_tree() {
        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        // 300 °C parses fine but fails range validation; with no last
        // good value to hold, the guard drops straight to the
        // rule-based fallback.
        let (status, text) = blocking_request(
            server.addr(),
            "POST",
            "/decide",
            r#"{"zone_temperature":300}"#,
        )
        .unwrap();
        assert_eq!(status, 200, "{text}");
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("guard_state").and_then(JsonValue::as_str),
            Some("fallback")
        );
        // A good reading re-arms the ladder; the next bad one is held.
        let (_, _) = blocking_request(
            server.addr(),
            "POST",
            "/decide",
            r#"{"zone_temperature":21}"#,
        )
        .unwrap();
        let (status, text) = blocking_request(
            server.addr(),
            "POST",
            "/decide",
            r#"{"zone_temperature":300}"#,
        )
        .unwrap();
        assert_eq!(status, 200, "{text}");
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("guard_state").and_then(JsonValue::as_str),
            Some("hold")
        );
        server.shutdown();
    }

    #[test]
    fn version_endpoint_reports_build_policy_and_certificate() {
        // Uncertified: certified=false, no certificate_id key.
        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        let (status, text) = blocking_request(server.addr(), "GET", "/version", "").unwrap();
        assert_eq!(status, 200, "{text}");
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("crate_version").and_then(JsonValue::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(v
            .get("build")
            .and_then(JsonValue::as_str)
            .is_some_and(|b| !b.is_empty()));
        assert_eq!(
            v.get("policy_hash").and_then(JsonValue::as_str),
            Some(hvac_audit::policy_hash(&toy_policy()).as_str())
        );
        assert_eq!(v.get("certified").and_then(JsonValue::as_bool), Some(false));
        assert!(v.get("certificate_id").is_none());
        server.shutdown();

        // Certified: the id round-trips verbatim.
        let options = ServeOptions {
            certificate_id: Some("deadbeef".repeat(8)),
            ..ServeOptions::default()
        };
        let server = serve_with_options(toy_policy(), options, "127.0.0.1:0").expect("bind");
        let (_, text) = blocking_request(server.addr(), "GET", "/version", "").unwrap();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("certified").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            v.get("certificate_id").and_then(JsonValue::as_str),
            Some("deadbeef".repeat(8).as_str())
        );
        server.shutdown();
    }

    #[test]
    fn audited_serve_session_seals_a_verifiable_chain_on_shutdown() {
        use hvac_audit::{AuditChain, Auditor, ChainConfig};

        let dir = std::env::temp_dir().join("hvac-serve-audit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chain.jsonl");
        let policy = toy_policy();
        let policy_hash = hvac_audit::policy_hash(&policy);
        let chain = std::sync::Arc::new(
            AuditChain::create(
                &path,
                &policy_hash,
                "",
                ChainConfig {
                    checkpoint_every: 8,
                    durable: true,
                },
            )
            .unwrap(),
        );
        let options = ServeOptions {
            audit: Some(std::sync::Arc::clone(&chain)),
            ..ServeOptions::default()
        };
        let server = serve_with_options(policy.clone(), options, "127.0.0.1:0").expect("bind");
        for i in 0..30 {
            let temp = 14.0 + f64::from(i) * 0.3;
            let body = format!(r#"{{"zone_temperature":{temp}}}"#);
            let (status, _) = blocking_request(server.addr(), "POST", "/decide", &body).unwrap();
            assert_eq!(status, 200);
        }
        // One invalid reading so the chain records guard transitions
        // too (normal → hold → normal).
        let (status, _) = blocking_request(
            server.addr(),
            "POST",
            "/decide",
            r#"{"zone_temperature":300}"#,
        )
        .unwrap();
        assert_eq!(status, 200);
        // Graceful shutdown runs the seal hook before returning.
        server.shutdown();

        let text = std::fs::read_to_string(&path).unwrap();
        // No trailing partial record: the file ends on a newline and
        // the last line is a complete seal record.
        assert!(text.ends_with('\n'), "chain file ends mid-record");
        assert!(
            text.lines().last().unwrap().contains(r#""kind":"seal""#),
            "chain does not end in a seal record"
        );
        let report = Auditor::new(&text).with_policy(&policy).run();
        assert!(report.passed(), "{report}");
        assert_eq!(report.decisions, 31);
        assert!(report.transitions >= 1, "{report}");
        assert!(report.sealed);
    }

    #[test]
    fn oversized_decide_bodies_are_rejected() {
        use std::io::{Read, Write};
        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        // Declare a body beyond the cap; the server answers 413 from
        // the headers alone, without waiting for (or reading) it.
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                format!(
                    "POST /decide HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_DECIDE_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap();
        assert!(parse(body).is_ok(), "413 body is JSON: {body}");
        server.shutdown();
    }
}
