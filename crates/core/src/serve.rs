//! Online decision serving — the first traffic-serving path of the
//! reproduction.
//!
//! The paper's argument (Table 3) is that a verified decision tree is
//! cheap enough to serve live traffic: one root-to-leaf descent per
//! request. This module puts that claim on the wire: [`serve_policy`]
//! wraps a [`DtPolicy`] in the zero-dependency HTTP server of
//! `hvac-telemetry` and answers
//!
//! * `POST /decide` — body is a flat JSON observation (see
//!   [`observation_from_json`]); the response carries the chosen
//!   setpoints, the action index, and the in-handler latency;
//! * `GET /metrics`, `/healthz`, `/summary.json` — the standard
//!   observability routes, including the per-request
//!   `serve.decide.ns` latency histogram and `serve.decisions`
//!   counter this module records.
//!
//! The handler locks the policy around a single tree descent, so a
//! served decision is bit-identical to calling
//! [`Policy::decide`] in process on the same state.

use hvac_control::DtPolicy;
use hvac_env::space::feature;
use hvac_env::{Observation, Policy, POLICY_INPUT_DIM};
use hvac_telemetry::http::{HttpServer, Response};
use hvac_telemetry::json::{parse, JsonValue, ObjectWriter};
use hvac_telemetry::LATENCY_BOUNDS_NS;
use std::net::ToSocketAddrs;
use std::sync::Mutex;
use std::time::Instant;

/// Parses a flat JSON object into an [`Observation`].
///
/// Field names are the canonical feature names of
/// [`feature::NAMES`] **or** the short aliases used throughout the
/// workspace (`zone_temperature`, `outdoor_temperature`,
/// `relative_humidity`, `wind_speed`, `solar_radiation`,
/// `occupant_count`, `hour_of_day`). `zone_temperature` is required;
/// missing disturbances default to 0.
///
/// # Errors
///
/// Returns a message naming the malformed or missing field.
pub fn observation_from_json(text: &str) -> Result<Observation, String> {
    let value = parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err("body must be a JSON object".to_string());
    }
    const ALIASES: [&str; POLICY_INPUT_DIM] = [
        "zone_temperature",
        "outdoor_temperature",
        "relative_humidity",
        "wind_speed",
        "solar_radiation",
        "occupant_count",
        "hour_of_day",
    ];
    let mut x = [0.0f64; POLICY_INPUT_DIM];
    for (i, slot) in x.iter_mut().enumerate() {
        let field = value
            .get(ALIASES[i])
            .or_else(|| value.get(feature::NAMES[i]));
        match field {
            Some(v) => {
                *slot = v
                    .as_f64()
                    .ok_or_else(|| format!("field {:?} must be a number", ALIASES[i]))?;
                if !slot.is_finite() {
                    return Err(format!("field {:?} must be finite", ALIASES[i]));
                }
            }
            None if i == feature::ZONE_TEMPERATURE => {
                return Err("missing required field \"zone_temperature\"".to_string());
            }
            None => {}
        }
    }
    Ok(Observation::from_vector(&x))
}

/// Decides on `body` with `policy` and renders the response JSON.
///
/// # Errors
///
/// Propagates [`observation_from_json`] errors.
pub fn decide_json(policy: &Mutex<DtPolicy>, body: &str) -> Result<String, String> {
    let observation = observation_from_json(body)?;
    let started = Instant::now();
    let action = policy
        .lock()
        .expect("policy mutex poisoned")
        .decide(&observation);
    let latency_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    hvac_telemetry::counter("serve.decisions").incr();
    hvac_telemetry::histogram("serve.decide.ns", LATENCY_BOUNDS_NS).record(latency_ns);
    let mut o = ObjectWriter::new();
    o.u64_field("heating_setpoint", action.heating() as u64);
    o.u64_field("cooling_setpoint", action.cooling() as u64);
    let index = policy
        .lock()
        .expect("policy mutex poisoned")
        .action_space()
        .index_of(action);
    o.u64_field("action_index", index as u64);
    o.str_field("action", &action.to_string());
    o.u64_field("latency_ns", latency_ns);
    Ok(o.finish())
}

/// Binds the serving endpoint: `POST /decide` over `policy` plus the
/// built-in observability routes. Returns the running server (drop or
/// [`HttpServer::shutdown`] stops it); `server.addr()` has the bound
/// port.
///
/// # Errors
///
/// Propagates socket binding errors.
pub fn serve_policy(policy: DtPolicy, addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
    let shared = Mutex::new(policy);
    HttpServer::builder()
        .route("POST", "/decide", move |req| {
            match decide_json(&shared, &req.body) {
                Ok(body) => Response::json(200, body),
                Err(message) => {
                    let mut o = ObjectWriter::new();
                    o.str_field("error", &message);
                    Response::json(422, o.finish())
                }
            }
        })
        .bind(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_dtree::{DecisionTree, TreeConfig};
    use hvac_env::{ActionSpace, Disturbances, SetpointAction};
    use hvac_telemetry::http::blocking_request;

    /// Cold zones → heat hard, warm zones → off (same toy tree as the
    /// dt_policy unit tests).
    fn toy_policy() -> DtPolicy {
        let space = ActionSpace::new();
        let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
        let off = space.index_of(SetpointAction::off());
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let temp = 14.0 + f64::from(i) * 0.5;
            let mut row = vec![0.0; POLICY_INPUT_DIM];
            row[feature::ZONE_TEMPERATURE] = temp;
            inputs.push(row);
            labels.push(if temp < 20.0 { heat } else { off });
        }
        let tree =
            DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
        DtPolicy::new(tree).unwrap()
    }

    #[test]
    fn observation_parsing_accepts_aliases_and_canonical_names() {
        let obs = observation_from_json(
            r#"{"zone_temperature":18.5,"outdoor_temperature":-3.0,"hour_of_day":10.5}"#,
        )
        .unwrap();
        assert_eq!(obs.zone_temperature, 18.5);
        assert_eq!(obs.disturbances.outdoor_temperature, -3.0);
        assert_eq!(obs.disturbances.hour_of_day, 10.5);
        let obs = observation_from_json(
            r#"{"zone_air_temperature":21.0,"zone_people_occupant_count":4}"#,
        )
        .unwrap();
        assert_eq!(obs.zone_temperature, 21.0);
        assert_eq!(obs.disturbances.occupant_count, 4.0);
    }

    #[test]
    fn observation_parsing_rejects_bad_bodies() {
        assert!(observation_from_json("not json").is_err());
        assert!(observation_from_json("[1,2,3]").is_err());
        assert!(observation_from_json(r#"{"outdoor_temperature":1}"#)
            .unwrap_err()
            .contains("zone_temperature"));
        assert!(observation_from_json(r#"{"zone_temperature":"cold"}"#).is_err());
    }

    #[test]
    fn served_decision_matches_in_process_policy() {
        let mut reference = toy_policy();
        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        for temp in [15.0, 18.3, 21.0, 23.5] {
            let obs = Observation::new(temp, Disturbances::default());
            let expected = reference.decide(&obs);
            let body = format!(r#"{{"zone_temperature":{temp}}}"#);
            let (status, text) = blocking_request(server.addr(), "POST", "/decide", &body).unwrap();
            assert_eq!(status, 200, "{text}");
            let v = parse(&text).unwrap();
            let heating = v
                .get("heating_setpoint")
                .and_then(JsonValue::as_u64)
                .unwrap();
            let cooling = v
                .get("cooling_setpoint")
                .and_then(JsonValue::as_u64)
                .unwrap();
            assert_eq!(heating as i32, expected.heating(), "at {temp} °C");
            assert_eq!(cooling as i32, expected.cooling(), "at {temp} °C");
            assert!(v.get("latency_ns").and_then(JsonValue::as_u64).is_some());
        }
        // The serving path records its latency histogram and counter.
        let snap = hvac_telemetry::snapshot();
        assert!(snap.counters["serve.decisions"] >= 4);
        assert!(snap.histograms["serve.decide.ns"].count >= 4);
        // Malformed bodies are a 422, not a crash.
        let (status, _) = blocking_request(server.addr(), "POST", "/decide", "{broken").unwrap();
        assert_eq!(status, 422);
        server.shutdown();
    }
}
