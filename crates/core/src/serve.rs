//! Online decision serving — the first traffic-serving path of the
//! reproduction.
//!
//! The paper's argument (Table 3) is that a verified decision tree is
//! cheap enough to serve live traffic: one root-to-leaf descent per
//! request. This module puts that claim on the wire: [`serve_policy`]
//! wraps a [`DtPolicy`] in the zero-dependency HTTP server of
//! `hvac-telemetry` and answers
//!
//! * `POST /decide` — body is a flat JSON observation (see
//!   [`observation_from_json`]); the response carries the chosen
//!   setpoints, the action index, and the in-handler latency;
//! * `GET /metrics`, `/healthz`, `/summary.json` — the standard
//!   observability routes, including the per-request
//!   `serve.decide.ns` latency histogram and `serve.decisions`
//!   counter this module records.
//!
//! The served policy is wrapped in a
//! [`GuardedPolicy`](hvac_control::GuardedPolicy): invalid readings
//! degrade down the ladder (hold → rule-based fallback → fail-safe
//! setpoints) instead of reaching the tree, and each response reports
//! the rung in a `guard_state` field. On clean inputs the guard is
//! bit-identical to the bare policy, so a served decision still
//! matches calling [`Policy::decide`] in process on the same state.
//!
//! The endpoint itself is hardened: request bodies beyond
//! [`MAX_DECIDE_BODY_BYTES`] are answered `413`, clients that stall
//! longer than [`DECIDE_TIMEOUT`] get `408`, parse failures are a
//! structured `422` JSON (`{"error": …, "status": …}`), and no
//! handler panic can reach the socket.
//!
//! On top of the decision path sits the **live ops plane**
//! ([`OpsOptions`]): every request carries a trace id (the client's
//! validated `X-Request-Id`, or a minted deterministic one) that is
//! echoed in the response header and body, stamped into the audit
//! chain's decision record, threaded through the guard's telemetry,
//! and captured — together with per-stage latencies, guard rung,
//! action, and HTTP status — in a lock-free flight recorder behind
//! `GET /debug/flight`. Decide latencies also feed a sliding-window
//! histogram (windowed p50/p95/p99 in `/metrics` and `/summary.json`)
//! and an SLO tracker with fast/slow burn rates behind
//! `GET /debug/slo`.

use hvac_audit::AuditChain;
use hvac_control::{DtPolicy, GuardConfig, GuardedPolicy};
use hvac_env::space::feature;
use hvac_env::{ComfortRange, Observation, Policy, POLICY_INPUT_DIM};
use hvac_telemetry::http::{HttpServer, Response, REQUEST_ID_HEADER};
use hvac_telemetry::json::{parse, JsonValue, ObjectWriter};
use hvac_telemetry::ring::{FlightRecord, FlightRecorder};
use hvac_telemetry::slo::{SloConfig, SloTracker};
use hvac_telemetry::{process_elapsed_ns, warn, windowed_histogram, LATENCY_BOUNDS_NS};
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Largest accepted `POST /decide` body. A flat 7-field observation
/// fits in a few hundred bytes; anything near this cap is hostile.
pub const MAX_DECIDE_BODY_BYTES: usize = 16 * 1024;

/// Per-request socket timeout on the serving endpoint.
pub const DECIDE_TIMEOUT: Duration = Duration::from_secs(5);

/// Parses a flat JSON object into an [`Observation`].
///
/// Field names are the canonical feature names of
/// [`feature::NAMES`] **or** the short aliases used throughout the
/// workspace (`zone_temperature`, `outdoor_temperature`,
/// `relative_humidity`, `wind_speed`, `solar_radiation`,
/// `occupant_count`, `hour_of_day`). `zone_temperature` is required;
/// missing disturbances default to 0.
///
/// # Errors
///
/// Returns a single aggregated message naming **every** malformed or
/// missing field (semicolon-separated), so a client fixing a bad body
/// sees all its problems at once instead of one per round trip.
pub fn observation_from_json(text: &str) -> Result<Observation, String> {
    let value = parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
    observation_from_value(&value)
}

/// [`observation_from_json`] over an already-parsed [`JsonValue`] — the
/// entry point for embedded observations (each element of a fleet
/// `POST /tick` batch carries one under its `"observation"` key).
///
/// # Errors
///
/// Same aggregated per-field message as [`observation_from_json`].
pub fn observation_from_value(value: &JsonValue) -> Result<Observation, String> {
    if !matches!(value, JsonValue::Object(_)) {
        return Err("body must be a JSON object".to_string());
    }
    const ALIASES: [&str; POLICY_INPUT_DIM] = [
        "zone_temperature",
        "outdoor_temperature",
        "relative_humidity",
        "wind_speed",
        "solar_radiation",
        "occupant_count",
        "hour_of_day",
    ];
    let mut x = [0.0f64; POLICY_INPUT_DIM];
    let mut problems: Vec<String> = Vec::new();
    for (i, slot) in x.iter_mut().enumerate() {
        let field = value
            .get(ALIASES[i])
            .or_else(|| value.get(feature::NAMES[i]));
        match field {
            Some(v) => match v.as_f64() {
                // Oversized literals (`1e999`) parse to ±∞ — every
                // path that yields a value must reject non-finite, or
                // NaN/∞ leak straight into the tree descent.
                Some(n) if n.is_finite() => *slot = n,
                Some(_) => problems.push(format!("field {:?} must be finite", ALIASES[i])),
                None => problems.push(format!("field {:?} must be a number", ALIASES[i])),
            },
            None if i == feature::ZONE_TEMPERATURE => {
                problems.push("missing required field \"zone_temperature\"".to_string());
            }
            None => {}
        }
    }
    if problems.is_empty() {
        Ok(Observation::from_vector(&x))
    } else {
        Err(problems.join("; "))
    }
}

/// Decides on `body` with the guarded `policy` and renders the
/// response JSON (setpoints, action index, `guard_state`, latency).
///
/// A poisoned mutex is recovered rather than propagated: the guard and
/// tree hold no invariants a panicking thread could have broken
/// half-way (both update plain counters), and a serving endpoint must
/// not turn one contained panic into a permanent 5xx.
///
/// # Errors
///
/// Propagates [`observation_from_json`] errors.
pub fn decide_json(policy: &Mutex<GuardedPolicy<DtPolicy>>, body: &str) -> Result<String, String> {
    decide_json_audited(policy, None, body)
}

/// [`decide_json`] with an optional tamper-evident decision chain:
/// when `audit` is given, the guard's ladder transitions and the
/// decision itself (observation, setpoints, action index, guard rung)
/// are appended to the chain before the response is rendered.
///
/// A failed chain append never fails the request — the decision was
/// already taken and the actuator side must not stall on audit I/O —
/// but it is counted (`serve.audit.errors`) and logged, so a full
/// chain that stopped recording is loudly visible.
///
/// # Errors
///
/// Propagates [`observation_from_json`] errors.
pub fn decide_json_audited(
    policy: &Mutex<GuardedPolicy<DtPolicy>>,
    audit: Option<&AuditChain>,
    body: &str,
) -> Result<String, String> {
    decide_json_traced(policy, audit, body, None).map(|outcome| outcome.body)
}

/// Everything one `/decide` request produced, for the ops plane: the
/// response body plus the per-stage breakdown the flight recorder and
/// SLO tracker consume.
#[derive(Debug)]
pub struct DecideOutcome {
    /// Rendered response JSON.
    pub body: String,
    /// Time spent parsing the request body, ns.
    pub parse_ns: u64,
    /// Time spent inside the guarded decide (policy mutex included), ns.
    pub decide_ns: u64,
    /// Time spent appending to the audit chain (0 when unaudited), ns.
    pub audit_ns: u64,
    /// End-to-end handler latency (the value `serve.decide.ns`
    /// recorded), ns.
    pub total_ns: u64,
    /// Guard rung gauge (0 normal … 3 fail-safe).
    pub guard_gauge: u64,
    /// Chosen heating setpoint (°C).
    pub heating: u64,
    /// Chosen cooling setpoint (°C).
    pub cooling: u64,
}

/// [`decide_json_audited`] with the request's trace id threaded all
/// the way down: into the guard's decide (trace-level telemetry), the
/// audit chain's decision record (format v2), and the response body's
/// `trace_id` field. Returns the full [`DecideOutcome`] so the caller
/// can feed the flight recorder and SLO tracker.
///
/// # Errors
///
/// Propagates [`observation_from_json`] errors.
pub fn decide_json_traced(
    policy: &Mutex<GuardedPolicy<DtPolicy>>,
    audit: Option<&AuditChain>,
    body: &str,
    trace_id: Option<&str>,
) -> Result<DecideOutcome, String> {
    let started = Instant::now();
    let observation = observation_from_json(body)?;
    let parse_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let decide_started = Instant::now();
    let mut guard = policy.lock().unwrap_or_else(PoisonError::into_inner);
    let action = match trace_id {
        Some(id) => guard.decide_traced(&observation, id),
        None => guard.decide(&observation),
    };
    let state = guard.state();
    let index = guard.inner().action_space().index_of(action);
    let transitions = if audit.is_some() {
        guard.take_transitions()
    } else {
        Vec::new()
    };
    drop(guard);
    let decide_ns = u64::try_from(decide_started.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let audit_started = Instant::now();
    if let Some(chain) = audit {
        // Ladder movements first, then the decision they led to, so
        // the chain reads in causal order.
        let mut result = Ok(());
        for t in &transitions {
            result = result.and(chain.append_transition(t.from.name(), t.to.name()));
        }
        result = result.and(chain.append_decision(
            observation.to_vector(),
            action.heating() as u64,
            action.cooling() as u64,
            index as u64,
            state.name(),
            trace_id,
        ));
        if let Err(e) = result {
            hvac_telemetry::counter("serve.audit.errors").incr();
            warn!("audit chain append failed: {e}");
        }
    }
    let audit_ns = if audit.is_some() {
        u64::try_from(audit_started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    } else {
        0
    };

    let latency_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    hvac_telemetry::counter("serve.decisions").incr();
    hvac_telemetry::histogram("serve.decide.ns", LATENCY_BOUNDS_NS).record(latency_ns);
    let mut o = ObjectWriter::new();
    o.u64_field("heating_setpoint", action.heating() as u64);
    o.u64_field("cooling_setpoint", action.cooling() as u64);
    o.u64_field("action_index", index as u64);
    o.str_field("action", &action.to_string());
    o.str_field("guard_state", state.name());
    o.u64_field("latency_ns", latency_ns);
    if let Some(id) = trace_id {
        o.str_field("trace_id", id);
    }
    Ok(DecideOutcome {
        body: o.finish(),
        parse_ns,
        decide_ns,
        audit_ns,
        total_ns: latency_ns,
        guard_gauge: state.as_gauge(),
        heating: action.heating() as u64,
        cooling: action.cooling() as u64,
    })
}

/// Live ops-plane knobs for a serve session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpsOptions {
    /// Flight-recorder capacity (last-N decisions behind
    /// `GET /debug/flight`); 0 disables the recorder (and the route
    /// answers 404). Defaults to 256.
    pub flight_capacity: usize,
    /// Feed decide latencies into the sliding-window histogram
    /// (windowed p50/p95/p99 in `/metrics` / `/summary.json`).
    /// Defaults on.
    pub windowed: bool,
    /// Objectives for the `GET /debug/slo` burn-rate tracker.
    pub slo: SloConfig,
}

impl Default for OpsOptions {
    fn default() -> Self {
        Self {
            flight_capacity: 256,
            windowed: true,
            slo: SloConfig::default(),
        }
    }
}

/// The sliding window the serve path records decide latencies into:
/// one minute at five-second resolution.
pub(crate) const SERVE_WINDOW_NS: u64 = 60 * 1_000_000_000;
pub(crate) const SERVE_WINDOW_EPOCHS: usize = 12;

/// Serving configuration beyond the policy itself: the guard's
/// fallback comfort band, an optional tamper-evident audit chain, the
/// id of the verification certificate the policy was served under
/// (stamped into `GET /version`), and the ops plane.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Fallback comfort band for the degradation guard.
    pub comfort: ComfortRange,
    /// When set, every decision and guard transition is appended to
    /// this chain, and graceful shutdown seals it.
    pub audit: Option<Arc<AuditChain>>,
    /// Certificate id reported by `GET /version` (`None` serves
    /// uncertified).
    pub certificate_id: Option<String>,
    /// Flight recorder / windowed histogram / SLO tracker knobs.
    pub ops: OpsOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            comfort: ComfortRange::winter(),
            audit: None,
            certificate_id: None,
            ops: OpsOptions::default(),
        }
    }
}

/// Mints a deterministic trace id for a request that arrived without
/// one: FNV-1a over the served policy's hash and a process-local
/// sequence number — stable across identical replays, unique within a
/// serve session, and trivially valid per the `X-Request-Id` contract.
pub(crate) fn mint_trace_id(seed: &str, sequence: u64) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seed.bytes().chain(sequence.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    format!("srv-{h:016x}")
}

/// Guard rung name for a flight-recorded gauge value.
fn rung_name(gauge: u64) -> &'static str {
    match gauge {
        0 => "normal",
        1 => "hold",
        2 => "fallback",
        3 => "fail_safe",
        _ => "unknown",
    }
}

/// Renders the `GET /debug/flight` body: ring capacity, total records
/// ever captured, and the surviving snapshot (most recent first).
pub(crate) fn flight_json(recorder: &FlightRecorder) -> String {
    let records = recorder.snapshot();
    let mut out = String::with_capacity(256 + records.len() * 256);
    out.push_str(&format!(
        "{{\"capacity\":{},\"recorded\":{},\"records\":[",
        recorder.capacity(),
        recorder.recorded()
    ));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut o = ObjectWriter::new();
        o.str_field("trace_id", &r.trace_id);
        o.u64_field("t_ns", r.t_ns);
        o.u64_field("parse_ns", r.parse_ns);
        o.u64_field("decide_ns", r.decide_ns);
        o.u64_field("audit_ns", r.audit_ns);
        o.str_field("guard_state", rung_name(r.guard_state));
        o.u64_field("heating_setpoint", r.heating_centi / 100);
        o.u64_field("cooling_setpoint", r.cooling_centi / 100);
        o.u64_field("http_status", r.http_status);
        out.push_str(&o.finish());
    }
    out.push_str("]}");
    out
}

/// Renders the `GET /version` body: crate version, build info (the
/// `VERI_HVAC_BUILD_INFO` compile-time env var when CI stamps one,
/// a `-src` marker otherwise), the served policy's content hash, and
/// the certificate id when the policy is certified.
fn version_json(policy_hash: &str, certificate_id: Option<&str>) -> String {
    let mut o = ObjectWriter::new();
    o.str_field("crate_version", env!("CARGO_PKG_VERSION"));
    o.str_field(
        "build",
        option_env!("VERI_HVAC_BUILD_INFO").unwrap_or(concat!(
            "v",
            env!("CARGO_PKG_VERSION"),
            "-src"
        )),
    );
    o.str_field("policy_hash", policy_hash);
    o.bool_field("certified", certificate_id.is_some());
    if let Some(id) = certificate_id {
        o.str_field("certificate_id", id);
    }
    o.finish()
}

/// Binds the serving endpoint: `POST /decide` over `policy` (wrapped
/// in a [`GuardedPolicy`] with the serve-safe [`GuardConfig::new`]
/// preset and the options' comfort band as fallback), `GET /version`,
/// and the built-in observability routes. With an audit chain in
/// `options`, every decision is appended to the chain and a graceful
/// shutdown (explicit or drop) seals it, so the chain file ends on a
/// complete, verifiable seal record. Returns the running server;
/// `server.addr()` has the bound port.
///
/// # Errors
///
/// Propagates socket binding errors.
pub fn serve_with_options(
    policy: DtPolicy,
    options: ServeOptions,
    addr: impl ToSocketAddrs,
) -> std::io::Result<HttpServer> {
    let policy_hash = hvac_audit::policy_hash(&policy);
    let ServeOptions {
        comfort,
        audit,
        certificate_id,
        ops,
    } = options;
    let shared = Mutex::new(GuardedPolicy::new(policy, GuardConfig::new(comfort)));
    let decide_chain = audit.clone();

    // Ops plane: flight recorder (0 capacity disables), windowed
    // latency series, SLO tracker. All lock-free / atomic on the
    // record path, so the decide handler never queues behind a scrape.
    let flight =
        (ops.flight_capacity > 0).then(|| Arc::new(FlightRecorder::new(ops.flight_capacity)));
    let decide_flight = flight.clone();
    let window = ops.windowed.then(|| {
        windowed_histogram(
            "serve.decide.ns",
            LATENCY_BOUNDS_NS,
            SERVE_WINDOW_NS,
            SERVE_WINDOW_EPOCHS,
        )
    });
    let slo = Arc::new(SloTracker::new(ops.slo));
    let decide_slo = Arc::clone(&slo);
    let mint_seed = policy_hash.clone();
    let mint_sequence = AtomicU64::new(0);

    let mut builder = HttpServer::builder()
        .max_body_bytes(MAX_DECIDE_BODY_BYTES)
        .request_timeout(DECIDE_TIMEOUT)
        .route("POST", "/decide", move |req| {
            // The HTTP layer has already 422'd malformed client ids,
            // so whatever arrives here is safe to embed downstream.
            let trace_id = match req.request_id() {
                Some(id) => id.to_string(),
                None => mint_trace_id(&mint_seed, mint_sequence.fetch_add(1, Ordering::Relaxed)),
            };
            let now_ns = process_elapsed_ns();
            let (response, record) = match decide_json_traced(
                &shared,
                decide_chain.as_deref(),
                &req.body,
                Some(&trace_id),
            ) {
                Ok(outcome) => {
                    if let Some(w) = window {
                        w.record_at(now_ns, outcome.total_ns);
                    }
                    decide_slo.record_decide_at(now_ns, outcome.total_ns);
                    decide_slo.record_guard_at(now_ns, outcome.guard_gauge);
                    let record = FlightRecord {
                        trace_id: trace_id.clone(),
                        t_ns: now_ns,
                        parse_ns: outcome.parse_ns,
                        decide_ns: outcome.decide_ns,
                        audit_ns: outcome.audit_ns,
                        guard_state: outcome.guard_gauge,
                        heating_centi: outcome.heating * 100,
                        cooling_centi: outcome.cooling * 100,
                        http_status: 200,
                    };
                    (Response::json(200, outcome.body), record)
                }
                Err(message) => {
                    let record = FlightRecord {
                        trace_id: trace_id.clone(),
                        t_ns: now_ns,
                        parse_ns: 0,
                        decide_ns: 0,
                        audit_ns: 0,
                        guard_state: 0,
                        heating_centi: 0,
                        cooling_centi: 0,
                        http_status: 422,
                    };
                    (Response::error(422, &message), record)
                }
            };
            decide_slo.record_response_at(now_ns, response.status);
            if let Some(ring) = &decide_flight {
                ring.push(&record);
            }
            response.with_header(REQUEST_ID_HEADER, trace_id)
        })
        .route("GET", "/version", move |_req| {
            Response::json(200, version_json(&policy_hash, certificate_id.as_deref()))
        })
        .route("GET", "/debug/slo", move |_req| {
            Response::json(200, slo.render_json_at(process_elapsed_ns()))
        });
    if let Some(ring) = flight {
        builder = builder.route("GET", "/debug/flight", move |_req| {
            Response::json(200, flight_json(&ring))
        });
    }
    if let Some(chain) = audit {
        builder = builder.on_shutdown(move || {
            if let Err(e) = chain.seal() {
                warn!("audit chain seal failed on shutdown: {e}");
            }
        });
    }
    builder.bind(addr)
}

/// Binds the serving endpoint with only a custom comfort band — no
/// audit chain, no certificate (see [`serve_with_options`]).
///
/// # Errors
///
/// Propagates socket binding errors.
pub fn serve_guarded_policy(
    policy: DtPolicy,
    comfort: ComfortRange,
    addr: impl ToSocketAddrs,
) -> std::io::Result<HttpServer> {
    serve_with_options(
        policy,
        ServeOptions {
            comfort,
            ..ServeOptions::default()
        },
        addr,
    )
}

/// [`serve_guarded_policy`] with the paper's winter comfort band as
/// the fallback — the evaluation setting (January, Pittsburgh).
///
/// # Errors
///
/// Propagates socket binding errors.
pub fn serve_policy(policy: DtPolicy, addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
    serve_guarded_policy(policy, ComfortRange::winter(), addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_dtree::{DecisionTree, TreeConfig};
    use hvac_env::{ActionSpace, Disturbances, SetpointAction};
    use hvac_telemetry::http::blocking_request;

    /// Cold zones → heat hard, warm zones → off (same toy tree as the
    /// dt_policy unit tests).
    fn toy_policy() -> DtPolicy {
        let space = ActionSpace::new();
        let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
        let off = space.index_of(SetpointAction::off());
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let temp = 14.0 + f64::from(i) * 0.5;
            let mut row = vec![0.0; POLICY_INPUT_DIM];
            row[feature::ZONE_TEMPERATURE] = temp;
            inputs.push(row);
            labels.push(if temp < 20.0 { heat } else { off });
        }
        let tree =
            DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
        DtPolicy::new(tree).unwrap()
    }

    #[test]
    fn observation_parsing_accepts_every_alias() {
        // One body per short alias, each carrying a distinct value.
        let obs = observation_from_json(
            r#"{"zone_temperature":18.5,"outdoor_temperature":-3.0,
                "relative_humidity":55.0,"wind_speed":4.5,"solar_radiation":120.0,
                "occupant_count":3,"hour_of_day":10.5}"#,
        )
        .unwrap();
        assert_eq!(obs.zone_temperature, 18.5);
        assert_eq!(obs.disturbances.outdoor_temperature, -3.0);
        assert_eq!(obs.disturbances.relative_humidity, 55.0);
        assert_eq!(obs.disturbances.wind_speed, 4.5);
        assert_eq!(obs.disturbances.solar_radiation, 120.0);
        assert_eq!(obs.disturbances.occupant_count, 3.0);
        assert_eq!(obs.disturbances.hour_of_day, 10.5);
    }

    #[test]
    fn observation_parsing_accepts_every_canonical_name() {
        // Same seven fields under their `feature::NAMES` spellings.
        let mut body = String::from("{");
        for (i, name) in feature::NAMES.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("\"{name}\":{}", 10 + i));
        }
        body.push('}');
        let obs = observation_from_json(&body).unwrap();
        assert_eq!(obs.to_vector(), [10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0]);
    }

    #[test]
    fn observation_parsing_rejects_each_branch() {
        // Branch: unparsable JSON.
        assert!(observation_from_json("not json")
            .unwrap_err()
            .contains("invalid JSON"));
        // Branch: valid JSON, not an object.
        assert!(observation_from_json("[1,2,3]")
            .unwrap_err()
            .contains("object"));
        // Branch: required field missing.
        assert!(observation_from_json(r#"{"outdoor_temperature":1}"#)
            .unwrap_err()
            .contains("zone_temperature"));
        // Branch: present but not a number.
        assert!(observation_from_json(r#"{"zone_temperature":"cold"}"#)
            .unwrap_err()
            .contains("must be a number"));
        // Branch: present, numeric, non-finite (oversized literal → ∞).
        assert!(observation_from_json(r#"{"zone_temperature":1e999}"#)
            .unwrap_err()
            .contains("must be finite"));
    }

    #[test]
    fn observation_parsing_aggregates_all_problems() {
        let err = observation_from_json(
            r#"{"outdoor_temperature":"windy","wind_speed":1e999,"hour_of_day":[]}"#,
        )
        .unwrap_err();
        // All four problems in one message: missing zone temperature
        // plus the three malformed fields.
        assert!(err.contains("zone_temperature"), "{err}");
        assert!(err.contains("outdoor_temperature"), "{err}");
        assert!(err.contains("wind_speed"), "{err}");
        assert!(err.contains("hour_of_day"), "{err}");
        assert_eq!(err.matches(';').count(), 3, "{err}");
    }

    #[test]
    fn served_decision_matches_in_process_policy() {
        let mut reference = toy_policy();
        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        for temp in [15.0, 18.3, 21.0, 23.5] {
            let obs = Observation::new(temp, Disturbances::default());
            let expected = reference.decide(&obs);
            let body = format!(r#"{{"zone_temperature":{temp}}}"#);
            let (status, text) = blocking_request(server.addr(), "POST", "/decide", &body).unwrap();
            assert_eq!(status, 200, "{text}");
            let v = parse(&text).unwrap();
            let heating = v
                .get("heating_setpoint")
                .and_then(JsonValue::as_u64)
                .unwrap();
            let cooling = v
                .get("cooling_setpoint")
                .and_then(JsonValue::as_u64)
                .unwrap();
            assert_eq!(heating as i32, expected.heating(), "at {temp} °C");
            assert_eq!(cooling as i32, expected.cooling(), "at {temp} °C");
            assert!(v.get("latency_ns").and_then(JsonValue::as_u64).is_some());
            // Clean inputs never leave the normal rung.
            assert_eq!(
                v.get("guard_state").and_then(JsonValue::as_str),
                Some("normal")
            );
        }
        // The serving path records its latency histogram and counter.
        let snap = hvac_telemetry::snapshot();
        assert!(snap.counters["serve.decisions"] >= 4);
        assert!(snap.histograms["serve.decide.ns"].count >= 4);
        // Malformed bodies are a structured 422, not a crash.
        let (status, text) = blocking_request(server.addr(), "POST", "/decide", "{broken").unwrap();
        assert_eq!(status, 422);
        let v = parse(&text).expect("422 body is JSON");
        assert!(v.get("error").is_some());
        assert_eq!(v.get("status").and_then(JsonValue::as_u64), Some(422));
        server.shutdown();
    }

    #[test]
    fn out_of_range_readings_degrade_instead_of_reaching_the_tree() {
        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        // 300 °C parses fine but fails range validation; with no last
        // good value to hold, the guard drops straight to the
        // rule-based fallback.
        let (status, text) = blocking_request(
            server.addr(),
            "POST",
            "/decide",
            r#"{"zone_temperature":300}"#,
        )
        .unwrap();
        assert_eq!(status, 200, "{text}");
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("guard_state").and_then(JsonValue::as_str),
            Some("fallback")
        );
        // A good reading re-arms the ladder; the next bad one is held.
        let (_, _) = blocking_request(
            server.addr(),
            "POST",
            "/decide",
            r#"{"zone_temperature":21}"#,
        )
        .unwrap();
        let (status, text) = blocking_request(
            server.addr(),
            "POST",
            "/decide",
            r#"{"zone_temperature":300}"#,
        )
        .unwrap();
        assert_eq!(status, 200, "{text}");
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("guard_state").and_then(JsonValue::as_str),
            Some("hold")
        );
        server.shutdown();
    }

    #[test]
    fn version_endpoint_reports_build_policy_and_certificate() {
        // Uncertified: certified=false, no certificate_id key.
        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        let (status, text) = blocking_request(server.addr(), "GET", "/version", "").unwrap();
        assert_eq!(status, 200, "{text}");
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("crate_version").and_then(JsonValue::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(v
            .get("build")
            .and_then(JsonValue::as_str)
            .is_some_and(|b| !b.is_empty()));
        assert_eq!(
            v.get("policy_hash").and_then(JsonValue::as_str),
            Some(hvac_audit::policy_hash(&toy_policy()).as_str())
        );
        assert_eq!(v.get("certified").and_then(JsonValue::as_bool), Some(false));
        assert!(v.get("certificate_id").is_none());
        server.shutdown();

        // Certified: the id round-trips verbatim.
        let options = ServeOptions {
            certificate_id: Some("deadbeef".repeat(8)),
            ..ServeOptions::default()
        };
        let server = serve_with_options(toy_policy(), options, "127.0.0.1:0").expect("bind");
        let (_, text) = blocking_request(server.addr(), "GET", "/version", "").unwrap();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("certified").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            v.get("certificate_id").and_then(JsonValue::as_str),
            Some("deadbeef".repeat(8).as_str())
        );
        server.shutdown();
    }

    #[test]
    fn audited_serve_session_seals_a_verifiable_chain_on_shutdown() {
        use hvac_audit::{AuditChain, Auditor, ChainConfig, FlushPolicy};

        let dir = std::env::temp_dir().join("hvac-serve-audit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chain.jsonl");
        let policy = toy_policy();
        let policy_hash = hvac_audit::policy_hash(&policy);
        let chain = std::sync::Arc::new(
            AuditChain::create(
                &path,
                &policy_hash,
                "",
                ChainConfig {
                    checkpoint_every: 8,
                    flush: FlushPolicy::Always,
                },
            )
            .unwrap(),
        );
        let options = ServeOptions {
            audit: Some(std::sync::Arc::clone(&chain)),
            ..ServeOptions::default()
        };
        let server = serve_with_options(policy.clone(), options, "127.0.0.1:0").expect("bind");
        for i in 0..30 {
            let temp = 14.0 + f64::from(i) * 0.3;
            let body = format!(r#"{{"zone_temperature":{temp}}}"#);
            let (status, _) = blocking_request(server.addr(), "POST", "/decide", &body).unwrap();
            assert_eq!(status, 200);
        }
        // One invalid reading so the chain records guard transitions
        // too (normal → hold → normal).
        let (status, _) = blocking_request(
            server.addr(),
            "POST",
            "/decide",
            r#"{"zone_temperature":300}"#,
        )
        .unwrap();
        assert_eq!(status, 200);
        // Graceful shutdown runs the seal hook before returning.
        server.shutdown();

        let text = std::fs::read_to_string(&path).unwrap();
        // No trailing partial record: the file ends on a newline and
        // the last line is a complete seal record.
        assert!(text.ends_with('\n'), "chain file ends mid-record");
        assert!(
            text.lines().last().unwrap().contains(r#""kind":"seal""#),
            "chain does not end in a seal record"
        );
        let report = Auditor::new(&text).with_policy(&policy).run();
        assert!(report.passed(), "{report}");
        assert_eq!(report.decisions, 31);
        assert!(report.transitions >= 1, "{report}");
        assert!(report.sealed);
    }

    #[test]
    fn minted_trace_ids_are_deterministic_and_valid() {
        let a = mint_trace_id("policyhash", 0);
        let b = mint_trace_id("policyhash", 0);
        let c = mint_trace_id("policyhash", 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.starts_with("srv-"));
        assert!(hvac_telemetry::http::valid_request_id(&a));
    }

    #[test]
    fn decide_without_client_id_mints_one_and_flight_records_it() {
        use hvac_telemetry::http::{blocking_request_with_headers, header_value};

        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        let (status, headers, text) = blocking_request_with_headers(
            server.addr(),
            "POST",
            "/decide",
            &[],
            r#"{"zone_temperature":18}"#,
        )
        .unwrap();
        assert_eq!(status, 200, "{text}");
        let minted = header_value(&headers, REQUEST_ID_HEADER)
            .expect("minted id on response")
            .to_string();
        assert!(minted.starts_with("srv-"), "{minted}");
        // The body carries the same id.
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("trace_id").and_then(JsonValue::as_str),
            Some(minted.as_str())
        );
        // And so does the flight snapshot.
        let (status, flight) = blocking_request(server.addr(), "GET", "/debug/flight", "").unwrap();
        assert_eq!(status, 200);
        let v = parse(&flight).unwrap();
        let records = v.get("records").and_then(JsonValue::as_array).unwrap();
        assert!(records
            .iter()
            .any(|r| { r.get("trace_id").and_then(JsonValue::as_str) == Some(minted.as_str()) }));
        server.shutdown();
    }

    #[test]
    fn client_trace_id_reaches_flight_window_and_slo() {
        use hvac_telemetry::http::{blocking_request_with_headers, header_value};

        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        let id = "req-ops-plane-0042";
        let (status, headers, text) = blocking_request_with_headers(
            server.addr(),
            "POST",
            "/decide",
            &[(REQUEST_ID_HEADER, id)],
            r#"{"zone_temperature":16}"#,
        )
        .unwrap();
        assert_eq!(status, 200, "{text}");
        assert_eq!(header_value(&headers, REQUEST_ID_HEADER), Some(id));

        // Flight snapshot carries the client id, stage latencies, and
        // the decision.
        let (_, flight) = blocking_request(server.addr(), "GET", "/debug/flight", "").unwrap();
        let v = parse(&flight).unwrap();
        let records = v.get("records").and_then(JsonValue::as_array).unwrap();
        let mine = records
            .iter()
            .find(|r| r.get("trace_id").and_then(JsonValue::as_str) == Some(id))
            .expect("client id in flight snapshot");
        assert!(mine.get("decide_ns").and_then(JsonValue::as_u64).unwrap() > 0);
        assert_eq!(
            mine.get("guard_state").and_then(JsonValue::as_str),
            Some("normal")
        );
        assert_eq!(
            mine.get("http_status").and_then(JsonValue::as_u64),
            Some(200)
        );

        // The windowed latency series saw the request.
        let (_, summary) = blocking_request(server.addr(), "GET", "/summary.json", "").unwrap();
        let v = parse(&summary).unwrap();
        let window = v
            .get("windows")
            .and_then(|w| w.get("serve.decide.ns"))
            .expect("windowed serve.decide.ns in summary");
        assert!(window.get("count").and_then(JsonValue::as_u64).unwrap() >= 1);

        // The SLO tracker counted it and reports burn status.
        let (status, slo) = blocking_request(server.addr(), "GET", "/debug/slo", "").unwrap();
        assert_eq!(status, 200);
        let v = parse(&slo).unwrap();
        assert!(v.get("overall").and_then(JsonValue::as_str).is_some());
        let objectives = v.get("objectives").and_then(JsonValue::as_array).unwrap();
        let availability = objectives
            .iter()
            .find(|o| o.get("name").and_then(JsonValue::as_str) == Some("availability"))
            .unwrap();
        assert!(
            availability
                .get("fast")
                .and_then(|f| f.get("total"))
                .and_then(JsonValue::as_u64)
                .unwrap()
                >= 1
        );
        server.shutdown();
    }

    #[test]
    fn disabled_flight_recorder_answers_404() {
        let options = ServeOptions {
            ops: OpsOptions {
                flight_capacity: 0,
                ..OpsOptions::default()
            },
            ..ServeOptions::default()
        };
        let server = serve_with_options(toy_policy(), options, "127.0.0.1:0").expect("bind");
        let (status, _) = blocking_request(server.addr(), "GET", "/debug/flight", "").unwrap();
        assert_eq!(status, 404);
        // The SLO endpoint stays up regardless.
        let (status, _) = blocking_request(server.addr(), "GET", "/debug/slo", "").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn rejected_decides_are_flight_recorded_with_422() {
        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        let (status, _) = blocking_request(server.addr(), "POST", "/decide", "{broken").unwrap();
        assert_eq!(status, 422);
        let (_, flight) = blocking_request(server.addr(), "GET", "/debug/flight", "").unwrap();
        let v = parse(&flight).unwrap();
        let records = v.get("records").and_then(JsonValue::as_array).unwrap();
        assert!(records
            .iter()
            .any(|r| { r.get("http_status").and_then(JsonValue::as_u64) == Some(422) }));
        server.shutdown();
    }

    #[test]
    fn oversized_decide_bodies_are_rejected() {
        use std::io::{Read, Write};
        let server = serve_policy(toy_policy(), "127.0.0.1:0").expect("bind");
        // Declare a body beyond the cap; the server answers 413 from
        // the headers alone, without waiting for (or reading) it.
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                format!(
                    "POST /decide HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_DECIDE_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap();
        assert!(parse(body).is_ok(), "413 body is JSON: {body}");
        server.shutdown();
    }
}
