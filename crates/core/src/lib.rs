//! **Veri-HVAC** — interpretable and verifiable decision-tree HVAC
//! control.
//!
//! A from-scratch Rust reproduction of *"Go Beyond Black-box Policies:
//! Rethinking the Design of Learning Agent for Interpretable and
//! Verifiable HVAC Control"* (An, Ding, Du — DAC 2024). The paper
//! replaces stochastic black-box model-based-RL HVAC controllers with
//! decision trees that are
//!
//! * **deterministic** — every input maps to exactly one setpoint,
//! * **interpretable** — each decision node compares one named physical
//!   quantity against a threshold,
//! * **verifiable** — Algorithm 1 formally checks (and corrects) the
//!   tree against domain safety criteria, and a one-step Monte-Carlo
//!   method bounds the probability of comfort violations, and
//! * **cheap** — a tree descent costs ~µs where stochastic-optimizer
//!   MPC costs hundreds of ms (the paper's 1127× Table 3).
//!
//! This crate re-exports the whole workspace and adds [`pipeline`]: the
//! end-to-end procedure of the paper's Fig. 2 — historical data →
//! dynamics model → importance-sampled decision dataset → CART →
//! verification → deployable policy.
//!
//! # End-to-end example
//!
//! ```no_run
//! use veri_hvac::pipeline::{run_pipeline, PipelineConfig};
//!
//! # fn main() -> Result<(), veri_hvac::pipeline::PipelineError> {
//! let config = PipelineConfig::paper_pittsburgh();
//! let artifacts = run_pipeline(&config)?;
//! println!("{}", artifacts.report); // the paper's Table 2 rows
//! println!("{}", artifacts.policy.to_text()); // interpretable rules
//! # Ok(())
//! # }
//! ```
//!
//! # Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`sim`] | five-zone RC building simulator, weather, occupancy |
//! | [`mod@env`] | MDP spaces, Eq. 2 reward, episode driver |
//! | [`nn`] | from-scratch MLP + Adam (the black-box regressor) |
//! | [`dynamics`] | transition datasets, dynamics models, ensembles |
//! | [`control`] | default/MBRL/MPPI/CLUE controllers + DT policy |
//! | [`dtree`] | CART with boxes, paths and leaf editing |
//! | [`extract`] | Eq. 5 augmentation, noise study, distillation |
//! | [`verify`] | Algorithm 1 + probabilistic criterion #1 |
//! | [`mod@audit`] | tamper-evident decision chains + offline verifier |
//! | [`faults`] | deterministic sensor/weather fault injection |
//! | [`stats`] | histograms, entropy, JSD, summaries |
//! | [`serve`] | HTTP serving of verified policies (`POST /decide`) |
//! | [`fleet`] | multi-tenant fleet controller (registry, sharded guards, lockstep `/tick`) |
//! | [`artifacts`] | content-addressed pipeline artifact store |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hvac_audit as audit;
pub use hvac_control as control;
pub use hvac_dtree as dtree;
pub use hvac_dynamics as dynamics;
pub use hvac_env as env;
pub use hvac_extract as extract;
pub use hvac_faults as faults;
pub use hvac_nn as nn;
pub use hvac_sim as sim;
pub use hvac_stats as stats;
pub use hvac_verify as verify;

pub mod artifacts;
pub mod fleet;
pub mod pipeline;
pub mod serve;

pub use artifacts::{ArtifactError, ArtifactStore, PipelineKeys, StageKey};
pub use fleet::{
    serve_fleet, serve_fleet_with_reload, valid_tenant_id, Fleet, FleetOptions, PolicyRegistry,
    RegisteredPolicy, ReloadReport, ReloadSource, Tenant, TenantSpec, TickDecision,
};
pub use pipeline::{
    run_pipeline, run_pipeline_cached, PipelineArtifacts, PipelineConfig, PipelineError,
};
pub use serve::{
    decide_json_traced, serve_guarded_policy, serve_policy, serve_with_options, DecideOutcome,
    OpsOptions, ServeOptions,
};
