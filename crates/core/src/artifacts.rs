//! Content-addressed, persistent storage of pipeline artifacts.
//!
//! Every stage of the paper's Fig. 2 pipeline is an expensive,
//! deterministic function of (a prefix of) the [`PipelineConfig`] and
//! the master seed. This module gives each stage output a stable
//! content address — a 64-bit FNV-1a hash over the producing config
//! prefix, the seed, the parent-stage keys, and a format version — and
//! persists it on disk so later runs (and parallel sweep workers) can
//! skip recomputation entirely.
//!
//! # Layout and manifest schema
//!
//! ```text
//! <root>/
//!   historical/<hash>/historical.txt   + manifest.json
//!   model/<hash>/model.dynmodel        + manifest.json
//!   augmenter/<hash>/augmenter.aug     + manifest.json
//!   decision/<hash>/decisions.txt      + manifest.json
//!   tree/<hash>/policy.dtree           + manifest.json
//!   verified/<hash>/policy.dtree
//!                  + report.json       + manifest.json
//!   certificates/<policy_sha256>/certificate.json + manifest.json
//! ```
//!
//! `manifest.json` is a flat JSON object with the fields `format`
//! (`"artifact_manifest v1"`), `stage`, `key`, `format_version`,
//! `crate_version`, `seed`, `noise_level`, `config` (the `Debug`
//! rendering of the producing config prefix), and `parents`
//! (comma-separated parent keys) — full provenance for every cached
//! artifact.
//!
//! # Keys and invalidation
//!
//! [`PipelineKeys::derive`] computes all six stage keys from one
//! config. Each key hashes its own config prefix *plus its parents'
//! keys*, so invalidation is exactly downstream: changing
//! `noise_level` leaves `historical` and `model` untouched but changes
//! `augmenter`, `decision`, `tree`, and `verified`; changing only
//! `verification` re-verifies a cached tree without refitting it.
//! Bumping [`FORMAT_VERSION`] invalidates everything.
//!
//! Writes are atomic (staged into a scratch directory, then renamed),
//! so a store shared by concurrent sweep workers never exposes a
//! half-written artifact; when two workers race on the same key, one
//! rename wins and the other's identical output is discarded.

use crate::pipeline::PipelineConfig;
use hvac_control::DtPolicy;
use hvac_dynamics::{DynamicsModel, TransitionDataset};
use hvac_extract::{DecisionDataset, NoiseAugmenter};
use hvac_telemetry::json::{self, JsonValue, ObjectWriter};
use hvac_verify::{Certificate, VerificationReport};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version tag hashed into every stage key. Bump when any on-disk
/// artifact format changes; every existing cache entry then misses.
pub const FORMAT_VERSION: u32 = 1;

const MANIFEST_FORMAT: &str = "artifact_manifest v1";

/// Error type for artifact-store operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A stored artifact failed to parse.
    Malformed {
        /// Which stage's artifact was malformed.
        stage: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// The requested key is not in the store.
    Missing {
        /// Which stage was probed.
        stage: &'static str,
        /// The missing key's hash.
        key: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, source } => {
                write!(f, "artifact I/O failed at {}: {source}", path.display())
            }
            ArtifactError::Malformed { stage, detail } => {
                write!(f, "stored {stage} artifact is malformed: {detail}")
            }
            ArtifactError::Missing { stage, key } => {
                write!(f, "no {stage} artifact stored under key {key}")
            }
        }
    }
}

impl Error for ArtifactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArtifactError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path) -> impl FnOnce(std::io::Error) -> ArtifactError + '_ {
    move |source| ArtifactError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// 64-bit FNV-1a over a byte string. Stable across platforms and
/// compiler versions (unlike `std::hash`), which is what a persistent
/// cache key needs.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content address of one stage output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageKey {
    /// Stage name (also the store subdirectory).
    pub stage: &'static str,
    /// Hex-encoded canonical hash.
    pub hash: String,
}

impl StageKey {
    fn derive(stage: &'static str, parents: &[&StageKey], parts: &[&str]) -> Self {
        let mut canon = String::new();
        canon.push_str(stage);
        canon.push('\n');
        canon.push_str(&format!("format_version {FORMAT_VERSION}\n"));
        for p in parents {
            canon.push_str("parent ");
            canon.push_str(&p.hash);
            canon.push('\n');
        }
        for part in parts {
            canon.push_str(part);
            canon.push('\n');
        }
        StageKey {
            stage,
            hash: format!("{:016x}", fnv1a64(canon.as_bytes())),
        }
    }
}

impl fmt::Display for StageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.stage, self.hash)
    }
}

/// The content addresses of all six stage outputs of one
/// [`PipelineConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineKeys {
    /// Historical dataset `T` (env + episodes + master seed).
    pub historical: StageKey,
    /// Trained dynamics model `f̂` (historical + model config).
    pub model: StageKey,
    /// Eq. 5 augmenter (historical + noise level).
    pub augmenter: StageKey,
    /// Decision dataset `Π` (model + augmenter + teacher/extraction
    /// config).
    pub decision: StageKey,
    /// Uncorrected CART tree (decision + tree config).
    pub tree: StageKey,
    /// Verified/corrected policy + Table-2 report (tree + model +
    /// augmenter + verification config).
    pub verified: StageKey,
}

impl PipelineKeys {
    /// Derives every stage key for `config`. Pure and deterministic:
    /// the same config always maps to the same keys, and any config
    /// change invalidates exactly the stages downstream of it.
    pub fn derive(config: &PipelineConfig) -> Self {
        let historical = StageKey::derive(
            "historical",
            &[],
            &[
                &format!("env {:?}", config.env),
                &format!("episodes {}", config.historical_episodes),
                &format!("seed {}", config.seed),
            ],
        );
        let model = StageKey::derive(
            "model",
            &[&historical],
            &[&format!("model {:?}", config.model)],
        );
        let augmenter = StageKey::derive(
            "augmenter",
            &[&historical],
            &[&format!("noise_level {:?}", config.noise_level)],
        );
        let decision = StageKey::derive(
            "decision",
            &[&model, &augmenter],
            &[
                &format!("rs {:?}", config.rs),
                &format!("extraction {:?}", config.extraction),
                &format!("teacher_seed {}", config.seed),
            ],
        );
        let tree = StageKey::derive("tree", &[&decision], &[&format!("tree {:?}", config.tree)]);
        let verified = StageKey::derive(
            "verified",
            &[&tree, &model, &augmenter],
            &[&format!("verification {:?}", config.verification)],
        );
        Self {
            historical,
            model,
            augmenter,
            decision,
            tree,
            verified,
        }
    }

    fn parents_of(&self, key: &StageKey) -> Vec<&StageKey> {
        match key.stage {
            "historical" => vec![],
            "model" | "augmenter" => vec![&self.historical],
            "decision" => vec![&self.model, &self.augmenter],
            "tree" => vec![&self.decision],
            "verified" => vec![&self.tree, &self.model, &self.augmenter],
            _ => vec![],
        }
    }
}

/// A persistent, content-addressed store of pipeline artifacts.
///
/// Cheap to open, safe to share across threads (all methods take
/// `&self`; writes are atomic renames).
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    scratch_seq: AtomicU64,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] when the root cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ArtifactError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_err(&root))?;
        Ok(Self {
            root,
            scratch_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn dir(&self, key: &StageKey) -> PathBuf {
        self.root.join(key.stage).join(&key.hash)
    }

    /// Whether an artifact is stored under `key` (its manifest exists).
    pub fn contains(&self, key: &StageKey) -> bool {
        self.dir(key).join("manifest.json").is_file()
    }

    /// Reads and parses the manifest stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Missing`] when the key is absent and
    /// [`ArtifactError::Malformed`] when the manifest does not parse.
    pub fn manifest(&self, key: &StageKey) -> Result<JsonValue, ArtifactError> {
        let text = self.read(key, "manifest.json")?;
        json::parse(&text).map_err(|e| ArtifactError::Malformed {
            stage: key.stage,
            detail: format!("manifest: {e}"),
        })
    }

    fn read(&self, key: &StageKey, file: &str) -> Result<String, ArtifactError> {
        let path = self.dir(key).join(file);
        if !path.is_file() {
            return Err(ArtifactError::Missing {
                stage: key.stage,
                key: key.hash.clone(),
            });
        }
        fs::read_to_string(&path).map_err(io_err(&path))
    }

    /// Writes `files` (plus the manifest) under `key` atomically: the
    /// whole entry is staged in a scratch directory and renamed into
    /// place. Losing a rename race to a concurrent writer is fine — the
    /// winner's content is identical by construction (same key, same
    /// deterministic producer).
    fn write(
        &self,
        key: &StageKey,
        files: &[(&str, &str)],
        manifest: &str,
    ) -> Result<(), ArtifactError> {
        let final_dir = self.dir(key);
        if final_dir.join("manifest.json").is_file() {
            return Ok(());
        }
        let stage_dir = self.root.join(key.stage);
        fs::create_dir_all(&stage_dir).map_err(io_err(&stage_dir))?;
        let scratch = stage_dir.join(format!(
            ".tmp-{}-{}-{}",
            key.hash,
            std::process::id(),
            self.scratch_seq.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&scratch).map_err(io_err(&scratch))?;
        for (name, content) in files {
            let path = scratch.join(name);
            fs::write(&path, content).map_err(io_err(&path))?;
        }
        // The manifest is written last inside the scratch dir; its
        // presence marks a complete entry (see `contains`).
        let manifest_path = scratch.join("manifest.json");
        fs::write(&manifest_path, manifest).map_err(io_err(&manifest_path))?;
        match fs::rename(&scratch, &final_dir) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_dir_all(&scratch);
                if final_dir.join("manifest.json").is_file() {
                    // A concurrent writer landed the same key first.
                    Ok(())
                } else {
                    Err(ArtifactError::Io {
                        path: final_dir,
                        source: e,
                    })
                }
            }
        }
    }

    fn manifest_for(&self, keys: &PipelineKeys, key: &StageKey, config: &PipelineConfig) -> String {
        let parents: Vec<String> = keys.parents_of(key).iter().map(|p| p.to_string()).collect();
        let mut o = ObjectWriter::new();
        o.str_field("format", MANIFEST_FORMAT);
        o.str_field("stage", key.stage);
        o.str_field("key", &key.hash);
        o.u64_field("format_version", u64::from(FORMAT_VERSION));
        o.str_field("crate_version", env!("CARGO_PKG_VERSION"));
        o.u64_field("seed", config.seed);
        o.f64_field("noise_level", config.noise_level);
        o.str_field("config", &format!("{config:?}"));
        o.str_field("parents", &parents.join(","));
        o.finish()
    }

    /// Saves the historical dataset under `keys.historical`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on write failure.
    pub fn save_historical(
        &self,
        keys: &PipelineKeys,
        config: &PipelineConfig,
        data: &TransitionDataset,
    ) -> Result<(), ArtifactError> {
        self.write(
            &keys.historical,
            &[("historical.txt", &data.to_compact_string())],
            &self.manifest_for(keys, &keys.historical, config),
        )
    }

    /// Loads the historical dataset stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Missing`] / [`ArtifactError::Malformed`].
    pub fn load_historical(&self, key: &StageKey) -> Result<TransitionDataset, ArtifactError> {
        let text = self.read(key, "historical.txt")?;
        TransitionDataset::from_compact_string(&text).map_err(|e| ArtifactError::Malformed {
            stage: key.stage,
            detail: e.to_string(),
        })
    }

    /// Saves the trained dynamics model under `keys.model`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on write failure.
    pub fn save_model(
        &self,
        keys: &PipelineKeys,
        config: &PipelineConfig,
        model: &DynamicsModel,
    ) -> Result<(), ArtifactError> {
        self.write(
            &keys.model,
            &[("model.dynmodel", &model.to_compact_string())],
            &self.manifest_for(keys, &keys.model, config),
        )
    }

    /// Loads the dynamics model stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Missing`] / [`ArtifactError::Malformed`].
    pub fn load_model(&self, key: &StageKey) -> Result<DynamicsModel, ArtifactError> {
        let text = self.read(key, "model.dynmodel")?;
        DynamicsModel::from_compact_string(&text).map_err(|e| ArtifactError::Malformed {
            stage: key.stage,
            detail: e.to_string(),
        })
    }

    /// Saves the Eq. 5 augmenter under `keys.augmenter`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on write failure.
    pub fn save_augmenter(
        &self,
        keys: &PipelineKeys,
        config: &PipelineConfig,
        augmenter: &NoiseAugmenter,
    ) -> Result<(), ArtifactError> {
        self.write(
            &keys.augmenter,
            &[("augmenter.aug", &augmenter.to_compact_string())],
            &self.manifest_for(keys, &keys.augmenter, config),
        )
    }

    /// Loads the augmenter stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Missing`] / [`ArtifactError::Malformed`].
    pub fn load_augmenter(&self, key: &StageKey) -> Result<NoiseAugmenter, ArtifactError> {
        let text = self.read(key, "augmenter.aug")?;
        NoiseAugmenter::from_compact_string(&text).map_err(|e| ArtifactError::Malformed {
            stage: key.stage,
            detail: e.to_string(),
        })
    }

    /// Saves the decision dataset under `keys.decision`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on write failure.
    pub fn save_decision(
        &self,
        keys: &PipelineKeys,
        config: &PipelineConfig,
        data: &DecisionDataset,
    ) -> Result<(), ArtifactError> {
        self.write(
            &keys.decision,
            &[("decisions.txt", &data.to_compact_string())],
            &self.manifest_for(keys, &keys.decision, config),
        )
    }

    /// Loads the decision dataset stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Missing`] / [`ArtifactError::Malformed`].
    pub fn load_decision(&self, key: &StageKey) -> Result<DecisionDataset, ArtifactError> {
        let text = self.read(key, "decisions.txt")?;
        DecisionDataset::from_compact_string(&text).map_err(|e| ArtifactError::Malformed {
            stage: key.stage,
            detail: e.to_string(),
        })
    }

    /// Saves the uncorrected CART policy under `keys.tree`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on write failure.
    pub fn save_tree(
        &self,
        keys: &PipelineKeys,
        config: &PipelineConfig,
        policy: &DtPolicy,
    ) -> Result<(), ArtifactError> {
        self.write(
            &keys.tree,
            &[("policy.dtree", &policy.to_compact_string())],
            &self.manifest_for(keys, &keys.tree, config),
        )
    }

    /// Loads the uncorrected CART policy stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Missing`] / [`ArtifactError::Malformed`].
    pub fn load_tree(&self, key: &StageKey) -> Result<DtPolicy, ArtifactError> {
        let text = self.read(key, "policy.dtree")?;
        DtPolicy::from_compact_string(&text).map_err(|e| ArtifactError::Malformed {
            stage: key.stage,
            detail: e.to_string(),
        })
    }

    /// Saves the verified (corrected) policy plus its Table-2 report
    /// under `keys.verified`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on write failure.
    pub fn save_verified(
        &self,
        keys: &PipelineKeys,
        config: &PipelineConfig,
        policy: &DtPolicy,
        report: &VerificationReport,
    ) -> Result<(), ArtifactError> {
        self.write(
            &keys.verified,
            &[
                ("policy.dtree", &policy.to_compact_string()),
                ("report.json", &report.to_json_string()),
            ],
            &self.manifest_for(keys, &keys.verified, config),
        )
    }

    /// Saves a verification certificate under
    /// `certificates/<policy_hash>/certificate.json`.
    ///
    /// Certificates are addressed by the policy content hash they
    /// bind, so re-verifying an already-certified policy is a no-op:
    /// the first stored certificate for a policy wins. Writes use the
    /// same atomic staged-rename path as every other artifact.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on write failure.
    pub fn save_certificate(&self, certificate: &Certificate) -> Result<(), ArtifactError> {
        let key = Self::certificate_key(&certificate.policy_hash);
        let mut o = ObjectWriter::new();
        o.str_field("format", MANIFEST_FORMAT);
        o.str_field("stage", key.stage);
        o.str_field("key", &key.hash);
        o.u64_field("format_version", u64::from(FORMAT_VERSION));
        o.str_field("crate_version", env!("CARGO_PKG_VERSION"));
        o.str_field("certificate_id", &certificate.certificate_id);
        self.write(
            &key,
            &[("certificate.json", &certificate.to_json_string())],
            &o.finish(),
        )
    }

    /// Loads the certificate stored for `policy_hash`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Missing`] / [`ArtifactError::Malformed`].
    pub fn load_certificate(&self, policy_hash: &str) -> Result<Certificate, ArtifactError> {
        let key = Self::certificate_key(policy_hash);
        let text = self.read(&key, "certificate.json")?;
        Certificate::from_json_string(&text).map_err(|e| ArtifactError::Malformed {
            stage: key.stage,
            detail: e.to_string(),
        })
    }

    /// Whether a certificate is stored for `policy_hash`.
    pub fn has_certificate(&self, policy_hash: &str) -> bool {
        self.contains(&Self::certificate_key(policy_hash))
    }

    fn certificate_key(policy_hash: &str) -> StageKey {
        StageKey {
            stage: "certificates",
            hash: policy_hash.to_string(),
        }
    }

    /// Loads the verified policy and report stored under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Missing`] / [`ArtifactError::Malformed`].
    pub fn load_verified(
        &self,
        key: &StageKey,
    ) -> Result<(DtPolicy, VerificationReport), ArtifactError> {
        let policy_text = self.read(key, "policy.dtree")?;
        let policy =
            DtPolicy::from_compact_string(&policy_text).map_err(|e| ArtifactError::Malformed {
                stage: key.stage,
                detail: e.to_string(),
            })?;
        let report_text = self.read(key, "report.json")?;
        let report = VerificationReport::from_json_string(&report_text).map_err(|e| {
            ArtifactError::Malformed {
                stage: key.stage,
                detail: e.to_string(),
            }
        })?;
        Ok((policy, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::EnvConfig;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hvac-artifacts-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_are_stable_and_config_sensitive() {
        let config = PipelineConfig::quick(EnvConfig::pittsburgh());
        let a = PipelineKeys::derive(&config);
        let b = PipelineKeys::derive(&config);
        assert_eq!(a, b);

        let mut other = config.clone();
        other.seed += 1;
        let c = PipelineKeys::derive(&other);
        assert_ne!(a.historical, c.historical);
        assert_ne!(a.verified, c.verified);
    }

    #[test]
    fn noise_change_invalidates_exactly_downstream_stages() {
        let config = PipelineConfig::quick(EnvConfig::pittsburgh());
        let mut noisier = config.clone();
        noisier.noise_level = 0.09;
        let a = PipelineKeys::derive(&config);
        let b = PipelineKeys::derive(&noisier);
        // Upstream of the augmenter: unchanged.
        assert_eq!(a.historical, b.historical);
        assert_eq!(a.model, b.model);
        // The augmenter and everything downstream: changed.
        assert_ne!(a.augmenter, b.augmenter);
        assert_ne!(a.decision, b.decision);
        assert_ne!(a.tree, b.tree);
        assert_ne!(a.verified, b.verified);
    }

    #[test]
    fn verification_change_keeps_tree_key() {
        let config = PipelineConfig::quick(EnvConfig::pittsburgh());
        let mut stricter = config.clone();
        stricter.verification.samples += 100;
        let a = PipelineKeys::derive(&config);
        let b = PipelineKeys::derive(&stricter);
        assert_eq!(a.tree, b.tree);
        assert_ne!(a.verified, b.verified);
    }

    #[test]
    fn store_roundtrips_historical_with_manifest() {
        let root = temp_root("historical");
        let store = ArtifactStore::open(&root).unwrap();
        let config = PipelineConfig::quick(EnvConfig::pittsburgh());
        let keys = PipelineKeys::derive(&config);
        let data = hvac_dynamics::collect_historical_dataset(
            &config.env,
            config.historical_episodes,
            config.seed,
        )
        .unwrap();

        assert!(!store.contains(&keys.historical));
        store.save_historical(&keys, &config, &data).unwrap();
        assert!(store.contains(&keys.historical));
        let restored = store.load_historical(&keys.historical).unwrap();
        assert_eq!(data, restored);

        let manifest = store.manifest(&keys.historical).unwrap();
        assert_eq!(
            manifest.get("stage").and_then(|v| v.as_str()),
            Some("historical")
        );
        assert_eq!(
            manifest.get("key").and_then(|v| v.as_str()),
            Some(keys.historical.hash.as_str())
        );
        assert_eq!(
            manifest.get("seed").and_then(|v| v.as_u64()),
            Some(config.seed)
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn save_is_idempotent_and_missing_loads_error() {
        let root = temp_root("idempotent");
        let store = ArtifactStore::open(&root).unwrap();
        let config = PipelineConfig::quick(EnvConfig::pittsburgh());
        let keys = PipelineKeys::derive(&config);

        assert!(matches!(
            store.load_historical(&keys.historical),
            Err(ArtifactError::Missing {
                stage: "historical",
                ..
            })
        ));

        let data = TransitionDataset::new();
        store.save_historical(&keys, &config, &data).unwrap();
        store.save_historical(&keys, &config, &data).unwrap(); // no-op
        assert!(store.contains(&keys.historical));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn malformed_artifact_is_reported() {
        let root = temp_root("malformed");
        let store = ArtifactStore::open(&root).unwrap();
        let config = PipelineConfig::quick(EnvConfig::pittsburgh());
        let keys = PipelineKeys::derive(&config);
        let dir = store.dir(&keys.model);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("model.dynmodel"), "not a model").unwrap();
        fs::write(dir.join("manifest.json"), "{}").unwrap();
        assert!(matches!(
            store.load_model(&keys.model),
            Err(ArtifactError::Malformed { stage: "model", .. })
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
