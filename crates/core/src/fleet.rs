//! Fleet serving — one process controlling many buildings.
//!
//! The paper's deployment argument (Table 3) is that a verified tree
//! policy is cheap enough to serve *everywhere*: a root-to-leaf
//! descent costs ~100 ns, so a single controller process should
//! comfortably decide for thousands of buildings. [`serve_fleet`]
//! grows the single-policy endpoint of [`crate::serve`] into exactly
//! that:
//!
//! * a content-addressed [`PolicyRegistry`] — tenants referencing the
//!   same tree (by `hvac-audit::policy_hash`) share one immutable
//!   [`RegisteredPolicy`] entry instead of N copies;
//! * per-tenant [`GuardedPolicy`] state behind **sharded locks** — one
//!   mutex per building, so tenant A's decide never queues behind
//!   tenant B's (the old serve path funnelled every request through a
//!   single global mutex);
//! * per-tenant tamper-evident audit chains (`<audit_dir>/<id>.jsonl`,
//!   each with its own genesis binding the tenant's policy hash and
//!   certificate), all sealed on graceful shutdown — after the worker
//!   pool has drained, so no in-flight decision can race a seal;
//! * a **lockstep tick path** (`POST /tick`): one synchronized batch
//!   of observations, one per tenant, whose tree evaluations coalesce
//!   into [`DtPolicy::decide_batch_into`] calls grouped by registry
//!   entry — the fleet-scale extension of the planner's
//!   `predict_batch_into`/`LockstepWorkspace` idiom.
//!
//! # Routes
//!
//! | route | purpose |
//! |---|---|
//! | `POST /decide/{tenant}` | one decision for one building |
//! | `POST /decide` | same, tenant named by a `"tenant"` body field (optional for a single-tenant fleet) |
//! | `POST /tick` | lockstep batch: `{"requests":[{"tenant":…,"observation":{…}},…]}` |
//! | `GET /tenants` | fleet roster with per-tenant guard rung and decision counts |
//! | `GET /version` | build info, tenant and distinct-policy counts |
//! | `GET /debug/flight`, `/debug/slo`, `/metrics`, `/summary.json`, `/healthz` | the ops plane of [`crate::serve`] |
//!
//! Per-tenant decisions are **bit-identical** to the single-policy
//! path: `/decide/{tenant}` reuses [`decide_json_traced`] over the
//! tenant's own guard, and the tick path's two-phase
//! [`GuardedPolicy::route`] / [`GuardedPolicy::commit`] split is
//! bit-identical to `decide` by construction.

use crate::serve::{
    decide_json_traced, flight_json, mint_trace_id, observation_from_value, OpsOptions,
    DECIDE_TIMEOUT, SERVE_WINDOW_EPOCHS, SERVE_WINDOW_NS,
};
use hvac_audit::{AuditChain, ChainConfig, ChainRecord, FlushPolicy, Payload};
use hvac_control::{
    DtPolicy, GuardConfig, GuardRoute, GuardSnapshot, GuardState, GuardTransition, GuardedPolicy,
};
use hvac_env::{ComfortRange, Observation, SetpointAction};
use hvac_telemetry::http::{HttpServer, Request, Response, REQUEST_ID_HEADER};
use hvac_telemetry::json::{parse, JsonValue, ObjectWriter};
use hvac_telemetry::ring::{FlightRecord, FlightRecorder};
use hvac_telemetry::slo::SloTracker;
use hvac_telemetry::{process_elapsed_ns, warn, windowed_histogram, LATENCY_BOUNDS_NS};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::net::ToSocketAddrs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Longest accepted tenant id, in bytes.
pub const MAX_TENANT_ID_BYTES: usize = 64;

/// Largest accepted request body on a fleet endpoint. `POST /tick`
/// carries one observation per tenant, so the cap is sized for a full
/// fleet's batch rather than the single-observation cap of the
/// single-policy path.
pub const MAX_FLEET_BODY_BYTES: usize = 256 * 1024;

/// Most requests accepted in one `POST /tick` batch.
pub const MAX_TICK_REQUESTS: usize = 4096;

/// Whether `id` is a valid tenant id: 1–[`MAX_TENANT_ID_BYTES`] bytes
/// of `[A-Za-z0-9_-]`. The charset keeps ids safe to embed in URL
/// paths, JSON bodies, and audit-chain file names without escaping.
pub fn valid_tenant_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_TENANT_ID_BYTES
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// One immutable registry entry: a verified tree policy plus the
/// identity it is served under (content hash, optional certificate).
#[derive(Debug)]
pub struct RegisteredPolicy {
    policy: DtPolicy,
    hash: String,
    certificate_id: Option<String>,
}

impl RegisteredPolicy {
    /// The shared, immutable tree policy.
    pub fn policy(&self) -> &DtPolicy {
        &self.policy
    }

    /// Content hash (`hvac-audit::policy_hash`) keying this entry.
    pub fn hash(&self) -> &str {
        &self.hash
    }

    /// Id of the verification certificate the policy is served under,
    /// when certified.
    pub fn certificate_id(&self) -> Option<&str> {
        self.certificate_id.as_deref()
    }
}

/// Content-addressed policy registry: many tenants, few distinct
/// trees. Registration dedups by policy hash, so a thousand buildings
/// running the same verified tree share one [`RegisteredPolicy`].
#[derive(Debug, Default)]
pub struct PolicyRegistry {
    entries: BTreeMap<String, Arc<RegisteredPolicy>>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `policy`, returning the (possibly pre-existing)
    /// shared entry for its content hash. The first registration of a
    /// hash fixes the certificate id; later duplicates keep it.
    pub fn register(
        &mut self,
        policy: DtPolicy,
        certificate_id: Option<String>,
    ) -> Arc<RegisteredPolicy> {
        let hash = hvac_audit::policy_hash(&policy);
        match self.entries.entry(hash.clone()) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(v) => Arc::clone(v.insert(Arc::new(RegisteredPolicy {
                policy,
                hash,
                certificate_id,
            }))),
        }
    }

    /// Looks up an entry by content hash.
    pub fn get(&self, hash: &str) -> Option<Arc<RegisteredPolicy>> {
        self.entries.get(hash).map(Arc::clone)
    }

    /// Number of distinct policies registered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered content hashes, in sorted order.
    pub fn hashes(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Drops every entry whose hash is not in `keep` (reload hygiene:
    /// policies no tenant references anymore don't pin memory forever).
    pub fn retain_hashes(&mut self, keep: &BTreeSet<String>) {
        self.entries.retain(|hash, _| keep.contains(hash));
    }
}

/// One building's serving state: its shared policy entry, its own
/// guard ladder behind its own lock, and (optionally) its own
/// tamper-evident decision chain.
#[derive(Debug)]
pub struct Tenant {
    id: String,
    policy: Arc<RegisteredPolicy>,
    guard: Mutex<GuardedPolicy<DtPolicy>>,
    chain: Option<Arc<AuditChain>>,
}

impl Tenant {
    /// The building id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The registry entry this tenant serves under.
    pub fn policy(&self) -> &Arc<RegisteredPolicy> {
        &self.policy
    }

    /// The tenant's audit chain, when fleet auditing is on.
    pub fn chain(&self) -> Option<&Arc<AuditChain>> {
        self.chain.as_ref()
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Fallback comfort band for every tenant's degradation guard.
    pub comfort: ComfortRange,
    /// When set, each tenant records to its own hash-chained decision
    /// log at `<audit_dir>/<tenant>.jsonl`, sealed on graceful
    /// shutdown.
    pub audit_dir: Option<PathBuf>,
    /// Flush policy for the per-tenant chains.
    pub audit_flush: FlushPolicy,
    /// Flight recorder / windowed histogram / SLO tracker knobs
    /// (shared across tenants — the ops plane watches the process).
    pub ops: OpsOptions,
    /// HTTP worker-pool size (`None` = the server's CPU-derived
    /// default).
    pub workers: Option<usize>,
    /// Concurrent-connection admission cap (`None` = server default).
    pub max_inflight: Option<usize>,
    /// When set (and the fleet audits), a background thread persists
    /// every tenant's guard state to `<audit_dir>/<id>.state.json` at
    /// this cadence, and again on graceful drain. Restart rehydration
    /// reads these files, so the cadence bounds how stale a restarted
    /// guard's ladder state can be.
    pub snapshot_every: Option<Duration>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            comfort: ComfortRange::winter(),
            audit_dir: None,
            audit_flush: FlushPolicy::Always,
            ops: OpsOptions::default(),
            workers: None,
            max_inflight: None,
            snapshot_every: None,
        }
    }
}

/// One decision of a lockstep [`Fleet::tick`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickDecision {
    /// The tenant the decision belongs to.
    pub tenant: String,
    /// The chosen setpoint action.
    pub action: SetpointAction,
    /// Index of `action` in the canonical action space.
    pub action_index: usize,
    /// Guard rung the decision was taken on.
    pub state: GuardState,
}

/// One tenant a fleet manifest (re)load wants serving: the id, the
/// loaded policy, and the certificate id it is gated under (already
/// re-checked by the caller — [`Fleet::reload`] swaps state, it does
/// not re-run certificate verification).
#[derive(Debug)]
pub struct TenantSpec {
    /// Building id (validated against [`valid_tenant_id`]).
    pub id: String,
    /// The policy to serve.
    pub policy: DtPolicy,
    /// Certificate id the policy is served under, when certified.
    pub certificate_id: Option<String>,
}

/// What one [`Fleet::reload`] did, tenant by tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReloadReport {
    /// Tenants that did not exist before.
    pub added: Vec<String>,
    /// Tenants whose policy or certificate changed (fresh guard and
    /// chain; the old chain is sealed and archived).
    pub changed: Vec<String>,
    /// Tenants dropped from the manifest (chains sealed and archived).
    pub removed: Vec<String>,
    /// Tenants left untouched — same policy hash and certificate, so
    /// guard state, chain, and in-flight requests carry straight on.
    pub unchanged: Vec<String>,
}

impl ReloadReport {
    /// JSON body of a `POST /admin/reload` response.
    pub fn to_json_string(&self) -> String {
        let mut o = ObjectWriter::new();
        o.str_array_field("added", &self.added);
        o.str_array_field("changed", &self.changed);
        o.str_array_field("removed", &self.removed);
        o.u64_field("unchanged", self.unchanged.len() as u64);
        o.finish()
    }
}

/// `<audit_dir>/<id>.state.json` — the tenant's guard-state snapshot.
fn state_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{id}.state.json"))
}

/// First free `<path>.archived-<n>` sibling.
fn archive_path(path: &Path) -> PathBuf {
    let mut n = 1u32;
    loop {
        let candidate = path.with_extension(format!("jsonl.archived-{n}"));
        if !candidate.exists() {
            return candidate;
        }
        n += 1;
    }
}

/// Atomically replaces `path` with `text` (scratch sibling + rename),
/// so a crash mid-write can never leave a half-written snapshot.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let scratch = path.with_extension(format!("tmp-{}", std::process::id()));
    {
        let mut out = std::fs::File::create(&scratch)?;
        out.write_all(text.as_bytes())?;
        out.sync_all()?;
    }
    std::fs::rename(&scratch, path)
}

/// The policy hash an existing chain's genesis record binds, when the
/// first line is a readable genesis. Used to decide whether an on-disk
/// chain belongs to the tenant's current policy (resume it) or to an
/// older one (archive it and start fresh).
fn chain_genesis_hash(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text.lines().next()?;
    let record =
        ChainRecord::from_json(&parse(hvac_audit::record::split_line(line).ok()?).ok()?).ok()?;
    match record.payload {
        Payload::Genesis { policy_hash, .. } => Some(policy_hash),
        _ => None,
    }
}

/// A fleet of tenants over a shared [`PolicyRegistry`].
///
/// Tenants live in a `BTreeMap` behind one `RwLock`: request paths
/// (decide, tick, roster) share read access, and only
/// [`Fleet::reload`] takes the write half — so a manifest swap can
/// never tear an in-flight lockstep batch. Within the map, every
/// multi-guard lock acquisition happens in tenant-id order, which
/// makes concurrent lockstep batches deadlock-free by construction.
#[derive(Debug)]
pub struct Fleet {
    registry: Mutex<PolicyRegistry>,
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    /// Serializes whole reloads (diff + prepare + swap), so two
    /// concurrent `/admin/reload`s cannot interleave their phases.
    reload_lock: Mutex<()>,
    options: FleetOptions,
}

impl Fleet {
    /// An empty fleet with `options`.
    pub fn new(options: FleetOptions) -> Self {
        Self {
            registry: Mutex::new(PolicyRegistry::new()),
            tenants: RwLock::new(BTreeMap::new()),
            reload_lock: Mutex::new(()),
            options,
        }
    }

    fn chain_config(&self) -> ChainConfig {
        ChainConfig {
            flush: self.options.audit_flush,
            ..ChainConfig::default()
        }
    }

    /// Opens the audit chain for a (re)starting tenant: resumes an
    /// existing chain bound to the same policy via
    /// [`AuditChain::recover`] (crash-safe restart), archives a chain
    /// bound to a *different* policy and starts fresh, or creates the
    /// first chain. `recovered` reports whether a resume happened.
    fn open_tenant_chain(
        &self,
        dir: &Path,
        id: &str,
        registered: &RegisteredPolicy,
    ) -> Result<(AuditChain, bool), String> {
        let path = dir.join(format!("{id}.jsonl"));
        if path.exists() {
            if chain_genesis_hash(&path).as_deref() == Some(registered.hash()) {
                let (chain, report) =
                    AuditChain::recover(&path, self.chain_config()).map_err(|e| {
                        format!(
                            "cannot recover audit chain {}: {e} (move the file aside to \
                             start a fresh chain)",
                            path.display()
                        )
                    })?;
                hvac_telemetry::counter("fleet.recoveries").incr();
                warn!(
                    "tenant {id}: resumed audit chain after {} verified records \
                     ({} torn bytes truncated)",
                    report.prefix_records, report.truncated_bytes
                );
                return Ok((chain, true));
            }
            // The on-disk chain binds an older policy: it stays as
            // evidence under an archive name, and a fresh genesis
            // binds the new policy.
            let archived = archive_path(&path);
            std::fs::rename(&path, &archived).map_err(|e| {
                format!(
                    "cannot archive superseded audit chain {}: {e}",
                    path.display()
                )
            })?;
        }
        let chain = AuditChain::create(
            &path,
            registered.hash(),
            registered.certificate_id().unwrap_or(""),
            self.chain_config(),
        )
        .map_err(|e| format!("cannot create audit chain {}: {e}", path.display()))?;
        Ok((chain, false))
    }

    /// Adds a building: registers (or dedups) its policy, builds its
    /// guard with the serve-safe [`GuardConfig::new`] preset, and —
    /// when the fleet audits — opens its decision chain at
    /// `<audit_dir>/<id>.jsonl`. An existing chain bound to the same
    /// policy is *resumed* with [`AuditChain::recover`] (torn tail
    /// truncated, recovery record appended), and a guard-state
    /// snapshot left by a previous process is rehydrated — so a
    /// restarted fleet picks up exactly where the dead one stopped.
    ///
    /// # Errors
    ///
    /// Rejects invalid ids (see [`valid_tenant_id`]), duplicate ids,
    /// unrecoverable chains (interior corruption is refused, not
    /// papered over), and chain I/O failures.
    pub fn add_tenant(
        &self,
        id: &str,
        policy: DtPolicy,
        certificate_id: Option<String>,
    ) -> Result<(), String> {
        if !valid_tenant_id(id) {
            return Err(format!(
                "invalid tenant id {id:?}: want 1-{MAX_TENANT_ID_BYTES} bytes of [A-Za-z0-9_-]"
            ));
        }
        let mut tenants = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
        if tenants.contains_key(id) {
            return Err(format!("duplicate tenant id {id:?}"));
        }
        let registered = self
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .register(policy, certificate_id);
        let mut guard = GuardedPolicy::new(
            registered.policy().clone(),
            GuardConfig::new(self.options.comfort),
        );
        let chain = match &self.options.audit_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create audit dir {}: {e}", dir.display()))?;
                let (chain, _recovered) = self.open_tenant_chain(dir, id, &registered)?;
                // Rehydrate guard state persisted by a previous
                // process (periodic snapshot or graceful drain). A
                // damaged snapshot is ignored, not fatal: the guard
                // restarts on the normal rung and the chain still
                // carries the durable evidence.
                let spath = state_path(dir, id);
                if let Ok(text) = std::fs::read_to_string(&spath) {
                    match GuardSnapshot::from_json_str(&text)
                        .and_then(|snapshot| guard.restore(&snapshot))
                    {
                        Ok(()) => {
                            hvac_telemetry::counter("fleet.rehydrated").incr();
                        }
                        Err(e) => warn!(
                            "tenant {id}: ignoring unusable guard snapshot {}: {e}",
                            spath.display()
                        ),
                    }
                }
                Some(hvac_audit::register_chain(Arc::new(chain)))
            }
            None => None,
        };
        tenants.insert(
            id.to_string(),
            Arc::new(Tenant {
                id: id.to_string(),
                policy: registered,
                guard: Mutex::new(guard),
                chain,
            }),
        );
        Ok(())
    }

    /// Looks up a tenant by id.
    pub fn tenant(&self, id: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id)
            .map(Arc::clone)
    }

    /// Tenant ids in sorted order.
    pub fn tenant_ids(&self) -> Vec<String> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the fleet has no tenants.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct policies registered.
    pub fn policy_count(&self) -> usize {
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Registered policy content hashes, in sorted order.
    pub fn policy_hashes(&self) -> Vec<String> {
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .hashes()
            .map(str::to_string)
            .collect()
    }

    /// Seals every tenant's audit chain (idempotent; failures are
    /// logged, not propagated — shutdown must not stall on audit I/O).
    pub fn seal_all(&self) {
        let tenants = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
        for tenant in tenants.values() {
            if let Some(chain) = &tenant.chain {
                if let Err(e) = chain.seal() {
                    warn!("tenant {} audit chain seal failed: {e}", tenant.id);
                }
            }
        }
    }

    /// Persists every tenant's guard state to
    /// `<audit_dir>/<id>.state.json` with atomic writes (scratch +
    /// rename). Returns how many snapshots were written; failures are
    /// logged, not propagated. A no-op for a fleet without an audit
    /// dir.
    pub fn snapshot_all(&self) -> usize {
        let Some(dir) = self.options.audit_dir.clone() else {
            return 0;
        };
        let tenants: Vec<Arc<Tenant>> = {
            let map = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
            map.values().map(Arc::clone).collect()
        };
        let mut written = 0;
        for tenant in tenants {
            let snapshot = {
                let guard = tenant.guard.lock().unwrap_or_else(PoisonError::into_inner);
                guard.snapshot()
            };
            let path = state_path(&dir, &tenant.id);
            match write_atomic(&path, &snapshot.to_json_string()) {
                Ok(()) => written += 1,
                Err(e) => {
                    warn!("tenant {} guard snapshot failed: {e}", tenant.id);
                }
            }
        }
        hvac_telemetry::counter("fleet.snapshots").add(written as u64);
        written as usize
    }

    /// Re-points the fleet at a freshly loaded manifest: diffs `specs`
    /// against the serving tenants and atomically swaps the roster.
    ///
    /// * **unchanged** (same policy hash + certificate id): guard
    ///   state, chain, and decision counters carry straight on;
    /// * **added / changed**: a fresh guard and a fresh chain are
    ///   *prepared first* — any failure rolls the whole batch back
    ///   with the serving roster untouched;
    /// * **removed** (and the old chains of changed tenants): sealed
    ///   and archived to `<id>.jsonl.archived-<n>`, their snapshots
    ///   deleted.
    ///
    /// The swap itself happens under the tenants write lock, so no
    /// in-flight `/tick` lockstep batch or `/decide` is ever torn
    /// across old and new rosters. Certificate *verification* is the
    /// caller's job (the CLI re-gates before building `specs`);
    /// `reload` enforces only roster consistency.
    ///
    /// # Errors
    ///
    /// Invalid or duplicate ids, an empty manifest, or chain
    /// preparation I/O failures — in every case the serving roster is
    /// left exactly as it was.
    pub fn reload(&self, specs: Vec<TenantSpec>) -> Result<ReloadReport, String> {
        let _one_at_a_time = self
            .reload_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if specs.is_empty() {
            return Err("refusing to reload to an empty fleet".to_string());
        }
        let mut seen = BTreeSet::new();
        for spec in &specs {
            if !valid_tenant_id(&spec.id) {
                return Err(format!(
                    "invalid tenant id {:?}: want 1-{MAX_TENANT_ID_BYTES} bytes of [A-Za-z0-9_-]",
                    spec.id
                ));
            }
            if !seen.insert(spec.id.clone()) {
                return Err(format!("duplicate tenant id {:?} in manifest", spec.id));
            }
        }

        // Phase 1: diff against the serving roster (read lock only —
        // requests keep flowing). `reload_lock` guarantees the roster
        // cannot shift under us before the commit below.
        let current: BTreeMap<String, Arc<Tenant>> = self
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        struct Prepared {
            id: String,
            registered: Arc<RegisteredPolicy>,
            chain: Option<Arc<AuditChain>>,
            tmp_path: Option<PathBuf>,
        }
        let mut report = ReloadReport::default();
        let mut prepared: Vec<Prepared> = Vec::new();

        // Phase 2: prepare every new tenant off to the side. New
        // chains are created at `<id>.jsonl.new`; nothing the serving
        // roster uses is touched, so any failure here is a clean
        // rollback (delete the scratch files, report the error).
        let outcome = (|| -> Result<(), String> {
            for spec in specs {
                let hash = hvac_audit::policy_hash(&spec.policy);
                if let Some(tenant) = current.get(&spec.id) {
                    if tenant.policy.hash() == hash
                        && tenant.policy.certificate_id() == spec.certificate_id.as_deref()
                    {
                        report.unchanged.push(spec.id);
                        continue;
                    }
                    report.changed.push(spec.id.clone());
                } else {
                    report.added.push(spec.id.clone());
                }
                let registered = self
                    .registry
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .register(spec.policy, spec.certificate_id);
                let (chain, tmp_path) = match &self.options.audit_dir {
                    Some(dir) => {
                        std::fs::create_dir_all(dir).map_err(|e| {
                            format!("cannot create audit dir {}: {e}", dir.display())
                        })?;
                        let tmp = dir.join(format!("{}.jsonl.new", spec.id));
                        let chain = AuditChain::create(
                            &tmp,
                            registered.hash(),
                            registered.certificate_id().unwrap_or(""),
                            self.chain_config(),
                        )
                        .map_err(|e| format!("cannot create audit chain {}: {e}", tmp.display()))?;
                        (Some(hvac_audit::register_chain(Arc::new(chain))), Some(tmp))
                    }
                    None => (None, None),
                };
                prepared.push(Prepared {
                    id: spec.id,
                    registered,
                    chain,
                    tmp_path,
                });
            }
            Ok(())
        })();
        if let Err(e) = outcome {
            for p in &prepared {
                if let Some(tmp) = &p.tmp_path {
                    let _ = std::fs::remove_file(tmp);
                }
            }
            hvac_telemetry::counter("fleet.reload.errors").incr();
            return Err(e);
        }

        // Phase 3: commit under the write lock. Everything here is a
        // rename or an in-memory swap — no fallible preparation left —
        // so in-flight batches see the old roster or the new one,
        // never a mix. Rename failures are logged, not propagated:
        // the swap itself must not half-apply.
        let keep: BTreeSet<String> = report
            .unchanged
            .iter()
            .map(|id| current[id].policy.hash().to_string())
            .chain(prepared.iter().map(|p| p.registered.hash().to_string()))
            .collect();
        {
            let mut tenants = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
            let mut next: BTreeMap<String, Arc<Tenant>> = BTreeMap::new();
            for id in &report.unchanged {
                next.insert(id.clone(), Arc::clone(&current[id]));
            }
            for p in prepared {
                if let Some(dir) = &self.options.audit_dir {
                    let live = dir.join(format!("{}.jsonl", p.id));
                    // A changed tenant's (or stale) old chain: seal it
                    // and move it aside as evidence.
                    if let Some(old) = current.get(&p.id) {
                        if let Some(old_chain) = &old.chain {
                            if let Err(e) = old_chain.seal() {
                                warn!("tenant {} superseded chain seal failed: {e}", p.id);
                            }
                        }
                    }
                    if live.exists() {
                        if let Err(e) = std::fs::rename(&live, archive_path(&live)) {
                            warn!("tenant {} chain archive failed: {e}", p.id);
                        }
                    }
                    if let Some(tmp) = &p.tmp_path {
                        if let Err(e) = std::fs::rename(tmp, &live) {
                            warn!("tenant {} chain install failed: {e}", p.id);
                        }
                    }
                    // A fresh guard starts from clean state: a stale
                    // snapshot must not rehydrate into it on the next
                    // restart.
                    let _ = std::fs::remove_file(state_path(dir, &p.id));
                }
                let guard = GuardedPolicy::new(
                    p.registered.policy().clone(),
                    GuardConfig::new(self.options.comfort),
                );
                next.insert(
                    p.id.clone(),
                    Arc::new(Tenant {
                        id: p.id,
                        policy: p.registered,
                        guard: Mutex::new(guard),
                        chain: p.chain,
                    }),
                );
            }
            for (id, old) in &current {
                if next.contains_key(id) {
                    continue;
                }
                report.removed.push(id.clone());
                if let Some(chain) = &old.chain {
                    if let Err(e) = chain.seal() {
                        warn!("tenant {id} removed chain seal failed: {e}");
                    }
                }
                if let Some(dir) = &self.options.audit_dir {
                    let live = dir.join(format!("{id}.jsonl"));
                    if live.exists() {
                        if let Err(e) = std::fs::rename(&live, archive_path(&live)) {
                            warn!("tenant {id} removed chain archive failed: {e}");
                        }
                    }
                    let _ = std::fs::remove_file(state_path(dir, id));
                }
            }
            *tenants = next;
        }
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain_hashes(&keep);
        hvac_telemetry::counter("fleet.reloads").incr();
        Ok(report)
    }

    /// One lockstep tick: decides for every `(tenant, observation)`
    /// pair in `requests` as a single synchronized batch.
    ///
    /// The two-phase guard API makes the coalescing safe: each guard
    /// first **routes** its observation (validation + rung choice),
    /// then all routes that reached the `Policy` arm are evaluated in
    /// grouped [`DtPolicy::decide_batch_into`] calls — one per
    /// distinct registry entry — and finally each guard **commits**
    /// its action. The result is bit-identical to calling
    /// [`GuardedPolicy::decide`] per tenant, but a thousand tenants on
    /// one tree cost one batched pass instead of a thousand
    /// interleaved descents.
    ///
    /// Guards are locked in tenant-id order (and all released before
    /// any audit append), so concurrent ticks and per-tenant decides
    /// cannot deadlock.
    ///
    /// # Errors
    ///
    /// Rejects unknown tenants and duplicate tenants (lockstep means
    /// one observation per tenant per tick). Nothing is decided on
    /// error — validation happens before any lock is taken.
    pub fn tick(&self, requests: &[(String, Observation)]) -> Result<Vec<TickDecision>, String> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        // The roster read lock is held until every decision is
        // committed *and appended*: a concurrent reload (the only
        // writer) can swap the roster between batches, never inside
        // one — no torn batches, no appends racing a reload's seal.
        let tenants = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
        let mut seen = BTreeSet::new();
        let mut resolved: Vec<(usize, Arc<Tenant>, Observation)> =
            Vec::with_capacity(requests.len());
        for (i, (id, obs)) in requests.iter().enumerate() {
            let tenant = tenants
                .get(id)
                .ok_or_else(|| format!("unknown tenant {id:?}"))?;
            if !seen.insert(id.as_str()) {
                return Err(format!(
                    "duplicate tenant {id:?} in one tick — lockstep is one observation \
                     per tenant"
                ));
            }
            resolved.push((i, Arc::clone(tenant), *obs));
        }
        resolved.sort_by(|a, b| a.1.id.cmp(&b.1.id));
        let mut locked: Vec<MutexGuard<'_, GuardedPolicy<DtPolicy>>> = resolved
            .iter()
            .map(|(_, t, _)| t.guard.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();

        // Phase 1: route every observation through its tenant's guard.
        let routes: Vec<GuardRoute> = locked
            .iter_mut()
            .zip(&resolved)
            .map(|(guard, (_, _, obs))| guard.route(obs))
            .collect();

        // Coalesce the Policy-arm evaluations by registry entry.
        let mut groups: BTreeMap<&str, (Vec<usize>, Vec<Observation>)> = BTreeMap::new();
        for (slot, route) in routes.iter().enumerate() {
            if let GuardRoute::Policy { observation, .. } = route {
                let (slots, observations) =
                    groups.entry(resolved[slot].1.policy.hash()).or_default();
                slots.push(slot);
                observations.push(*observation);
            }
        }
        let mut actions: Vec<Option<SetpointAction>> = vec![None; routes.len()];
        let mut batch = Vec::new();
        for (hash, (slots, observations)) in &groups {
            let entry = self
                .registry
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(hash)
                .expect("every tenant's policy is registered");
            batch.clear();
            entry.policy().decide_batch_into(observations, &mut batch);
            for (slot, action) in slots.iter().zip(&batch) {
                actions[*slot] = Some(*action);
            }
        }

        // Phase 2: commit per tenant, draining ladder transitions for
        // the audit chains.
        let mut out: Vec<Option<TickDecision>> = vec![None; requests.len()];
        let mut appends: Vec<(Arc<Tenant>, Observation, TickDecision, Vec<GuardTransition>)> =
            Vec::new();
        for (slot, guard) in locked.iter_mut().enumerate() {
            let (original, tenant, obs) = &resolved[slot];
            let (state, action) = match routes[slot] {
                GuardRoute::Policy { state, .. } => (
                    state,
                    actions[slot].expect("policy-routed slots were batched"),
                ),
                GuardRoute::Resolved { state, action } => (state, action),
            };
            let action = guard.commit(state, action);
            let index = guard.inner().action_space().index_of(action);
            let transitions = if tenant.chain.is_some() {
                guard.take_transitions()
            } else {
                Vec::new()
            };
            let decision = TickDecision {
                tenant: tenant.id.clone(),
                action,
                action_index: index,
                state,
            };
            if tenant.chain.is_some() {
                appends.push((Arc::clone(tenant), *obs, decision.clone(), transitions));
            }
            out[*original] = Some(decision);
        }
        drop(locked);

        // Audit I/O runs off the guard locks: a slow disk must not
        // extend the lockstep critical section.
        for (tenant, obs, decision, transitions) in appends {
            let chain = tenant.chain.as_ref().expect("filtered on chain presence");
            let mut result = Ok(());
            for t in &transitions {
                result = result.and(chain.append_transition(t.from.name(), t.to.name()));
            }
            result = result.and(chain.append_decision(
                obs.to_vector(),
                decision.action.heating() as u64,
                decision.action.cooling() as u64,
                decision.action_index as u64,
                decision.state.name(),
                None,
            ));
            if let Err(e) = result {
                hvac_telemetry::counter("serve.audit.errors").incr();
                warn!("tenant {} audit chain append failed: {e}", tenant.id);
            }
        }
        hvac_telemetry::counter("fleet.tick.decisions").add(requests.len() as u64);
        Ok(out
            .into_iter()
            .map(|d| d.expect("every request was decided"))
            .collect())
    }
}

/// Shared ops-plane state for the fleet's HTTP handlers.
struct OpsCtx {
    flight: Option<Arc<FlightRecorder>>,
    window: Option<&'static hvac_telemetry::WindowedHistogram>,
    slo: Arc<SloTracker>,
    mint_seed: String,
    mint_sequence: AtomicU64,
}

impl OpsCtx {
    fn trace_id(&self, request: &Request) -> String {
        match request.request_id() {
            Some(id) => id.to_string(),
            None => mint_trace_id(
                &self.mint_seed,
                self.mint_sequence.fetch_add(1, Ordering::Relaxed),
            ),
        }
    }
}

/// Prefixes a rendered decide body with the tenant it belongs to.
/// Tenant ids carry no JSON metacharacters (see [`valid_tenant_id`]),
/// so the splice is safe.
fn tag_tenant(body: &str, tenant: &str) -> String {
    debug_assert!(body.starts_with('{') && valid_tenant_id(tenant));
    format!("{{\"tenant\":\"{tenant}\",{}", &body[1..])
}

/// One `/decide` or `/decide/{tenant}` request against the fleet.
fn handle_decide(fleet: &Fleet, tenant_id: &str, request: &Request, ctx: &OpsCtx) -> Response {
    let trace_id = ctx.trace_id(request);
    let now_ns = process_elapsed_ns();
    let mut record = FlightRecord {
        trace_id: trace_id.clone(),
        t_ns: now_ns,
        parse_ns: 0,
        decide_ns: 0,
        audit_ns: 0,
        guard_state: 0,
        heating_centi: 0,
        cooling_centi: 0,
        http_status: 422,
    };
    let response = if !valid_tenant_id(tenant_id) {
        Response::error(
            422,
            &format!("invalid tenant id {tenant_id:?}: want 1-{MAX_TENANT_ID_BYTES} bytes of [A-Za-z0-9_-]"),
        )
    } else {
        // Roster read lock held across the decide: a reload can swap
        // the roster before or after this decision, never mid-flight.
        let tenants = fleet.tenants.read().unwrap_or_else(PoisonError::into_inner);
        match tenants.get(tenant_id) {
            None => {
                record.http_status = 404;
                Response::error(404, &format!("unknown tenant {tenant_id:?}"))
            }
            Some(tenant) => match decide_json_traced(
                &tenant.guard,
                tenant.chain.as_deref(),
                &request.body,
                Some(&trace_id),
            ) {
                Ok(outcome) => {
                    if let Some(w) = ctx.window {
                        w.record_at(now_ns, outcome.total_ns);
                    }
                    ctx.slo.record_decide_at(now_ns, outcome.total_ns);
                    ctx.slo.record_guard_at(now_ns, outcome.guard_gauge);
                    record.parse_ns = outcome.parse_ns;
                    record.decide_ns = outcome.decide_ns;
                    record.audit_ns = outcome.audit_ns;
                    record.guard_state = outcome.guard_gauge;
                    record.heating_centi = outcome.heating * 100;
                    record.cooling_centi = outcome.cooling * 100;
                    record.http_status = 200;
                    Response::json(200, tag_tenant(&outcome.body, tenant_id))
                }
                Err(message) => Response::error(422, &message),
            },
        }
    };
    ctx.slo.record_response_at(now_ns, response.status);
    if let Some(ring) = &ctx.flight {
        ring.push(&record);
    }
    response.with_header(REQUEST_ID_HEADER, trace_id)
}

/// Parses a `POST /tick` body into `(tenant, observation)` pairs.
fn tick_requests_from_json(body: &str) -> Result<Vec<(String, Observation)>, String> {
    let value = parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let requests = value
        .get("requests")
        .and_then(JsonValue::as_array)
        .ok_or("body must be {\"requests\":[{\"tenant\":…,\"observation\":{…}},…]}")?;
    if requests.len() > MAX_TICK_REQUESTS {
        return Err(format!(
            "tick carries {} requests; the cap is {MAX_TICK_REQUESTS}",
            requests.len()
        ));
    }
    let mut out = Vec::with_capacity(requests.len());
    let mut problems: Vec<String> = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        match (
            r.get("tenant").and_then(JsonValue::as_str),
            r.get("observation"),
        ) {
            (Some(tenant), Some(observation)) => match observation_from_value(observation) {
                Ok(obs) => out.push((tenant.to_string(), obs)),
                Err(e) => problems.push(format!("request {i}: {e}")),
            },
            (None, _) => problems.push(format!("request {i}: missing string field \"tenant\"")),
            (_, None) => {
                problems.push(format!("request {i}: missing object field \"observation\""));
            }
        }
    }
    if problems.is_empty() {
        Ok(out)
    } else {
        Err(problems.join("; "))
    }
}

/// Renders a `POST /tick` response body.
fn tick_json(decisions: &[TickDecision], latency_ns: u64) -> String {
    let mut out = String::with_capacity(64 + decisions.len() * 160);
    out.push_str(&format!(
        "{{\"count\":{},\"latency_ns\":{latency_ns},\"decisions\":[",
        decisions.len()
    ));
    for (i, d) in decisions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut o = ObjectWriter::new();
        o.str_field("tenant", &d.tenant);
        o.u64_field("heating_setpoint", d.action.heating() as u64);
        o.u64_field("cooling_setpoint", d.action.cooling() as u64);
        o.u64_field("action_index", d.action_index as u64);
        o.str_field("action", &d.action.to_string());
        o.str_field("guard_state", d.state.name());
        out.push_str(&o.finish());
    }
    out.push_str("]}");
    out
}

/// Renders the fleet's `GET /tenants` roster.
fn tenants_json(fleet: &Fleet) -> String {
    let tenants = fleet.tenants.read().unwrap_or_else(PoisonError::into_inner);
    let mut out = String::with_capacity(64 + tenants.len() * 220);
    out.push_str(&format!(
        "{{\"count\":{},\"policies\":{},\"tenants\":[",
        tenants.len(),
        fleet.policy_count()
    ));
    for (i, tenant) in tenants.values().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (state, decisions) = {
            let guard = tenant.guard.lock().unwrap_or_else(PoisonError::into_inner);
            (guard.state(), guard.decisions())
        };
        let mut o = ObjectWriter::new();
        o.str_field("id", &tenant.id);
        o.str_field("policy_hash", tenant.policy.hash());
        o.bool_field("certified", tenant.policy.certificate_id().is_some());
        if let Some(id) = tenant.policy.certificate_id() {
            o.str_field("certificate_id", id);
        }
        o.bool_field("audited", tenant.chain.is_some());
        o.str_field("guard_state", state.name());
        o.u64_field("decisions", decisions);
        out.push_str(&o.finish());
    }
    out.push_str("]}");
    out
}

/// Renders the fleet's `GET /version` body.
fn fleet_version_json(fleet: &Fleet) -> String {
    let mut o = ObjectWriter::new();
    o.str_field("crate_version", env!("CARGO_PKG_VERSION"));
    o.str_field(
        "build",
        option_env!("VERI_HVAC_BUILD_INFO").unwrap_or(concat!(
            "v",
            env!("CARGO_PKG_VERSION"),
            "-src"
        )),
    );
    o.bool_field("fleet", true);
    o.u64_field("tenants", fleet.len() as u64);
    o.u64_field("policies", fleet.policy_count() as u64);
    o.finish()
}

/// How a running fleet re-reads its manifest on `POST /admin/reload`:
/// returns the tenants that should now be serving (certificates
/// already re-gated), or a message explaining why the manifest is
/// unusable. Lives in the CLI layer, where the manifest path and the
/// `--require-certificate` policy are known.
pub type ReloadSource = dyn Fn() -> Result<Vec<TenantSpec>, String> + Send + Sync;

/// [`serve_fleet_with_reload`] without a reload source: the manifest
/// the process started with is the manifest it serves.
///
/// # Errors
///
/// Rejects an empty fleet ([`std::io::ErrorKind::InvalidInput`]) and
/// propagates socket binding errors.
pub fn serve_fleet(fleet: Fleet, addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
    serve_fleet_with_reload(fleet, addr, None)
}

/// Binds the fleet serving endpoint (see the module docs for the
/// routes). Graceful shutdown drains the worker pool first, then
/// snapshots every guard and seals every tenant's audit chain, so no
/// in-flight decision can land after its chain's seal record. When
/// `reload` is supplied, `POST /admin/reload` re-reads the manifest
/// through it and atomically swaps the roster ([`Fleet::reload`]).
///
/// # Errors
///
/// Rejects an empty fleet ([`std::io::ErrorKind::InvalidInput`]) and
/// propagates socket binding errors.
pub fn serve_fleet_with_reload(
    fleet: Fleet,
    addr: impl ToSocketAddrs,
    reload: Option<Arc<ReloadSource>>,
) -> std::io::Result<HttpServer> {
    if fleet.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a fleet needs at least one tenant",
        ));
    }
    let ops = fleet.options.ops;
    let workers = fleet.options.workers;
    let max_inflight = fleet.options.max_inflight;
    let fleet = Arc::new(fleet);

    let flight =
        (ops.flight_capacity > 0).then(|| Arc::new(FlightRecorder::new(ops.flight_capacity)));
    let window = ops.windowed.then(|| {
        windowed_histogram(
            "serve.decide.ns",
            LATENCY_BOUNDS_NS,
            SERVE_WINDOW_NS,
            SERVE_WINDOW_EPOCHS,
        )
    });
    let slo = Arc::new(SloTracker::new(ops.slo));
    let ctx = Arc::new(OpsCtx {
        flight: flight.clone(),
        window,
        slo: Arc::clone(&slo),
        // Fold every registered hash into the mint seed, so identical
        // fleet replays mint identical trace ids.
        mint_seed: fleet.policy_hashes().join(","),
        mint_sequence: AtomicU64::new(0),
    });

    // Periodic guard-state snapshots: the thread holds only a weak
    // handle, so it dies with the fleet instead of pinning it.
    if let Some(every) = fleet.options.snapshot_every {
        let weak = Arc::downgrade(&fleet);
        let spawned = std::thread::Builder::new()
            .name("fleet-snapshot".to_string())
            .spawn(move || loop {
                std::thread::sleep(every);
                match weak.upgrade() {
                    Some(fleet) => {
                        fleet.snapshot_all();
                    }
                    None => break,
                }
            });
        if let Err(e) = spawned {
            warn!("fleet snapshot thread failed to start: {e}");
        }
    }

    let mut builder = HttpServer::builder()
        .max_body_bytes(MAX_FLEET_BODY_BYTES)
        .request_timeout(DECIDE_TIMEOUT);
    // Unless overridden, scale the pool so every tenant's keep-alive
    // connection can hold a parked worker (plus slack for ops
    // queries, capped): a pool smaller than the steady connection
    // count forces turn rotation, which trades idle-connection
    // latency for fairness.
    let workers = workers.unwrap_or_else(|| (fleet.len() + 2).clamp(4, 32));
    builder = builder.workers(workers);
    if let Some(n) = max_inflight {
        builder = builder.max_inflight(n);
    }

    let decide_fleet = Arc::clone(&fleet);
    let decide_ctx = Arc::clone(&ctx);
    let path_fleet = Arc::clone(&fleet);
    let path_ctx = Arc::clone(&ctx);
    let tick_fleet = Arc::clone(&fleet);
    let tick_slo = Arc::clone(&slo);
    let roster_fleet = Arc::clone(&fleet);
    let version_fleet = Arc::clone(&fleet);
    let seal_fleet = Arc::clone(&fleet);

    builder = builder
        // Tenant named in the body; a single-tenant fleet may omit it.
        .route("POST", "/decide", move |req| {
            let named = parse(&req.body)
                .ok()
                .and_then(|v| v.get("tenant").map(|t| t.as_str().map(str::to_string)));
            let tenant_id = match named {
                Some(Some(id)) => id,
                // "tenant" present but not a string.
                Some(None) => {
                    return Response::error(422, "field \"tenant\" must be a string");
                }
                None if decide_fleet.len() == 1 => decide_fleet.tenant_ids().remove(0),
                None => {
                    return Response::error(
                        422,
                        "multi-tenant fleet: name the building (body field \"tenant\" \
                         or POST /decide/{tenant})",
                    );
                }
            };
            handle_decide(&decide_fleet, &tenant_id, req, &decide_ctx)
        })
        // Tenant named in the path.
        .route_prefix("POST", "/decide/", move |req| {
            let tenant_id = req.path.strip_prefix("/decide/").unwrap_or("");
            handle_decide(&path_fleet, tenant_id, req, &path_ctx)
        })
        .route("POST", "/tick", move |req| {
            let started = Instant::now();
            let now_ns = process_elapsed_ns();
            let response = match tick_requests_from_json(&req.body)
                .and_then(|requests| tick_fleet.tick(&requests))
            {
                Ok(decisions) => {
                    let latency_ns =
                        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    hvac_telemetry::histogram("fleet.tick.ns", LATENCY_BOUNDS_NS)
                        .record(latency_ns);
                    Response::json(200, tick_json(&decisions, latency_ns))
                }
                Err(message) => Response::error(422, &message),
            };
            tick_slo.record_response_at(now_ns, response.status);
            response
        })
        .route("GET", "/tenants", move |_req| {
            Response::json(200, tenants_json(&roster_fleet))
        })
        .route("GET", "/version", move |_req| {
            Response::json(200, fleet_version_json(&version_fleet))
        })
        .route("GET", "/debug/slo", move |_req| {
            Response::json(200, slo.render_json_at(process_elapsed_ns()))
        });
    if let Some(ring) = flight {
        builder = builder.route("GET", "/debug/flight", move |_req| {
            Response::json(200, flight_json(&ring))
        });
    }
    if let Some(source) = reload {
        let reload_fleet = Arc::clone(&fleet);
        builder = builder.route("POST", "/admin/reload", move |_req| {
            let started = Instant::now();
            match source().and_then(|specs| reload_fleet.reload(specs)) {
                Ok(report) => {
                    let latency_ns =
                        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    hvac_telemetry::histogram("fleet.reload.ns", LATENCY_BOUNDS_NS)
                        .record(latency_ns);
                    Response::json(200, report.to_json_string())
                }
                // 409: the serving roster is intact; the *requested*
                // state conflicts with what can be applied.
                Err(message) => Response::error(409, &message),
            }
        });
    }
    // The server joins its worker pool before running hooks, so every
    // admitted decision has been appended before any guard snapshot
    // or chain seal.
    builder = builder.on_shutdown(move || {
        seal_fleet.snapshot_all();
        seal_fleet.seal_all();
    });
    builder.bind(addr)
}
