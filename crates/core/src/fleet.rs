//! Fleet serving — one process controlling many buildings.
//!
//! The paper's deployment argument (Table 3) is that a verified tree
//! policy is cheap enough to serve *everywhere*: a root-to-leaf
//! descent costs ~100 ns, so a single controller process should
//! comfortably decide for thousands of buildings. [`serve_fleet`]
//! grows the single-policy endpoint of [`crate::serve`] into exactly
//! that:
//!
//! * a content-addressed [`PolicyRegistry`] — tenants referencing the
//!   same tree (by `hvac-audit::policy_hash`) share one immutable
//!   [`RegisteredPolicy`] entry instead of N copies;
//! * per-tenant [`GuardedPolicy`] state behind **sharded locks** — one
//!   mutex per building, so tenant A's decide never queues behind
//!   tenant B's (the old serve path funnelled every request through a
//!   single global mutex);
//! * per-tenant tamper-evident audit chains (`<audit_dir>/<id>.jsonl`,
//!   each with its own genesis binding the tenant's policy hash and
//!   certificate), all sealed on graceful shutdown — after the worker
//!   pool has drained, so no in-flight decision can race a seal;
//! * a **lockstep tick path** (`POST /tick`): one synchronized batch
//!   of observations, one per tenant, whose tree evaluations coalesce
//!   into [`DtPolicy::decide_batch_into`] calls grouped by registry
//!   entry — the fleet-scale extension of the planner's
//!   `predict_batch_into`/`LockstepWorkspace` idiom.
//!
//! # Routes
//!
//! | route | purpose |
//! |---|---|
//! | `POST /decide/{tenant}` | one decision for one building |
//! | `POST /decide` | same, tenant named by a `"tenant"` body field (optional for a single-tenant fleet) |
//! | `POST /tick` | lockstep batch: `{"requests":[{"tenant":…,"observation":{…}},…]}` |
//! | `GET /tenants` | fleet roster with per-tenant guard rung and decision counts |
//! | `GET /version` | build info, tenant and distinct-policy counts |
//! | `GET /debug/flight`, `/debug/slo`, `/metrics`, `/summary.json`, `/healthz` | the ops plane of [`crate::serve`] |
//!
//! Per-tenant decisions are **bit-identical** to the single-policy
//! path: `/decide/{tenant}` reuses [`decide_json_traced`] over the
//! tenant's own guard, and the tick path's two-phase
//! [`GuardedPolicy::route`] / [`GuardedPolicy::commit`] split is
//! bit-identical to `decide` by construction.

use crate::serve::{
    decide_json_traced, flight_json, mint_trace_id, observation_from_value, OpsOptions,
    DECIDE_TIMEOUT, SERVE_WINDOW_EPOCHS, SERVE_WINDOW_NS,
};
use hvac_audit::{AuditChain, ChainConfig, FlushPolicy};
use hvac_control::{DtPolicy, GuardConfig, GuardRoute, GuardState, GuardTransition, GuardedPolicy};
use hvac_env::{ComfortRange, Observation, SetpointAction};
use hvac_telemetry::http::{HttpServer, Request, Response, REQUEST_ID_HEADER};
use hvac_telemetry::json::{parse, JsonValue, ObjectWriter};
use hvac_telemetry::ring::{FlightRecord, FlightRecorder};
use hvac_telemetry::slo::SloTracker;
use hvac_telemetry::{process_elapsed_ns, warn, windowed_histogram, LATENCY_BOUNDS_NS};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::net::ToSocketAddrs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Longest accepted tenant id, in bytes.
pub const MAX_TENANT_ID_BYTES: usize = 64;

/// Largest accepted request body on a fleet endpoint. `POST /tick`
/// carries one observation per tenant, so the cap is sized for a full
/// fleet's batch rather than the single-observation cap of the
/// single-policy path.
pub const MAX_FLEET_BODY_BYTES: usize = 256 * 1024;

/// Most requests accepted in one `POST /tick` batch.
pub const MAX_TICK_REQUESTS: usize = 4096;

/// Whether `id` is a valid tenant id: 1–[`MAX_TENANT_ID_BYTES`] bytes
/// of `[A-Za-z0-9_-]`. The charset keeps ids safe to embed in URL
/// paths, JSON bodies, and audit-chain file names without escaping.
pub fn valid_tenant_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_TENANT_ID_BYTES
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// One immutable registry entry: a verified tree policy plus the
/// identity it is served under (content hash, optional certificate).
#[derive(Debug)]
pub struct RegisteredPolicy {
    policy: DtPolicy,
    hash: String,
    certificate_id: Option<String>,
}

impl RegisteredPolicy {
    /// The shared, immutable tree policy.
    pub fn policy(&self) -> &DtPolicy {
        &self.policy
    }

    /// Content hash (`hvac-audit::policy_hash`) keying this entry.
    pub fn hash(&self) -> &str {
        &self.hash
    }

    /// Id of the verification certificate the policy is served under,
    /// when certified.
    pub fn certificate_id(&self) -> Option<&str> {
        self.certificate_id.as_deref()
    }
}

/// Content-addressed policy registry: many tenants, few distinct
/// trees. Registration dedups by policy hash, so a thousand buildings
/// running the same verified tree share one [`RegisteredPolicy`].
#[derive(Debug, Default)]
pub struct PolicyRegistry {
    entries: BTreeMap<String, Arc<RegisteredPolicy>>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `policy`, returning the (possibly pre-existing)
    /// shared entry for its content hash. The first registration of a
    /// hash fixes the certificate id; later duplicates keep it.
    pub fn register(
        &mut self,
        policy: DtPolicy,
        certificate_id: Option<String>,
    ) -> Arc<RegisteredPolicy> {
        let hash = hvac_audit::policy_hash(&policy);
        match self.entries.entry(hash.clone()) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(v) => Arc::clone(v.insert(Arc::new(RegisteredPolicy {
                policy,
                hash,
                certificate_id,
            }))),
        }
    }

    /// Looks up an entry by content hash.
    pub fn get(&self, hash: &str) -> Option<Arc<RegisteredPolicy>> {
        self.entries.get(hash).map(Arc::clone)
    }

    /// Number of distinct policies registered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered content hashes, in sorted order.
    pub fn hashes(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

/// One building's serving state: its shared policy entry, its own
/// guard ladder behind its own lock, and (optionally) its own
/// tamper-evident decision chain.
#[derive(Debug)]
pub struct Tenant {
    id: String,
    policy: Arc<RegisteredPolicy>,
    guard: Mutex<GuardedPolicy<DtPolicy>>,
    chain: Option<Arc<AuditChain>>,
}

impl Tenant {
    /// The building id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The registry entry this tenant serves under.
    pub fn policy(&self) -> &Arc<RegisteredPolicy> {
        &self.policy
    }

    /// The tenant's audit chain, when fleet auditing is on.
    pub fn chain(&self) -> Option<&Arc<AuditChain>> {
        self.chain.as_ref()
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Fallback comfort band for every tenant's degradation guard.
    pub comfort: ComfortRange,
    /// When set, each tenant records to its own hash-chained decision
    /// log at `<audit_dir>/<tenant>.jsonl`, sealed on graceful
    /// shutdown.
    pub audit_dir: Option<PathBuf>,
    /// Flush policy for the per-tenant chains.
    pub audit_flush: FlushPolicy,
    /// Flight recorder / windowed histogram / SLO tracker knobs
    /// (shared across tenants — the ops plane watches the process).
    pub ops: OpsOptions,
    /// HTTP worker-pool size (`None` = the server's CPU-derived
    /// default).
    pub workers: Option<usize>,
    /// Concurrent-connection admission cap (`None` = server default).
    pub max_inflight: Option<usize>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            comfort: ComfortRange::winter(),
            audit_dir: None,
            audit_flush: FlushPolicy::Always,
            ops: OpsOptions::default(),
            workers: None,
            max_inflight: None,
        }
    }
}

/// One decision of a lockstep [`Fleet::tick`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickDecision {
    /// The tenant the decision belongs to.
    pub tenant: String,
    /// The chosen setpoint action.
    pub action: SetpointAction,
    /// Index of `action` in the canonical action space.
    pub action_index: usize,
    /// Guard rung the decision was taken on.
    pub state: GuardState,
}

/// A fleet of tenants over a shared [`PolicyRegistry`].
///
/// Tenants live in a `BTreeMap`, so every iteration — and in
/// particular every multi-guard lock acquisition on the tick path —
/// sees them in one global id order, which makes concurrent lockstep
/// batches deadlock-free by construction.
#[derive(Debug)]
pub struct Fleet {
    registry: PolicyRegistry,
    tenants: BTreeMap<String, Arc<Tenant>>,
    options: FleetOptions,
}

impl Fleet {
    /// An empty fleet with `options`.
    pub fn new(options: FleetOptions) -> Self {
        Self {
            registry: PolicyRegistry::new(),
            tenants: BTreeMap::new(),
            options,
        }
    }

    /// Adds a building: registers (or dedups) its policy, builds its
    /// guard with the serve-safe [`GuardConfig::new`] preset, and —
    /// when the fleet audits — creates its decision chain at
    /// `<audit_dir>/<id>.jsonl` with a genesis binding the policy hash
    /// and certificate id.
    ///
    /// # Errors
    ///
    /// Rejects invalid ids (see [`valid_tenant_id`]), duplicate ids,
    /// and chain-creation I/O failures.
    pub fn add_tenant(
        &mut self,
        id: &str,
        policy: DtPolicy,
        certificate_id: Option<String>,
    ) -> Result<(), String> {
        if !valid_tenant_id(id) {
            return Err(format!(
                "invalid tenant id {id:?}: want 1-{MAX_TENANT_ID_BYTES} bytes of [A-Za-z0-9_-]"
            ));
        }
        if self.tenants.contains_key(id) {
            return Err(format!("duplicate tenant id {id:?}"));
        }
        let registered = self.registry.register(policy, certificate_id);
        let guard = Mutex::new(GuardedPolicy::new(
            registered.policy().clone(),
            GuardConfig::new(self.options.comfort),
        ));
        let chain = match &self.options.audit_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create audit dir {}: {e}", dir.display()))?;
                let path = dir.join(format!("{id}.jsonl"));
                let chain = AuditChain::create(
                    &path,
                    registered.hash(),
                    registered.certificate_id().unwrap_or(""),
                    ChainConfig {
                        flush: self.options.audit_flush,
                        ..ChainConfig::default()
                    },
                )
                .map_err(|e| format!("cannot create audit chain {}: {e}", path.display()))?;
                Some(hvac_audit::register_chain(Arc::new(chain)))
            }
            None => None,
        };
        self.tenants.insert(
            id.to_string(),
            Arc::new(Tenant {
                id: id.to_string(),
                policy: registered,
                guard,
                chain,
            }),
        );
        Ok(())
    }

    /// Looks up a tenant by id.
    pub fn tenant(&self, id: &str) -> Option<&Arc<Tenant>> {
        self.tenants.get(id)
    }

    /// Tenant ids in sorted order.
    pub fn tenant_ids(&self) -> Vec<&str> {
        self.tenants.keys().map(String::as_str).collect()
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the fleet has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The shared policy registry.
    pub fn registry(&self) -> &PolicyRegistry {
        &self.registry
    }

    /// Seals every tenant's audit chain (idempotent; failures are
    /// logged, not propagated — shutdown must not stall on audit I/O).
    pub fn seal_all(&self) {
        for tenant in self.tenants.values() {
            if let Some(chain) = &tenant.chain {
                if let Err(e) = chain.seal() {
                    warn!("tenant {} audit chain seal failed: {e}", tenant.id);
                }
            }
        }
    }

    /// One lockstep tick: decides for every `(tenant, observation)`
    /// pair in `requests` as a single synchronized batch.
    ///
    /// The two-phase guard API makes the coalescing safe: each guard
    /// first **routes** its observation (validation + rung choice),
    /// then all routes that reached the `Policy` arm are evaluated in
    /// grouped [`DtPolicy::decide_batch_into`] calls — one per
    /// distinct registry entry — and finally each guard **commits**
    /// its action. The result is bit-identical to calling
    /// [`GuardedPolicy::decide`] per tenant, but a thousand tenants on
    /// one tree cost one batched pass instead of a thousand
    /// interleaved descents.
    ///
    /// Guards are locked in tenant-id order (and all released before
    /// any audit append), so concurrent ticks and per-tenant decides
    /// cannot deadlock.
    ///
    /// # Errors
    ///
    /// Rejects unknown tenants and duplicate tenants (lockstep means
    /// one observation per tenant per tick). Nothing is decided on
    /// error — validation happens before any lock is taken.
    pub fn tick(&self, requests: &[(String, Observation)]) -> Result<Vec<TickDecision>, String> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let mut seen = BTreeSet::new();
        let mut resolved: Vec<(usize, Arc<Tenant>, Observation)> =
            Vec::with_capacity(requests.len());
        for (i, (id, obs)) in requests.iter().enumerate() {
            let tenant = self
                .tenants
                .get(id)
                .ok_or_else(|| format!("unknown tenant {id:?}"))?;
            if !seen.insert(id.as_str()) {
                return Err(format!(
                    "duplicate tenant {id:?} in one tick — lockstep is one observation \
                     per tenant"
                ));
            }
            resolved.push((i, Arc::clone(tenant), *obs));
        }
        resolved.sort_by(|a, b| a.1.id.cmp(&b.1.id));
        let mut locked: Vec<MutexGuard<'_, GuardedPolicy<DtPolicy>>> = resolved
            .iter()
            .map(|(_, t, _)| t.guard.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();

        // Phase 1: route every observation through its tenant's guard.
        let routes: Vec<GuardRoute> = locked
            .iter_mut()
            .zip(&resolved)
            .map(|(guard, (_, _, obs))| guard.route(obs))
            .collect();

        // Coalesce the Policy-arm evaluations by registry entry.
        let mut groups: BTreeMap<&str, (Vec<usize>, Vec<Observation>)> = BTreeMap::new();
        for (slot, route) in routes.iter().enumerate() {
            if let GuardRoute::Policy { observation, .. } = route {
                let (slots, observations) =
                    groups.entry(resolved[slot].1.policy.hash()).or_default();
                slots.push(slot);
                observations.push(*observation);
            }
        }
        let mut actions: Vec<Option<SetpointAction>> = vec![None; routes.len()];
        let mut batch = Vec::new();
        for (hash, (slots, observations)) in &groups {
            let entry = self
                .registry
                .get(hash)
                .expect("every tenant's policy is registered");
            batch.clear();
            entry.policy().decide_batch_into(observations, &mut batch);
            for (slot, action) in slots.iter().zip(&batch) {
                actions[*slot] = Some(*action);
            }
        }

        // Phase 2: commit per tenant, draining ladder transitions for
        // the audit chains.
        let mut out: Vec<Option<TickDecision>> = vec![None; requests.len()];
        let mut appends: Vec<(Arc<Tenant>, Observation, TickDecision, Vec<GuardTransition>)> =
            Vec::new();
        for (slot, guard) in locked.iter_mut().enumerate() {
            let (original, tenant, obs) = &resolved[slot];
            let (state, action) = match routes[slot] {
                GuardRoute::Policy { state, .. } => (
                    state,
                    actions[slot].expect("policy-routed slots were batched"),
                ),
                GuardRoute::Resolved { state, action } => (state, action),
            };
            let action = guard.commit(state, action);
            let index = guard.inner().action_space().index_of(action);
            let transitions = if tenant.chain.is_some() {
                guard.take_transitions()
            } else {
                Vec::new()
            };
            let decision = TickDecision {
                tenant: tenant.id.clone(),
                action,
                action_index: index,
                state,
            };
            if tenant.chain.is_some() {
                appends.push((Arc::clone(tenant), *obs, decision.clone(), transitions));
            }
            out[*original] = Some(decision);
        }
        drop(locked);

        // Audit I/O runs off the guard locks: a slow disk must not
        // extend the lockstep critical section.
        for (tenant, obs, decision, transitions) in appends {
            let chain = tenant.chain.as_ref().expect("filtered on chain presence");
            let mut result = Ok(());
            for t in &transitions {
                result = result.and(chain.append_transition(t.from.name(), t.to.name()));
            }
            result = result.and(chain.append_decision(
                obs.to_vector(),
                decision.action.heating() as u64,
                decision.action.cooling() as u64,
                decision.action_index as u64,
                decision.state.name(),
                None,
            ));
            if let Err(e) = result {
                hvac_telemetry::counter("serve.audit.errors").incr();
                warn!("tenant {} audit chain append failed: {e}", tenant.id);
            }
        }
        hvac_telemetry::counter("fleet.tick.decisions").add(requests.len() as u64);
        Ok(out
            .into_iter()
            .map(|d| d.expect("every request was decided"))
            .collect())
    }
}

/// Shared ops-plane state for the fleet's HTTP handlers.
struct OpsCtx {
    flight: Option<Arc<FlightRecorder>>,
    window: Option<&'static hvac_telemetry::WindowedHistogram>,
    slo: Arc<SloTracker>,
    mint_seed: String,
    mint_sequence: AtomicU64,
}

impl OpsCtx {
    fn trace_id(&self, request: &Request) -> String {
        match request.request_id() {
            Some(id) => id.to_string(),
            None => mint_trace_id(
                &self.mint_seed,
                self.mint_sequence.fetch_add(1, Ordering::Relaxed),
            ),
        }
    }
}

/// Prefixes a rendered decide body with the tenant it belongs to.
/// Tenant ids carry no JSON metacharacters (see [`valid_tenant_id`]),
/// so the splice is safe.
fn tag_tenant(body: &str, tenant: &str) -> String {
    debug_assert!(body.starts_with('{') && valid_tenant_id(tenant));
    format!("{{\"tenant\":\"{tenant}\",{}", &body[1..])
}

/// One `/decide` or `/decide/{tenant}` request against the fleet.
fn handle_decide(fleet: &Fleet, tenant_id: &str, request: &Request, ctx: &OpsCtx) -> Response {
    let trace_id = ctx.trace_id(request);
    let now_ns = process_elapsed_ns();
    let mut record = FlightRecord {
        trace_id: trace_id.clone(),
        t_ns: now_ns,
        parse_ns: 0,
        decide_ns: 0,
        audit_ns: 0,
        guard_state: 0,
        heating_centi: 0,
        cooling_centi: 0,
        http_status: 422,
    };
    let response = if !valid_tenant_id(tenant_id) {
        Response::error(
            422,
            &format!("invalid tenant id {tenant_id:?}: want 1-{MAX_TENANT_ID_BYTES} bytes of [A-Za-z0-9_-]"),
        )
    } else {
        match fleet.tenant(tenant_id) {
            None => {
                record.http_status = 404;
                Response::error(404, &format!("unknown tenant {tenant_id:?}"))
            }
            Some(tenant) => match decide_json_traced(
                &tenant.guard,
                tenant.chain.as_deref(),
                &request.body,
                Some(&trace_id),
            ) {
                Ok(outcome) => {
                    if let Some(w) = ctx.window {
                        w.record_at(now_ns, outcome.total_ns);
                    }
                    ctx.slo.record_decide_at(now_ns, outcome.total_ns);
                    ctx.slo.record_guard_at(now_ns, outcome.guard_gauge);
                    record.parse_ns = outcome.parse_ns;
                    record.decide_ns = outcome.decide_ns;
                    record.audit_ns = outcome.audit_ns;
                    record.guard_state = outcome.guard_gauge;
                    record.heating_centi = outcome.heating * 100;
                    record.cooling_centi = outcome.cooling * 100;
                    record.http_status = 200;
                    Response::json(200, tag_tenant(&outcome.body, tenant_id))
                }
                Err(message) => Response::error(422, &message),
            },
        }
    };
    ctx.slo.record_response_at(now_ns, response.status);
    if let Some(ring) = &ctx.flight {
        ring.push(&record);
    }
    response.with_header(REQUEST_ID_HEADER, trace_id)
}

/// Parses a `POST /tick` body into `(tenant, observation)` pairs.
fn tick_requests_from_json(body: &str) -> Result<Vec<(String, Observation)>, String> {
    let value = parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let requests = value
        .get("requests")
        .and_then(JsonValue::as_array)
        .ok_or("body must be {\"requests\":[{\"tenant\":…,\"observation\":{…}},…]}")?;
    if requests.len() > MAX_TICK_REQUESTS {
        return Err(format!(
            "tick carries {} requests; the cap is {MAX_TICK_REQUESTS}",
            requests.len()
        ));
    }
    let mut out = Vec::with_capacity(requests.len());
    let mut problems: Vec<String> = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        match (
            r.get("tenant").and_then(JsonValue::as_str),
            r.get("observation"),
        ) {
            (Some(tenant), Some(observation)) => match observation_from_value(observation) {
                Ok(obs) => out.push((tenant.to_string(), obs)),
                Err(e) => problems.push(format!("request {i}: {e}")),
            },
            (None, _) => problems.push(format!("request {i}: missing string field \"tenant\"")),
            (_, None) => {
                problems.push(format!("request {i}: missing object field \"observation\""));
            }
        }
    }
    if problems.is_empty() {
        Ok(out)
    } else {
        Err(problems.join("; "))
    }
}

/// Renders a `POST /tick` response body.
fn tick_json(decisions: &[TickDecision], latency_ns: u64) -> String {
    let mut out = String::with_capacity(64 + decisions.len() * 160);
    out.push_str(&format!(
        "{{\"count\":{},\"latency_ns\":{latency_ns},\"decisions\":[",
        decisions.len()
    ));
    for (i, d) in decisions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut o = ObjectWriter::new();
        o.str_field("tenant", &d.tenant);
        o.u64_field("heating_setpoint", d.action.heating() as u64);
        o.u64_field("cooling_setpoint", d.action.cooling() as u64);
        o.u64_field("action_index", d.action_index as u64);
        o.str_field("action", &d.action.to_string());
        o.str_field("guard_state", d.state.name());
        out.push_str(&o.finish());
    }
    out.push_str("]}");
    out
}

/// Renders the fleet's `GET /tenants` roster.
fn tenants_json(fleet: &Fleet) -> String {
    let mut out = String::with_capacity(64 + fleet.len() * 220);
    out.push_str(&format!(
        "{{\"count\":{},\"policies\":{},\"tenants\":[",
        fleet.len(),
        fleet.registry().len()
    ));
    for (i, tenant) in fleet.tenants.values().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (state, decisions) = {
            let guard = tenant.guard.lock().unwrap_or_else(PoisonError::into_inner);
            (guard.state(), guard.decisions())
        };
        let mut o = ObjectWriter::new();
        o.str_field("id", &tenant.id);
        o.str_field("policy_hash", tenant.policy.hash());
        o.bool_field("certified", tenant.policy.certificate_id().is_some());
        if let Some(id) = tenant.policy.certificate_id() {
            o.str_field("certificate_id", id);
        }
        o.bool_field("audited", tenant.chain.is_some());
        o.str_field("guard_state", state.name());
        o.u64_field("decisions", decisions);
        out.push_str(&o.finish());
    }
    out.push_str("]}");
    out
}

/// Renders the fleet's `GET /version` body.
fn fleet_version_json(fleet: &Fleet) -> String {
    let mut o = ObjectWriter::new();
    o.str_field("crate_version", env!("CARGO_PKG_VERSION"));
    o.str_field(
        "build",
        option_env!("VERI_HVAC_BUILD_INFO").unwrap_or(concat!(
            "v",
            env!("CARGO_PKG_VERSION"),
            "-src"
        )),
    );
    o.bool_field("fleet", true);
    o.u64_field("tenants", fleet.len() as u64);
    o.u64_field("policies", fleet.registry().len() as u64);
    o.finish()
}

/// Binds the fleet serving endpoint (see the module docs for the
/// routes). Graceful shutdown drains the worker pool first and then
/// seals every tenant's audit chain, so no in-flight decision can
/// land after its chain's seal record.
///
/// # Errors
///
/// Rejects an empty fleet ([`std::io::ErrorKind::InvalidInput`]) and
/// propagates socket binding errors.
pub fn serve_fleet(fleet: Fleet, addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
    if fleet.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a fleet needs at least one tenant",
        ));
    }
    let ops = fleet.options.ops;
    let workers = fleet.options.workers;
    let max_inflight = fleet.options.max_inflight;
    let fleet = Arc::new(fleet);

    let flight =
        (ops.flight_capacity > 0).then(|| Arc::new(FlightRecorder::new(ops.flight_capacity)));
    let window = ops.windowed.then(|| {
        windowed_histogram(
            "serve.decide.ns",
            LATENCY_BOUNDS_NS,
            SERVE_WINDOW_NS,
            SERVE_WINDOW_EPOCHS,
        )
    });
    let slo = Arc::new(SloTracker::new(ops.slo));
    let ctx = Arc::new(OpsCtx {
        flight: flight.clone(),
        window,
        slo: Arc::clone(&slo),
        // Fold every registered hash into the mint seed, so identical
        // fleet replays mint identical trace ids.
        mint_seed: fleet.registry.hashes().collect::<Vec<_>>().join(","),
        mint_sequence: AtomicU64::new(0),
    });

    let mut builder = HttpServer::builder()
        .max_body_bytes(MAX_FLEET_BODY_BYTES)
        .request_timeout(DECIDE_TIMEOUT);
    // Unless overridden, scale the pool so every tenant's keep-alive
    // connection can hold a parked worker (plus slack for ops
    // queries, capped): a pool smaller than the steady connection
    // count forces turn rotation, which trades idle-connection
    // latency for fairness.
    let workers = workers.unwrap_or_else(|| (fleet.len() + 2).clamp(4, 32));
    builder = builder.workers(workers);
    if let Some(n) = max_inflight {
        builder = builder.max_inflight(n);
    }

    let decide_fleet = Arc::clone(&fleet);
    let decide_ctx = Arc::clone(&ctx);
    let path_fleet = Arc::clone(&fleet);
    let path_ctx = Arc::clone(&ctx);
    let tick_fleet = Arc::clone(&fleet);
    let tick_slo = Arc::clone(&slo);
    let roster_fleet = Arc::clone(&fleet);
    let version_fleet = Arc::clone(&fleet);
    let seal_fleet = Arc::clone(&fleet);

    builder = builder
        // Tenant named in the body; a single-tenant fleet may omit it.
        .route("POST", "/decide", move |req| {
            let named = parse(&req.body)
                .ok()
                .and_then(|v| v.get("tenant").map(|t| t.as_str().map(str::to_string)));
            let tenant_id = match named {
                Some(Some(id)) => id,
                // "tenant" present but not a string.
                Some(None) => {
                    return Response::error(422, "field \"tenant\" must be a string");
                }
                None if decide_fleet.len() == 1 => decide_fleet.tenant_ids()[0].to_string(),
                None => {
                    return Response::error(
                        422,
                        "multi-tenant fleet: name the building (body field \"tenant\" \
                         or POST /decide/{tenant})",
                    );
                }
            };
            handle_decide(&decide_fleet, &tenant_id, req, &decide_ctx)
        })
        // Tenant named in the path.
        .route_prefix("POST", "/decide/", move |req| {
            let tenant_id = req.path.strip_prefix("/decide/").unwrap_or("");
            handle_decide(&path_fleet, tenant_id, req, &path_ctx)
        })
        .route("POST", "/tick", move |req| {
            let started = Instant::now();
            let now_ns = process_elapsed_ns();
            let response = match tick_requests_from_json(&req.body)
                .and_then(|requests| tick_fleet.tick(&requests))
            {
                Ok(decisions) => {
                    let latency_ns =
                        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    hvac_telemetry::histogram("fleet.tick.ns", LATENCY_BOUNDS_NS)
                        .record(latency_ns);
                    Response::json(200, tick_json(&decisions, latency_ns))
                }
                Err(message) => Response::error(422, &message),
            };
            tick_slo.record_response_at(now_ns, response.status);
            response
        })
        .route("GET", "/tenants", move |_req| {
            Response::json(200, tenants_json(&roster_fleet))
        })
        .route("GET", "/version", move |_req| {
            Response::json(200, fleet_version_json(&version_fleet))
        })
        .route("GET", "/debug/slo", move |_req| {
            Response::json(200, slo.render_json_at(process_elapsed_ns()))
        });
    if let Some(ring) = flight {
        builder = builder.route("GET", "/debug/flight", move |_req| {
            Response::json(200, flight_json(&ring))
        });
    }
    // The server joins its worker pool before running hooks, so every
    // admitted decision has been appended before any chain seals.
    builder = builder.on_shutdown(move || seal_fleet.seal_all());
    builder.bind(addr)
}
