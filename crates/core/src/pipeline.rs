//! The end-to-end extraction-and-verification pipeline (paper Fig. 2).
//!
//! ```text
//! historical data ──► dynamics model ──► RS controller
//!        │                                   │
//!        └─► Eq.5 augmenter ──► decision dataset ──► CART
//!                                                     │
//!                              Algorithm 1 + crit.#1 ◄┘
//!                                                     │
//!                                        deployable DT policy
//! ```

use crate::artifacts::{ArtifactError, ArtifactStore, PipelineKeys, StageKey};
use hvac_control::{DtPolicy, PlanningConfig, RandomShootingConfig, RandomShootingController};
use hvac_dtree::TreeConfig;
use hvac_dynamics::{
    collect_historical_dataset, DynamicsError, DynamicsModel, ModelConfig, TransitionDataset,
};
use hvac_env::EnvConfig;
use hvac_extract::{
    fit_decision_tree, generate_decision_dataset, DecisionDataset, ExtractError, ExtractionConfig,
    NoiseAugmenter,
};
use hvac_telemetry::{RunScope, StageTiming, TelemetrySummary};
use hvac_verify::{verify_and_correct, VerificationConfig, VerificationReport, VerifyError};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Error type for pipeline execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// Data collection or model training failed.
    Dynamics(DynamicsError),
    /// Extraction failed.
    Extract(ExtractError),
    /// Verification failed.
    Verify(VerifyError),
    /// Controller construction failed.
    Control(hvac_control::ControlError),
    /// The artifact store failed (I/O or a corrupt cached artifact).
    Artifact(ArtifactError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Dynamics(e) => write!(f, "dynamics stage failed: {e}"),
            PipelineError::Extract(e) => write!(f, "extraction stage failed: {e}"),
            PipelineError::Verify(e) => write!(f, "verification stage failed: {e}"),
            PipelineError::Control(e) => write!(f, "controller stage failed: {e}"),
            PipelineError::Artifact(e) => write!(f, "artifact store failed: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Dynamics(e) => Some(e),
            PipelineError::Extract(e) => Some(e),
            PipelineError::Verify(e) => Some(e),
            PipelineError::Control(e) => Some(e),
            PipelineError::Artifact(e) => Some(e),
        }
    }
}

impl From<ArtifactError> for PipelineError {
    fn from(e: ArtifactError) -> Self {
        PipelineError::Artifact(e)
    }
}

impl From<DynamicsError> for PipelineError {
    fn from(e: DynamicsError) -> Self {
        PipelineError::Dynamics(e)
    }
}

impl From<ExtractError> for PipelineError {
    fn from(e: ExtractError) -> Self {
        PipelineError::Extract(e)
    }
}

impl From<VerifyError> for PipelineError {
    fn from(e: VerifyError) -> Self {
        PipelineError::Verify(e)
    }
}

impl From<hvac_control::ControlError> for PipelineError {
    fn from(e: hvac_control::ControlError) -> Self {
        PipelineError::Control(e)
    }
}

/// Full configuration of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Environment (city, building, schedule, comfort, episode length).
    pub env: EnvConfig,
    /// Episodes of historical data to collect.
    pub historical_episodes: usize,
    /// Dynamics-model settings.
    pub model: ModelConfig,
    /// Random-shooting settings for the teacher controller.
    pub rs: RandomShootingConfig,
    /// Eq. 5 noise level (paper: 0.01 within the validated [0.01, 0.09]).
    pub noise_level: f64,
    /// Decision-dataset generation settings.
    pub extraction: ExtractionConfig,
    /// CART stopping criteria (paper: unbounded depth).
    pub tree: TreeConfig,
    /// Verification settings (criterion #1 samples, threshold `l`).
    pub verification: VerificationConfig,
    /// Master seed for data collection.
    pub seed: u64,
}

impl PipelineConfig {
    /// The paper's configuration for Pittsburgh (January, ASHRAE 4A).
    pub fn paper_pittsburgh() -> Self {
        Self::paper_with_env(EnvConfig::pittsburgh())
    }

    /// The paper's configuration for Tucson (January, ASHRAE 2B).
    pub fn paper_tucson() -> Self {
        Self::paper_with_env(EnvConfig::tucson())
    }

    /// The paper's hyperparameters over a custom environment. The
    /// planner's and verifier's comfort ranges are taken from the
    /// environment (so summer configurations verify against the summer
    /// range), and the planner gets the environment's occupancy
    /// schedule as its forecast.
    pub fn paper_with_env(env: EnvConfig) -> Self {
        let mut rs = RandomShootingConfig::paper();
        rs.planning = PlanningConfig::paper_with_schedule(env.schedule, env.controlled_zone);
        rs.planning.comfort = env.comfort;
        let verification = VerificationConfig {
            comfort: env.comfort,
            ..VerificationConfig::paper()
        };
        Self {
            env,
            historical_episodes: 3,
            model: ModelConfig::default(),
            rs,
            noise_level: 0.01,
            extraction: ExtractionConfig::paper(),
            tree: TreeConfig::default(),
            verification,
            seed: 2024,
        }
    }

    /// A mid-scale configuration: week-long data collection, a real
    /// model, and a few hundred decision points — the same settings the
    /// benchmark harness uses at its reduced scale. Produces a policy
    /// with the paper's qualitative behavior in a few seconds of
    /// release-mode compute.
    pub fn reduced(env: EnvConfig) -> Self {
        use hvac_nn::TrainConfig;
        let mut planning = PlanningConfig::paper_with_schedule(env.schedule, env.controlled_zone);
        planning.comfort = env.comfort;
        let verification = VerificationConfig {
            samples: 1000,
            comfort: env.comfort,
            ..VerificationConfig::paper()
        };
        Self {
            env: env.with_episode_steps(7 * 96),
            historical_episodes: 2,
            model: ModelConfig {
                hidden: vec![64],
                train: TrainConfig {
                    epochs: 60,
                    ..TrainConfig::paper()
                },
                ..ModelConfig::default()
            },
            rs: RandomShootingConfig {
                samples: 200,
                planning,
                ..RandomShootingConfig::paper()
            },
            noise_level: 0.01,
            extraction: ExtractionConfig {
                n_points: 400,
                mc_runs: 5,
                ..ExtractionConfig::paper()
            },
            tree: TreeConfig::default(),
            verification,
            seed: 2024,
        }
    }

    /// A heavily reduced configuration for tests and smoke runs: short
    /// episodes, small model, few extraction points. Finishes in
    /// seconds rather than minutes while exercising every stage.
    pub fn quick(env: EnvConfig) -> Self {
        use hvac_nn::TrainConfig;
        let mut planning = PlanningConfig::paper_with_schedule(env.schedule, env.controlled_zone);
        planning.comfort = env.comfort;
        let verification = VerificationConfig {
            samples: 300,
            comfort: env.comfort,
            ..VerificationConfig::paper()
        };
        Self {
            env: env.with_episode_steps(96 * 2),
            historical_episodes: 2,
            model: ModelConfig {
                hidden: vec![32],
                train: TrainConfig {
                    epochs: 30,
                    ..TrainConfig::paper()
                },
                ..ModelConfig::default()
            },
            rs: RandomShootingConfig {
                samples: 100,
                planning,
                ..RandomShootingConfig::paper()
            },
            noise_level: 0.05,
            extraction: ExtractionConfig {
                n_points: 40,
                mc_runs: 3,
                ..ExtractionConfig::paper()
            },
            tree: TreeConfig::default(),
            verification,
            seed: 7,
        }
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineArtifacts {
    /// The collected historical dataset `T`.
    pub historical: TransitionDataset,
    /// The trained black-box dynamics model `f̂`.
    pub model: DynamicsModel,
    /// The Eq. 5 augmented-input sampler.
    pub augmenter: NoiseAugmenter,
    /// The decision dataset `Π`.
    pub decision_data: DecisionDataset,
    /// The verified (and possibly corrected) decision-tree policy.
    pub policy: DtPolicy,
    /// The verification report (Table 2 numbers).
    pub report: VerificationReport,
    /// Telemetry rollup for this run: stage wall times plus the counter
    /// deltas attributed to this run's [`RunScope`] — exact even when
    /// several pipelines run concurrently in one process. Cached runs
    /// additionally carry `cache.hits` / `cache.misses`.
    pub telemetry: TelemetrySummary,
}

/// Runs the paper's full procedure and returns every intermediate
/// artifact.
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the failing stage.
pub fn run_pipeline(config: &PipelineConfig) -> Result<PipelineArtifacts, PipelineError> {
    run_inner(config, None)
}

/// Like [`run_pipeline`], but every stage first probes `store` and
/// skips recomputation on hit, and every computed stage output is
/// persisted. Hits and misses are counted in the run's
/// `cache.hits` / `cache.misses` telemetry counters.
///
/// A warm re-run of the same config loads bit-identical artifacts:
/// every serializer round-trips exactly, and the augmenter is refit
/// deterministically from its stored rows.
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the failing stage;
/// [`PipelineError::Artifact`] covers store I/O and corrupt cached
/// artifacts.
pub fn run_pipeline_cached(
    config: &PipelineConfig,
    store: &ArtifactStore,
) -> Result<PipelineArtifacts, PipelineError> {
    run_inner(config, Some(store))
}

fn run_inner(
    config: &PipelineConfig,
    store: Option<&ArtifactStore>,
) -> Result<PipelineArtifacts, PipelineError> {
    // Honor HVAC_TELEMETRY on any entry point that reaches the
    // pipeline; a no-op unless the variable is set, and idempotent.
    hvac_telemetry::init_from_env();
    // All counters/histograms this run touches — including on extraction
    // worker threads, which re-enter the scope — are attributed to this
    // scope, keeping the summary exact under concurrent runs.
    let run_scope = RunScope::new();
    let _scope_guard = run_scope.handle().enter();
    let started = Instant::now();
    let pipeline_span = hvac_telemetry::Span::enter("pipeline");
    let mut stages: Vec<StageTiming> = Vec::with_capacity(4);
    let mut stage = |name: &str, wall| {
        stages.push(StageTiming {
            name: name.to_string(),
            wall,
        });
    };
    let keys = store.map(|_| PipelineKeys::derive(config));
    let hits = hvac_telemetry::counter("cache.hits");
    let misses = hvac_telemetry::counter("cache.misses");
    // Probes the store for one stage: `load` on hit, `None` on miss,
    // moving the cache counters either way. Uncached runs never probe.
    let cached = |key: fn(&PipelineKeys) -> &StageKey| match (store, &keys) {
        (Some(store), Some(keys)) if store.contains(key(keys)) => {
            hits.incr();
            Some((store, key(keys)))
        }
        (Some(_), _) => {
            misses.incr();
            None
        }
        _ => None,
    };

    // 1. Historical data (BMS logs), dynamics model, Eq. 5 augmenter.
    let span = hvac_telemetry::Span::enter("dynamics");
    let historical = match cached(|k| &k.historical) {
        Some((store, key)) => store.load_historical(key)?,
        None => {
            let data =
                collect_historical_dataset(&config.env, config.historical_episodes, config.seed)?;
            if let (Some(store), Some(keys)) = (store, &keys) {
                store.save_historical(keys, config, &data)?;
            }
            data
        }
    };
    let model = match cached(|k| &k.model) {
        Some((store, key)) => store.load_model(key)?,
        None => {
            let model = DynamicsModel::train(&historical, &config.model)?;
            if let (Some(store), Some(keys)) = (store, &keys) {
                store.save_model(keys, config, &model)?;
            }
            model
        }
    };
    let augmenter = match cached(|k| &k.augmenter) {
        Some((store, key)) => store.load_augmenter(key)?,
        None => {
            let augmenter = NoiseAugmenter::fit(historical.policy_inputs(), config.noise_level)?;
            if let (Some(store), Some(keys)) = (store, &keys) {
                store.save_augmenter(keys, config, &augmenter)?;
            }
            augmenter
        }
    };
    stage("dynamics", span.close());
    hvac_telemetry::info!(
        "dynamics model trained: {} transitions, validation RMSE {:.3}",
        historical.len(),
        model.validation_rmse()
    );

    // 2. Monte-Carlo mode distillation of the RS controller.
    let span = hvac_telemetry::Span::enter("extraction");
    let decision_data = match cached(|k| &k.decision) {
        Some((store, key)) => store.load_decision(key)?,
        None => {
            let mut teacher = RandomShootingController::new(model.clone(), config.rs, config.seed)?;
            let data = generate_decision_dataset(&mut teacher, &augmenter, &config.extraction)?;
            if let (Some(store), Some(keys)) = (store, &keys) {
                store.save_decision(keys, config, &data)?;
            }
            data
        }
    };
    stage("extraction", span.close());
    hvac_telemetry::info!(
        "decision dataset distilled: {} points x {} MC runs",
        decision_data.len(),
        config.extraction.mc_runs
    );

    // 3. CART fitting.
    let span = hvac_telemetry::Span::enter("tree_fit");
    let mut policy = match cached(|k| &k.tree) {
        Some((store, key)) => store.load_tree(key)?,
        None => {
            let policy = fit_decision_tree(&decision_data, &config.tree)?;
            if let (Some(store), Some(keys)) = (store, &keys) {
                store.save_tree(keys, config, &policy)?;
            }
            policy
        }
    };
    stage("tree_fit", span.close());
    hvac_telemetry::info!(
        "decision tree fitted: {} nodes, depth {}",
        policy.tree().node_count(),
        policy.tree().depth()
    );

    // 4. Offline verification + in-place correction.
    let span = hvac_telemetry::Span::enter("verification");
    let report = match cached(|k| &k.verified) {
        Some((store, key)) => {
            let (verified_policy, report) = store.load_verified(key)?;
            policy = verified_policy;
            report
        }
        None => {
            let report = verify_and_correct(&mut policy, &model, &augmenter, &config.verification)?;
            if let (Some(store), Some(keys)) = (store, &keys) {
                store.save_verified(keys, config, &policy, &report)?;
            }
            report
        }
    };
    stage("verification", span.close());
    hvac_telemetry::info!(
        "verification: {} leaves, {} corrected (crit. #2), {} corrected (crit. #3)",
        report.leaf_nodes,
        report.corrected_criterion_2,
        report.corrected_criterion_3
    );

    drop(pipeline_span);
    let telemetry = TelemetrySummary::from_scope(&run_scope, started.elapsed(), stages);
    hvac_telemetry::flush();

    Ok(PipelineArtifacts {
        historical,
        model,
        augmenter,
        decision_data,
        policy,
        report,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::{run_episode, EnvConfig, HvacEnv, Policy};
    use hvac_verify::verify_paths;

    fn artifacts() -> PipelineArtifacts {
        run_pipeline(&PipelineConfig::quick(EnvConfig::pittsburgh()))
            .expect("quick pipeline: collect → train → extract → verify")
    }

    #[test]
    fn pipeline_produces_consistent_artifacts() {
        let a = artifacts();
        assert_eq!(a.historical.len(), 2 * 96 * 2);
        assert_eq!(a.decision_data.len(), 40);
        assert!(a.policy.tree().node_count() >= 1);
        assert_eq!(a.report.leaf_nodes, a.policy.tree().leaf_count());
        assert!(a.model.validation_rmse().is_finite());
    }

    #[test]
    fn corrected_policy_passes_formal_criteria() {
        let a = artifacts();
        let recheck = verify_paths(&a.policy, &VerificationConfig::paper().comfort)
            .expect("re-verification of the corrected tree");
        assert!(recheck.passed());
    }

    #[test]
    fn extracted_policy_is_deployable() {
        let a = artifacts();
        let mut policy = a.policy;
        let mut env = HvacEnv::new(EnvConfig::pittsburgh().with_episode_steps(96))
            .expect("one-day Pittsburgh deployment env");
        let record = run_episode(&mut env, &mut policy).expect("deployment episode");
        assert_eq!(record.steps.len(), 96);
        assert!(policy.is_deterministic());
    }

    #[test]
    fn pipeline_is_reproducible() {
        let config = PipelineConfig::quick(EnvConfig::pittsburgh());
        let a = run_pipeline(&config).expect("first pipeline run");
        let b = run_pipeline(&config).expect("second pipeline run");
        assert_eq!(a.policy.tree(), b.policy.tree());
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn error_display_names_stage() {
        let e = PipelineError::Extract(ExtractError::NoHistoricalData);
        assert!(e.to_string().contains("extraction stage"));
        assert!(e.source().is_some());
    }
}
