//! `veri-hvac` — command-line front end for the extraction/verification
//! pipeline.
//!
//! ```text
//! veri-hvac extract  --city pittsburgh --out-dir artifacts [--paper] [--noise 0.05] [--cache-dir cache]
//! veri-hvac verify   --artifacts artifacts [--samples N] [--conservative]
//! veri-hvac sweep    --cities pittsburgh,tucson --seeds 0..8 --threads 4 --cache-dir cache --out sweep
//! veri-hvac inspect  --policy artifacts/policy.dtree [--dot]
//! veri-hvac simulate --policy artifacts/policy.dtree --city pittsburgh --days 7
//! veri-hvac serve    --policy artifacts/policy.dtree --addr 127.0.0.1:9464
//!                    [--audit-log chain.jsonl] [--require-certificate]
//! veri-hvac serve    --fleet fleet.json [--audit-dir chains] [--workers 8]
//! veri-hvac audit    --chain chain.jsonl --policy artifacts/policy.dtree
//! ```
//!
//! `extract` runs the paper's full procedure (Fig. 2) and writes the
//! verified decision-tree policy, the trained dynamics model, the Eq. 5
//! noise augmenter, and a provenance manifest as human-auditable text
//! artifacts. `verify` re-runs offline verification on saved artifacts
//! using the *persisted* augmenter — the exact input distribution the
//! policy was extracted against, not a refit at some other noise level.
//! `sweep` fans (city × seed) pipeline runs across a bounded worker
//! pool, sharing one content-addressed artifact cache, and writes
//! per-run JSON reports plus an aggregate Table-2-style summary.
//! `inspect` prints the policy's rules (or Graphviz DOT). `simulate`
//! deploys a saved policy in the simulated building and reports
//! energy/comfort metrics. `serve` loads a policy and answers
//! `POST /decide` (plus `/metrics`, `/healthz`, `/summary.json`) until
//! interrupted. Any long-running subcommand additionally exposes the
//! observability routes when `--metrics-addr ADDR` is given.

use hvac_telemetry::json::{self, JsonValue, ObjectWriter};
use hvac_telemetry::{error, info, JsonlSink, Level, StderrSink};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use veri_hvac::audit as hvac_audit;
use veri_hvac::control::DtPolicy;
use veri_hvac::dynamics::DynamicsModel;
use veri_hvac::env::space::feature;
use veri_hvac::env::{run_episode, EnvConfig, HvacEnv};
use veri_hvac::extract::NoiseAugmenter;
use veri_hvac::pipeline::{run_pipeline, run_pipeline_cached, PipelineArtifacts, PipelineConfig};
use veri_hvac::verify::{verify_and_correct, Certificate, VerificationConfig, VerificationReport};
use veri_hvac::{ArtifactStore, TenantSpec};

const USAGE: &str = "\
veri-hvac — interpretable & verifiable decision-tree HVAC control

USAGE:
  veri-hvac extract  --city <pittsburgh|tucson|new-york> [--out-dir DIR]
                     [--paper] [--noise LEVEL] [--cache-dir DIR]
  veri-hvac verify   --artifacts DIR [--samples N] [--conservative]
                     (or --policy FILE --model FILE; the augmenter is
                     loaded from the manifest next to the policy)
  veri-hvac sweep    [--cities A,B,...] [--seeds N..M | N,M,...]
                     [--threads N] [--cache-dir DIR] [--out DIR]
                     [--paper] [--noise LEVEL] [--conservative]
  veri-hvac inspect  --policy FILE [--dot]
  veri-hvac simulate --policy FILE --city <city> [--days N]
  veri-hvac serve    --policy FILE [--addr HOST:PORT] [--audit-log FILE]
                     [--audit-flush always|every-n=K|interval-ms=T]
                     [--flight-capacity N] [--certificate FILE]
                     [--require-certificate] [--cache-dir DIR]
                     [--duration SECS]
  veri-hvac serve    --fleet MANIFEST [--addr HOST:PORT] [--audit-dir DIR]
                     [--audit-flush POLICY] [--workers N] [--max-inflight N]
                     [--flight-capacity N] [--require-certificate]
                     [--snapshot-every SECS] [--duration SECS]
  veri-hvac audit    --chain FILE [--policy FILE] [--certificate FILE]
                     [--compiled FILE] [--cache-dir DIR] [--replay N]
                     [--allow-unsealed] [--json] [--recover]

GLOBAL FLAGS:
  --verbose          stderr progress at debug level (span timings included)
  --quiet            suppress stderr progress (warnings and errors only)
  --telemetry FILE   append machine-readable JSONL telemetry events to FILE
                     (equivalent to HVAC_TELEMETRY=FILE)
  --metrics-addr A   expose GET /metrics, /healthz, /summary.json at A
                     (e.g. 127.0.0.1:9464) for the duration of the run

`extract --cache-dir DIR` keeps a content-addressed store of every
pipeline stage; re-runs with the same config skip straight to the
cached artifacts. `verify --conservative` gates the verdict on the
Wilson 95% lower bound of criterion #1 instead of the point estimate.
`sweep` defaults to --cities pittsburgh,tucson --seeds 0..4
--threads 4 --out sweep; its per-run and aggregate JSON reports omit
wall-clock times, so output is byte-identical for any --threads value.

`serve` answers POST /decide with the policy's setpoint decision for a
JSON observation body and always exposes the observability routes on
its own --addr (default 127.0.0.1:9464; port 0 picks one). Decisions
pass through a degradation guard: invalid readings are held or routed
to a rule-based fallback (the response's guard_state field names the
rung), oversized bodies get 413, stalled requests 408, and parse
failures a structured 422 JSON error.

`serve --fleet MANIFEST` turns the endpoint into a multi-tenant fleet
controller: the manifest is {\"tenants\":[{\"id\":…,\"policy\":PATH,
\"certificate\":PATH?},…]} (relative paths resolve against the manifest's
directory). Tenants sharing a tree share one registry entry; each
building gets its own degradation guard behind its own lock, so one
tenant's faulted sensors never degrade another. Routes grow to
POST /decide/{tenant} (or a \"tenant\" body field), the lockstep batch
POST /tick ({\"requests\":[{\"tenant\":…,\"observation\":{…}},…]}), and
GET /tenants. `--audit-dir DIR` records every tenant to its own
hash-chained DIR/<tenant>.jsonl, all sealed after the worker pool
drains on graceful shutdown; audit each with `veri-hvac audit`.
`--workers N` sizes the HTTP worker pool, `--max-inflight N` caps
concurrent connections (beyond it, new connections are shed with a 503
carrying `Retry-After: 1`). A fleet restart over the same --audit-dir
recovers each tenant's chain (torn tails truncated, a hash-covered
recovery record appended) and rehydrates guard state from the
DIR/<tenant>.state.json snapshots written every `--snapshot-every SECS`
(default 30, 0 disables the periodic writer; graceful drain always
snapshots). POST /admin/reload re-reads the manifest and atomically
swaps added/changed/removed tenants without dropping in-flight batches;
replaced tenants' chains are sealed and archived.

`verify` writes certificate.json beside the policy: the verification
verdict bound (SHA-256) to the exact policy bytes, inputs, and artifact
hashes. It also compiles the verified tree into a flat serving kernel,
proves the kernel equivalent over the verification box grid, writes it
as policy.ctree, and commits its hash into the certificate
(compiled_hash). `serve` picks the certificate up automatically (or via
--certificate FILE / the --cache-dir store), reports it on
GET /version, warns when serving uncertified, and refuses with
--require-certificate. A wrong or edited certificate is always refused.
`serve --audit-log FILE` appends every decision and guard transition to
a tamper-evident hash chain, sealed on graceful shutdown.
`--audit-flush` trades append latency for durability: `always`
(default) fsync-buffers every record, `every-n=K` flushes every K
appends, `interval-ms=T` flushes once T ms have passed; the seal always
flushes regardless. Serve also runs a live ops plane: every request
carries a trace id (client `X-Request-Id` or a minted `srv-…` id)
echoed on the response, stamped into the audit chain, and captured in a
lock-free flight recorder (`GET /debug/flight`, last N decisions,
`--flight-capacity N`, default 256, 0 disables). Windowed (60 s)
latency quantiles ride along in /metrics and /summary.json, and
`GET /debug/slo` reports fast/slow burn rates for the latency,
availability, and guard-integrity objectives. `audit`
re-verifies such a chain offline: every hash, link, and checkpoint
digest is recomputed, the certificate binding is checked, and sampled
decisions are re-executed through the policy (--replay N, default 64)
for bit-identical actions. `--compiled FILE` additionally checks the
flat serving kernel: the artifact must hash to the certificate's
compiled_hash and (with --policy) re-prove exhaustively equivalent to
the verified tree, so a swapped or tampered policy.ctree fails loudly. `--allow-unsealed` tolerates chains from
signal-killed serves; `--json` prints the machine-readable report
(its failure_class field separates a crash's torn_tail from a
tampered bad_hash). A torn-tail failure names the exact byte offset —
`audit --chain FILE --recover` truncates exactly those bytes, appends
a hash-covered recovery record, seals, and re-audits; interior
corruption is refused, never repaired. Exit is nonzero if any audit
check fails.

Machine-readable results go to stdout; progress and diagnostics to stderr.
Artifacts are plain text (see hvac_dtree::serialize / hvac_dynamics::serialize).
";

/// Format tag of the manifest `extract` writes beside its artifacts.
const EXTRACT_MANIFEST_FORMAT: &str = "extract_manifest v1";

/// z-score for the 95% Wilson interval used by `--conservative`.
const WILSON_Z: f64 = 1.96;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = if iter.peek().is_some_and(|v| !v.starts_with("--")) {
                    iter.next()
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Self { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

/// Installs the stderr sink (level from `--verbose`/`--quiet`) and, when
/// `--telemetry FILE` is given, tees events into a JSONL file. The
/// stderr sink goes in first so failures opening the JSONL file are
/// still reported.
fn init_telemetry(args: &Args) -> Result<(), String> {
    let level = if args.has("verbose") {
        Level::Debug
    } else if args.has("quiet") {
        Level::Warn
    } else {
        Level::Info
    };
    let stderr: Arc<dyn hvac_telemetry::Sink> = Arc::new(StderrSink::new(level));
    hvac_telemetry::set_sink(Arc::clone(&stderr));
    if let Some(path) = args.flag("telemetry") {
        let jsonl = JsonlSink::create(path)
            .map_err(|e| format!("cannot open telemetry file {path}: {e}"))?;
        hvac_telemetry::set_sink(Arc::new(hvac_telemetry::MultiSink::new(vec![
            stderr,
            Arc::new(jsonl),
        ])));
    }
    // HVAC_TELEMETRY=<path> still works; it tees into whatever is set.
    hvac_telemetry::init_from_env();
    // A buffered JSONL sink must survive panics with its tail intact.
    hvac_telemetry::install_panic_flush_hook();
    Ok(())
}

/// Starts the opt-in observability server when `--metrics-addr` is
/// given; the returned guard keeps it alive for the whole run.
fn init_metrics_server(args: &Args) -> Result<Option<hvac_telemetry::http::HttpServer>, String> {
    let Some(addr) = args.flag("metrics-addr") else {
        return Ok(None);
    };
    let server = hvac_telemetry::http::HttpServer::bind(addr)
        .map_err(|e| format!("cannot bind metrics server on {addr}: {e}"))?;
    Ok(Some(server))
}

fn env_config_for(city: &str) -> Result<EnvConfig, String> {
    match city {
        "pittsburgh" => Ok(EnvConfig::pittsburgh()),
        "tucson" => Ok(EnvConfig::tucson()),
        "new-york" | "new_york" => Ok(EnvConfig::new_york()),
        other => Err(format!(
            "unknown city {other:?} (try pittsburgh, tucson, new-york)"
        )),
    }
}

/// Builds the pipeline configuration shared by `extract` and `sweep`:
/// `--paper` picks the full-scale profile, `--noise` overrides the
/// Eq. 5 noise level.
fn pipeline_config(args: &Args, env: EnvConfig) -> Result<PipelineConfig, String> {
    let mut config = if args.has("paper") {
        PipelineConfig::paper_with_env(env)
    } else {
        PipelineConfig::quick(env)
    };
    if let Some(noise) = args.flag("noise") {
        config.noise_level = noise
            .parse()
            .map_err(|_| format!("--noise must be a number, got {noise:?}"))?;
    }
    Ok(config)
}

/// Opens the content-addressed artifact store when `--cache-dir` is
/// given.
fn open_store(args: &Args) -> Result<Option<ArtifactStore>, String> {
    args.flag("cache-dir")
        .map(|dir| ArtifactStore::open(dir).map_err(|e| e.to_string()))
        .transpose()
}

/// Runs the pipeline, through the store when one is open.
fn run_with_store(
    config: &PipelineConfig,
    store: Option<&ArtifactStore>,
) -> Result<PipelineArtifacts, String> {
    match store {
        Some(store) => run_pipeline_cached(config, store),
        None => run_pipeline(config),
    }
    .map_err(|e| e.to_string())
}

fn cmd_extract(args: &Args) -> Result<(), String> {
    let city = args.flag("city").ok_or("extract requires --city")?;
    let out_dir = args.flag("out-dir").unwrap_or("artifacts");
    let env = env_config_for(city)?;
    let config = pipeline_config(args, env)?;
    let store = open_store(args)?;

    info!("running extraction pipeline for {city}…");
    let artifacts = run_with_store(&config, store.as_ref())?;
    info!("{}", artifacts.telemetry);
    if store.is_some() {
        info!(
            "cache: {} hits, {} misses",
            artifacts.telemetry.counter("cache.hits"),
            artifacts.telemetry.counter("cache.misses")
        );
    }
    println!("{}", artifacts.report);
    println!(
        "dynamics model: {} transitions, validation RMSE {:.3} °C",
        artifacts.historical.len(),
        artifacts.model.validation_rmse()
    );

    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let writes = [
        ("policy.dtree", artifacts.policy.to_compact_string()),
        ("model.dynmodel", artifacts.model.to_compact_string()),
        ("augmenter.aug", artifacts.augmenter.to_compact_string()),
        ("manifest.json", extract_manifest(city, &config)),
    ];
    for (name, content) in &writes {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    println!("wrote policy.dtree, model.dynmodel, augmenter.aug and manifest.json to {out_dir}/");
    Ok(())
}

/// The provenance manifest `extract` leaves beside its artifacts; the
/// `augmenter` / `noise_level` fields are what `verify` reads back so
/// re-verification uses the extraction-time input distribution.
fn extract_manifest(city: &str, config: &PipelineConfig) -> String {
    let mut o = ObjectWriter::new();
    o.str_field("format", EXTRACT_MANIFEST_FORMAT);
    o.str_field("city", city);
    o.u64_field("seed", config.seed);
    o.f64_field("noise_level", config.noise_level);
    o.str_field("crate_version", env!("CARGO_PKG_VERSION"));
    o.str_field("policy", "policy.dtree");
    o.str_field("model", "model.dynmodel");
    o.str_field("augmenter", "augmenter.aug");
    o.finish()
}

/// Loads the persisted augmenter for an artifact directory, with a
/// clear error for directories written before augmenters were
/// persisted.
fn load_persisted_augmenter(dir: &Path) -> Result<NoiseAugmenter, String> {
    let legacy = |missing: &str| {
        format!(
            "no {missing} in {dir} — this artifact directory predates persisted \
             augmenters; re-run `veri-hvac extract` to regenerate it (verification \
             must use the extraction-time input distribution, not a refit)",
            dir = dir.display()
        )
    };
    let manifest_path = dir.join("manifest.json");
    let manifest_text =
        std::fs::read_to_string(&manifest_path).map_err(|_| legacy("manifest.json"))?;
    let manifest = json::parse(&manifest_text)
        .map_err(|e| format!("malformed manifest {}: {e}", manifest_path.display()))?;
    if manifest.get("format").and_then(JsonValue::as_str) != Some(EXTRACT_MANIFEST_FORMAT) {
        return Err(legacy("extract manifest"));
    }
    let noise_level = manifest
        .get("noise_level")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("manifest {} lacks noise_level", manifest_path.display()))?;
    let augmenter_file = manifest
        .get("augmenter")
        .and_then(JsonValue::as_str)
        .unwrap_or("augmenter.aug");
    let augmenter_path = dir.join(augmenter_file);
    let augmenter_text =
        std::fs::read_to_string(&augmenter_path).map_err(|_| legacy(augmenter_file))?;
    let augmenter = NoiseAugmenter::from_compact_string(&augmenter_text)
        .map_err(|e| format!("malformed augmenter {}: {e}", augmenter_path.display()))?;
    if (augmenter.noise_level() - noise_level).abs() > f64::EPSILON {
        return Err(format!(
            "manifest noise_level {noise_level} does not match augmenter artifact ({})",
            augmenter.noise_level()
        ));
    }
    Ok(augmenter)
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    // Resolve the artifact directory: --artifacts DIR, or the directory
    // holding --policy for split paths.
    let artifacts_dir: PathBuf = match (args.flag("artifacts"), args.flag("policy")) {
        (Some(dir), _) => PathBuf::from(dir),
        (None, Some(policy)) => {
            let parent = Path::new(policy).parent().unwrap_or(Path::new("."));
            if parent.as_os_str().is_empty() {
                PathBuf::from(".")
            } else {
                parent.to_path_buf()
            }
        }
        (None, None) => return Err("verify requires --artifacts DIR (or --policy FILE)".into()),
    };
    let policy_path = args
        .flag("policy")
        .map(PathBuf::from)
        .unwrap_or_else(|| artifacts_dir.join("policy.dtree"));
    let model_path = args
        .flag("model")
        .map(PathBuf::from)
        .unwrap_or_else(|| artifacts_dir.join("model.dynmodel"));
    let samples: usize = args
        .flag("samples")
        .map(|v| v.parse().map_err(|_| "--samples must be a number"))
        .transpose()?
        .unwrap_or(2000);
    let conservative = args.has("conservative");

    let policy_text = std::fs::read_to_string(&policy_path)
        .map_err(|e| format!("cannot read {}: {e}", policy_path.display()))?;
    let mut policy = DtPolicy::from_compact_string(&policy_text).map_err(|e| e.to_string())?;
    let model_text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {}: {e}", model_path.display()))?;
    let model = DynamicsModel::from_compact_string(&model_text).map_err(|e| e.to_string())?;

    // The input distribution comes from the extraction run itself (the
    // manifest's augmenter), never a fresh refit at a different noise
    // level — criterion #1 is only meaningful against the distribution
    // the policy was distilled for.
    let augmenter = load_persisted_augmenter(&artifacts_dir)?;
    println!(
        "using persisted augmenter (noise {})",
        augmenter.noise_level()
    );

    let config = VerificationConfig {
        samples,
        ..VerificationConfig::paper()
    };
    let report =
        verify_and_correct(&mut policy, &model, &augmenter, &config).map_err(|e| e.to_string())?;
    println!("{report}");
    let pass = if conservative {
        report.verified_conservative(WILSON_Z)
    } else {
        report.verified()
    };
    let (wilson_low, _) = report.criterion_1.wilson_interval(WILSON_Z);
    let verdict = match (conservative, pass) {
        (true, true) => format!(
            "VERIFIED (Wilson 95% lower bound {:.3} above threshold; #2/#3 corrected)",
            wilson_low
        ),
        (true, false) => format!(
            "NOT VERIFIED (Wilson 95% lower bound {:.3} not above threshold {})",
            wilson_low, report.criterion_1.threshold
        ),
        (false, true) => "VERIFIED (criterion #1 above threshold; #2/#3 corrected)".to_string(),
        (false, false) => "NOT VERIFIED (criterion #1 below threshold)".to_string(),
    };
    println!("\nverdict: {verdict}");
    if report.corrected_criterion_2 + report.corrected_criterion_3 > 0 {
        let corrected_path = format!("{}.corrected", policy_path.display());
        std::fs::write(&corrected_path, policy.to_compact_string()).map_err(|e| e.to_string())?;
        println!("corrected policy written to {corrected_path}");
    }

    // Compile the (post-correction) tree into its flat serving kernel
    // and write the artifact beside the policy. `recompile` re-proves
    // exhaustive equivalence over the verification box grid before
    // handing back a kernel, so a written `policy.ctree` is *proven*,
    // not just derived.
    let mut compiled_hash = String::new();
    match policy.recompile() {
        Some(proof) => {
            let artifact = policy
                .compiled_artifact()
                .expect("recompile returned a proof, so the artifact exists");
            let compiled_path = artifacts_dir.join("policy.ctree");
            std::fs::write(&compiled_path, &artifact)
                .map_err(|e| format!("cannot write {}: {e}", compiled_path.display()))?;
            compiled_hash = hvac_audit::compiled_hash(&artifact);
            println!(
                "compiled kernel proven equivalent ({} probes across {} leaf boxes), \
                 written to {}",
                proof.probes,
                proof.leaves,
                compiled_path.display()
            );
        }
        None => println!("compiled kernel unavailable; policy will serve via the enum walk"),
    }

    // Emit the verification certificate: the verdict bound to the
    // exact (post-correction) policy bytes, the verification inputs,
    // the compiled kernel (when one was proven), and the hashes of the
    // artifacts it ran against. `serve` and `audit` check this binding
    // end to end.
    let artifact_keys = vec![
        artifact_key_for(&policy_path)?,
        artifact_key_for(&model_path)?,
    ];
    let certificate = hvac_audit::bind_certificate(
        Certificate::new(
            hvac_audit::policy_hash(&policy),
            report,
            &config,
            augmenter.noise_level(),
            artifact_keys,
        )
        .with_compiled_hash(compiled_hash),
    );
    let certificate_path = artifacts_dir.join("certificate.json");
    std::fs::write(&certificate_path, certificate.to_json_string())
        .map_err(|e| format!("cannot write {}: {e}", certificate_path.display()))?;
    println!(
        "certificate {}… written to {}",
        &certificate.certificate_id[..12],
        certificate_path.display()
    );
    if let Some(store) = open_store(args)? {
        store
            .save_certificate(&certificate)
            .map_err(|e| e.to_string())?;
        println!("certificate saved to the artifact store");
    }
    Ok(())
}

/// `NAME:sha256:HEX` for a verification input file — the provenance
/// pointer a certificate carries for each artifact it was computed
/// from.
fn artifact_key_for(path: &Path) -> Result<String, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let name = path.file_name().map_or_else(
        || path.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    Ok(format!("{name}:sha256:{}", hvac_audit::sha256_hex(&bytes)))
}

/// One completed sweep run, ready for reporting. Carries no wall-clock
/// fields: sweep reports must be byte-identical for any `--threads`.
struct SweepRun {
    city: String,
    seed: u64,
    report: VerificationReport,
    nodes: usize,
    cache_hits: u64,
    cache_misses: u64,
}

impl SweepRun {
    fn to_json(&self) -> String {
        let c1 = &self.report.criterion_1;
        let (wilson_low, wilson_high) = c1.wilson_interval(WILSON_Z);
        let mut o = ObjectWriter::new();
        o.str_field("format", "sweep_run v1");
        o.str_field("city", &self.city);
        o.u64_field("seed", self.seed);
        o.u64_field("total_nodes", self.nodes as u64);
        o.u64_field("leaf_nodes", self.report.leaf_nodes as u64);
        o.u64_field("safe", c1.safe as u64);
        o.u64_field("samples", c1.total as u64);
        o.f64_field("threshold", c1.threshold);
        o.f64_field("safe_probability", c1.probability());
        o.f64_field("wilson_low", wilson_low);
        o.f64_field("wilson_high", wilson_high);
        o.u64_field(
            "corrected_criterion_2",
            self.report.corrected_criterion_2 as u64,
        );
        o.u64_field(
            "corrected_criterion_3",
            self.report.corrected_criterion_3 as u64,
        );
        o.u64_field("verified", u64::from(self.report.verified()));
        o.u64_field(
            "verified_conservative",
            u64::from(self.report.verified_conservative(WILSON_Z)),
        );
        o.u64_field("cache_hits", self.cache_hits);
        o.u64_field("cache_misses", self.cache_misses);
        o.finish()
    }
}

/// Parses `--seeds`: either an exclusive range `N..M` or a comma list.
fn parse_seeds(spec: &str) -> Result<Vec<u64>, String> {
    let bad = || format!("bad --seeds {spec:?} (expected N..M or N,M,...)");
    if let Some((start, end)) = spec.split_once("..") {
        let start: u64 = start.trim().parse().map_err(|_| bad())?;
        let end: u64 = end.trim().parse().map_err(|_| bad())?;
        if end <= start {
            return Err(format!("empty --seeds range {spec:?}"));
        }
        Ok((start..end).collect())
    } else {
        spec.split(',')
            .map(|s| s.trim().parse::<u64>().map_err(|_| bad()))
            .collect()
    }
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let cities: Vec<String> = args
        .flag("cities")
        .unwrap_or("pittsburgh,tucson")
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    if cities.is_empty() {
        return Err("--cities must name at least one city".into());
    }
    let seeds = parse_seeds(args.flag("seeds").unwrap_or("0..4"))?;
    let threads: usize = args
        .flag("threads")
        .map(|v| v.parse().map_err(|_| "--threads must be a number"))
        .transpose()?
        .unwrap_or(4);
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let out_dir = args.flag("out").unwrap_or("sweep");
    let conservative = args.has("conservative");
    let store = open_store(args)?;

    // City-major job order in the order given; results land by job
    // index, so reports are identically ordered for any thread count.
    let mut jobs: Vec<(String, u64, PipelineConfig)> = Vec::new();
    for city in &cities {
        let env = env_config_for(city)?;
        for &seed in &seeds {
            let mut config = pipeline_config(args, env.clone())?;
            config.seed = seed;
            jobs.push((city.clone(), seed, config));
        }
    }

    info!(
        "sweeping {} runs ({} cities x {} seeds) over {} worker(s)…",
        jobs.len(),
        cities.len(),
        seeds.len(),
        threads.min(jobs.len())
    );

    // Bounded pool: workers pull the next job index off a shared atomic
    // until the list drains. Each (city, seed) pair owns disjoint cache
    // keys, so sharing the store never couples two jobs.
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<SweepRun, String>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some((city, seed, config)) = jobs.get(index) else {
                    break;
                };
                info!("sweep: {city} seed {seed} starting");
                let run = run_with_store(config, store.as_ref()).map(|artifacts| SweepRun {
                    city: city.clone(),
                    seed: *seed,
                    nodes: artifacts.policy.tree().node_count(),
                    cache_hits: artifacts.telemetry.counter("cache.hits"),
                    cache_misses: artifacts.telemetry.counter("cache.misses"),
                    report: artifacts.report,
                });
                *results[index].lock().unwrap() = Some(run);
            });
        }
    });

    let mut runs = Vec::with_capacity(jobs.len());
    let mut failures = Vec::new();
    for (slot, (city, seed, _)) in results.iter().zip(&jobs) {
        match slot.lock().unwrap().take() {
            Some(Ok(run)) => runs.push(run),
            Some(Err(e)) => failures.push(format!("{city} seed {seed}: {e}")),
            None => failures.push(format!("{city} seed {seed}: worker never ran the job")),
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} sweep run(s) failed: {}",
            failures.len(),
            failures.join("; ")
        ));
    }

    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    for run in &runs {
        let path = format!("{out_dir}/run-{}-seed{}.json", run.city, run.seed);
        std::fs::write(&path, run.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let cache_hits: u64 = runs.iter().map(|r| r.cache_hits).sum();
    let cache_misses: u64 = runs.iter().map(|r| r.cache_misses).sum();
    let verified = runs.iter().filter(|r| r.report.verified()).count();
    let verified_conservative = runs
        .iter()
        .filter(|r| r.report.verified_conservative(WILSON_Z))
        .count();

    // The aggregate embeds each run object verbatim; every field is
    // deterministic, so two sweeps over a warm cache produce identical
    // bytes.
    let mut aggregate = String::from("{\"format\":\"sweep_summary v1\"");
    aggregate.push_str(&format!(",\"runs_total\":{}", runs.len()));
    aggregate.push_str(&format!(",\"verified_runs\":{verified}"));
    aggregate.push_str(&format!(
        ",\"verified_conservative_runs\":{verified_conservative}"
    ));
    aggregate.push_str(&format!(",\"cache_hits\":{cache_hits}"));
    aggregate.push_str(&format!(",\"cache_misses\":{cache_misses}"));
    aggregate.push_str(",\"runs\":[");
    let run_objects: Vec<String> = runs.iter().map(SweepRun::to_json).collect();
    aggregate.push_str(&run_objects.join(","));
    aggregate.push_str("]}");
    let aggregate_path = format!("{out_dir}/sweep-summary.json");
    std::fs::write(&aggregate_path, &aggregate)
        .map_err(|e| format!("cannot write {aggregate_path}: {e}"))?;

    // Table-2-style stdout summary, one row per (city, seed).
    println!(
        "{:<12} {:>5} {:>6} {:>7} {:>7}   {:<16} {:>7} {:>7}  verdict",
        "city", "seed", "nodes", "leaves", "safe%", "wilson 95%", "corr#2", "corr#3"
    );
    for run in &runs {
        let c1 = &run.report.criterion_1;
        let (low, high) = c1.wilson_interval(WILSON_Z);
        let pass = if conservative {
            run.report.verified_conservative(WILSON_Z)
        } else {
            run.report.verified()
        };
        println!(
            "{:<12} {:>5} {:>6} {:>7} {:>7.1}   [{:>5.1}%, {:>5.1}%] {:>7} {:>7}  {}",
            run.city,
            run.seed,
            run.nodes,
            run.report.leaf_nodes,
            100.0 * c1.probability(),
            100.0 * low,
            100.0 * high,
            run.report.corrected_criterion_2,
            run.report.corrected_criterion_3,
            if pass { "VERIFIED" } else { "NOT VERIFIED" }
        );
    }
    println!(
        "{}/{} runs verified ({} gate); cache: {cache_hits} hits, {cache_misses} misses",
        if conservative {
            verified_conservative
        } else {
            verified
        },
        runs.len(),
        if conservative {
            "Wilson lower-bound"
        } else {
            "point-estimate"
        }
    );
    println!(
        "wrote {} per-run reports and sweep-summary.json to {out_dir}/",
        runs.len()
    );
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let policy_path = args.flag("policy").ok_or("inspect requires --policy")?;
    let policy_text = std::fs::read_to_string(policy_path).map_err(|e| e.to_string())?;
    let policy = DtPolicy::from_compact_string(&policy_text).map_err(|e| e.to_string())?;
    let tree = policy.tree();
    info!(
        "{} nodes, {} leaves, depth {}",
        tree.node_count(),
        tree.leaf_count(),
        tree.depth()
    );
    if args.has("dot") {
        let class_names: Vec<String> = policy
            .action_space()
            .iter()
            .map(|a| a.to_string())
            .collect();
        let class_refs: Vec<&str> = class_names.iter().map(String::as_str).collect();
        println!("{}", tree.to_dot(&feature::NAMES, &class_refs));
    } else {
        println!("{}", policy.to_text());
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let policy_path = args.flag("policy").ok_or("simulate requires --policy")?;
    let city = args.flag("city").ok_or("simulate requires --city")?;
    let days: usize = args
        .flag("days")
        .map(|v| v.parse().map_err(|_| "--days must be a number"))
        .transpose()?
        .unwrap_or(7);

    let policy_text = std::fs::read_to_string(policy_path).map_err(|e| e.to_string())?;
    let mut policy = DtPolicy::from_compact_string(&policy_text).map_err(|e| e.to_string())?;
    let env_config = env_config_for(city)?.with_episode_steps(days * 96);
    let mut env = HvacEnv::new(env_config).map_err(|e| e.to_string())?;
    info!("simulating {days} January day(s) in {city}…");
    let record = run_episode(&mut env, &mut policy).map_err(|e| e.to_string())?;
    let m = &record.metrics;
    println!("{m}");
    println!(
        "comfort rate {:.1}%   performance index {:.2}",
        100.0 * m.comfort_rate(),
        m.performance_index()
    );
    Ok(())
}

/// Resolves the certificate to serve/audit `policy` under: an explicit
/// `--certificate FILE`, else `certificate.json` beside the policy,
/// else the artifact store's entry for the policy hash (when
/// `--cache-dir` is open). Whatever is found must actually cover the
/// policy: a stale or foreign certificate is an error, not a warning.
/// Refuses certificates whose id does not hash their canonical bytes
/// or that cover a different policy than the one at `policy_path`.
fn check_certificate(
    certificate: &Certificate,
    policy_path: &Path,
    policy_hash: &str,
) -> Result<(), String> {
    if !hvac_audit::certificate_id_is_consistent(certificate) {
        return Err(format!(
            "certificate id {}… does not hash its canonical bytes — the file was edited \
             after binding",
            &certificate.certificate_id[..12.min(certificate.certificate_id.len())]
        ));
    }
    if certificate.policy_hash != policy_hash {
        return Err(format!(
            "certificate covers policy {:.12}… but {} hashes to {policy_hash:.12}… — \
             re-run `veri-hvac verify`",
            certificate.policy_hash,
            policy_path.display()
        ));
    }
    Ok(())
}

fn resolve_certificate(
    args: &Args,
    policy_path: &Path,
    policy_hash: &str,
) -> Result<Option<Certificate>, String> {
    let certificate = if let Some(path) = args.flag("certificate") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read certificate {path}: {e}"))?;
        Some(Certificate::from_json_string(&text).map_err(|e| e.to_string())?)
    } else {
        let sibling = policy_path
            .parent()
            .unwrap_or(Path::new("."))
            .join("certificate.json");
        match std::fs::read_to_string(&sibling) {
            Ok(text) => Some(
                Certificate::from_json_string(&text)
                    .map_err(|e| format!("malformed certificate {}: {e}", sibling.display()))?,
            ),
            Err(_) => match open_store(args)? {
                Some(store) if store.has_certificate(policy_hash) => Some(
                    store
                        .load_certificate(policy_hash)
                        .map_err(|e| e.to_string())?,
                ),
                _ => None,
            },
        }
    };
    let Some(certificate) = certificate else {
        return Ok(None);
    };
    check_certificate(&certificate, policy_path, policy_hash)?;
    Ok(Some(certificate))
}

/// One tenant entry of a `--fleet` manifest, resolved.
struct ManifestTenant {
    id: String,
    policy: DtPolicy,
    certificate: Option<Certificate>,
}

/// Parses a fleet manifest: `{"tenants":[{"id":…,"policy":PATH,
/// "certificate":PATH?},…]}`. Relative paths resolve against the
/// manifest's own directory. Each tenant's certificate is the named
/// file, else a `certificate.json` sibling of its policy, else none;
/// whatever is found must bind the tenant's exact policy bytes.
fn load_fleet_manifest(path: &str) -> Result<Vec<ManifestTenant>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read fleet manifest {path}: {e}"))?;
    let value =
        json::parse(&text).map_err(|e| format!("fleet manifest {path} is not JSON: {e}"))?;
    let base = Path::new(path)
        .parent()
        .unwrap_or(Path::new("."))
        .to_path_buf();
    let resolve = |p: &str| -> PathBuf {
        let p = Path::new(p);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            base.join(p)
        }
    };
    let entries = value
        .get("tenants")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| {
            format!(r#"fleet manifest {path} must be {{"tenants":[{{"id":…,"policy":…}},…]}}"#)
        })?;
    let mut tenants = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let id = entry
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("manifest tenant {i}: missing string field \"id\""))?;
        let policy_path = entry
            .get("policy")
            .and_then(JsonValue::as_str)
            .map(resolve)
            .ok_or_else(|| format!("manifest tenant {id:?}: missing string field \"policy\""))?;
        let policy_text = std::fs::read_to_string(&policy_path).map_err(|e| {
            format!(
                "tenant {id:?}: cannot read policy {}: {e}",
                policy_path.display()
            )
        })?;
        let policy = DtPolicy::from_compact_string(&policy_text)
            .map_err(|e| format!("tenant {id:?}: malformed policy: {e}"))?;
        let policy_hash = hvac_audit::policy_hash(&policy);
        let certificate = match entry.get("certificate").and_then(JsonValue::as_str) {
            Some(cert_path) => {
                let cert_path = resolve(cert_path);
                let text = std::fs::read_to_string(&cert_path).map_err(|e| {
                    format!(
                        "tenant {id:?}: cannot read certificate {}: {e}",
                        cert_path.display()
                    )
                })?;
                Some(
                    Certificate::from_json_string(&text)
                        .map_err(|e| format!("tenant {id:?}: {e}"))?,
                )
            }
            None => {
                let sibling = policy_path
                    .parent()
                    .unwrap_or(Path::new("."))
                    .join("certificate.json");
                match std::fs::read_to_string(&sibling) {
                    Ok(text) => Some(Certificate::from_json_string(&text).map_err(|e| {
                        format!(
                            "tenant {id:?}: malformed certificate {}: {e}",
                            sibling.display()
                        )
                    })?),
                    Err(_) => None,
                }
            }
        };
        if let Some(cert) = &certificate {
            check_certificate(cert, &policy_path, &policy_hash)
                .map_err(|e| format!("tenant {id:?}: {e}"))?;
        }
        tenants.push(ManifestTenant {
            id: id.to_string(),
            policy,
            certificate,
        });
    }
    if tenants.is_empty() {
        return Err(format!("fleet manifest {path} names no tenants"));
    }
    Ok(tenants)
}

/// `serve --fleet MANIFEST`: one process, many buildings — a policy
/// registry (tenants sharing a tree share one entry), per-tenant
/// guards behind sharded locks, optional per-tenant audit chains, and
/// the lockstep `POST /tick` batch path.
/// The certificate gate every manifest load (startup *and*
/// `/admin/reload`) passes through: a NOT VERIFIED or missing
/// certificate is fatal under `--require-certificate` and loud
/// otherwise.
fn gate_certificates(tenants: &[ManifestTenant], require_certificate: bool) -> Result<(), String> {
    let mut uncertified = 0usize;
    for tenant in tenants {
        match &tenant.certificate {
            Some(cert) if !cert.verified() => {
                if require_certificate {
                    return Err(format!(
                        "tenant {:?}: certificate {}… records a NOT VERIFIED outcome and \
                         --require-certificate is set",
                        tenant.id,
                        &cert.certificate_id[..12]
                    ));
                }
                hvac_telemetry::warn!(
                    "tenant {:?}: certificate {}… records a NOT VERIFIED outcome — serving \
                     anyway",
                    tenant.id,
                    &cert.certificate_id[..12]
                );
            }
            Some(_) => {}
            None if require_certificate => {
                return Err(format!(
                    "tenant {:?} has no verification certificate and --require-certificate \
                     is set — run `veri-hvac verify` first",
                    tenant.id
                ));
            }
            None => uncertified += 1,
        }
    }
    if uncertified > 0 {
        hvac_telemetry::warn!(
            "{uncertified} of {} tenants serve UNCERTIFIED policies — run `veri-hvac verify` \
             (or pass --require-certificate to refuse instead)",
            tenants.len()
        );
    }
    Ok(())
}

/// Manifest tenants, re-gated and shaped for [`veri_hvac::Fleet::reload`].
fn manifest_specs(manifest: &str, require_certificate: bool) -> Result<Vec<TenantSpec>, String> {
    let tenants = load_fleet_manifest(manifest)?;
    gate_certificates(&tenants, require_certificate)?;
    Ok(tenants
        .into_iter()
        .map(|t| TenantSpec {
            id: t.id,
            certificate_id: t.certificate.as_ref().map(|c| c.certificate_id.clone()),
            policy: t.policy,
        })
        .collect())
}

fn cmd_serve_fleet(args: &Args, manifest: &str) -> Result<(), String> {
    let addr = args.flag("addr").unwrap_or("127.0.0.1:9464");
    let require_certificate = args.has("require-certificate");
    let tenants = load_fleet_manifest(manifest)?;
    gate_certificates(&tenants, require_certificate)?;

    let flush = args
        .flag("audit-flush")
        .map(hvac_audit::FlushPolicy::parse)
        .transpose()
        .map_err(|e| format!("--audit-flush: {e}"))?
        .unwrap_or(hvac_audit::FlushPolicy::Always);
    let audit_dir = args.flag("audit-dir").map(PathBuf::from);
    let parse_count = |flag: &str| -> Result<Option<usize>, String> {
        args.flag(flag)
            .map(|n| {
                n.parse::<usize>()
                    .map_err(|_| format!("--{flag} must be a count, got {n:?}"))
            })
            .transpose()
    };
    // Guard-state snapshot cadence: default 30 s; `--snapshot-every 0`
    // turns periodic snapshots off (the graceful-drain snapshot still
    // runs).
    let snapshot_every = match parse_count("snapshot-every")?.unwrap_or(30) {
        0 => None,
        secs => Some(std::time::Duration::from_secs(secs as u64)),
    };
    let options = veri_hvac::FleetOptions {
        audit_dir: audit_dir.clone(),
        audit_flush: flush,
        ops: veri_hvac::OpsOptions {
            flight_capacity: parse_count("flight-capacity")?
                .unwrap_or(veri_hvac::OpsOptions::default().flight_capacity),
            ..veri_hvac::OpsOptions::default()
        },
        workers: parse_count("workers")?,
        max_inflight: parse_count("max-inflight")?,
        snapshot_every,
        ..veri_hvac::FleetOptions::default()
    };

    let fleet = veri_hvac::Fleet::new(options);
    for tenant in tenants {
        let certificate_id = tenant
            .certificate
            .as_ref()
            .map(|c| c.certificate_id.clone());
        fleet.add_tenant(&tenant.id, tenant.policy, certificate_id)?;
    }
    if audit_dir.is_some() {
        // Panics must still leave flushed, checkpointed chains behind.
        hvac_audit::install_chain_flush_hook();
    }
    info!(
        "serving fleet of {} tenants over {} distinct policies",
        fleet.len(),
        fleet.policy_count()
    );

    // `POST /admin/reload` re-reads this same manifest with the same
    // certificate gate the process started under.
    let reload_manifest = manifest.to_string();
    let reload: Arc<veri_hvac::ReloadSource> =
        Arc::new(move || manifest_specs(&reload_manifest, require_certificate));
    let server = veri_hvac::serve_fleet_with_reload(fleet, addr, Some(reload))
        .map_err(|e| format!("cannot bind fleet endpoint on {addr}: {e}"))?;
    println!("serving fleet on http://{}", server.addr());
    println!("  POST /decide/{{tenant}}  {{\"zone_temperature\": 18.5, ...}} -> setpoint action");
    println!("  POST /decide           same, tenant named by a \"tenant\" body field");
    println!("  POST /tick             lockstep batch, one observation per tenant");
    println!("  POST /admin/reload     re-read the manifest and swap the roster atomically");
    println!("  GET  /tenants          fleet roster with per-tenant guard state");
    println!("  GET  /version          build, tenant and policy counts");
    println!("  GET  /metrics          Prometheus text format 0.0.4");
    println!("  GET  /healthz          liveness probe");
    if let Some(dir) = &audit_dir {
        println!(
            "audit chains: {}/<tenant>.jsonl (sealed on graceful shutdown)",
            dir.display()
        );
    }
    hvac_telemetry::flush();
    match args.flag("duration") {
        Some(secs) => {
            let secs: u64 = secs
                .parse()
                .map_err(|_| format!("--duration must be a number of seconds, got {secs:?}"))?;
            std::thread::sleep(std::time::Duration::from_secs(secs));
            info!("--duration elapsed; shutting down");
            server.shutdown();
            Ok(())
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    if let Some(manifest) = args.flag("fleet") {
        return cmd_serve_fleet(args, manifest);
    }
    let policy_path = PathBuf::from(
        args.flag("policy")
            .ok_or("serve requires --policy (or --fleet MANIFEST)")?,
    );
    let addr = args.flag("addr").unwrap_or("127.0.0.1:9464");
    let policy_text = std::fs::read_to_string(&policy_path).map_err(|e| e.to_string())?;
    let policy = DtPolicy::from_compact_string(&policy_text).map_err(|e| e.to_string())?;
    let policy_hash = hvac_audit::policy_hash(&policy);

    // Certificate gate: verified-then-served is the paper's whole
    // deployment story, so serving an uncertified policy is at minimum
    // loud, and with --require-certificate a refusal.
    let certificate = resolve_certificate(args, &policy_path, &policy_hash)?;
    match &certificate {
        Some(cert) if !cert.verified() && args.has("require-certificate") => {
            return Err(format!(
                "certificate {}… records a NOT VERIFIED outcome and --require-certificate \
                 is set — fix and re-verify the policy first",
                &cert.certificate_id[..12]
            ));
        }
        Some(cert) => {
            if !cert.verified() {
                hvac_telemetry::warn!(
                    "certificate {}… records a NOT VERIFIED outcome — serving anyway \
                     (pass --require-certificate to refuse)",
                    &cert.certificate_id[..12]
                );
            }
            info!(
                "serving under certificate {}… (criterion #1 {}/{} safe)",
                &cert.certificate_id[..12],
                cert.report.criterion_1.safe,
                cert.report.criterion_1.total
            );
        }
        None if args.has("require-certificate") => {
            return Err(format!(
                "no verification certificate for policy {policy_hash:.12}… and \
                 --require-certificate is set — run `veri-hvac verify` first"
            ));
        }
        None => hvac_telemetry::warn!(
            "serving UNCERTIFIED policy {policy_hash:.12}… — run `veri-hvac verify` to \
             certify it (or pass --require-certificate to refuse instead)"
        ),
    }

    // Tamper-evident decision chain: every decision and guard
    // transition, hash-chained and sealed on graceful shutdown.
    let flush = args
        .flag("audit-flush")
        .map(hvac_audit::FlushPolicy::parse)
        .transpose()
        .map_err(|e| format!("--audit-flush: {e}"))?
        .unwrap_or(hvac_audit::FlushPolicy::Always);
    let audit = args
        .flag("audit-log")
        .map(|path| {
            hvac_audit::AuditChain::create(
                Path::new(path),
                &policy_hash,
                certificate
                    .as_ref()
                    .map_or("", |c| c.certificate_id.as_str()),
                hvac_audit::ChainConfig {
                    flush,
                    ..hvac_audit::ChainConfig::default()
                },
            )
            .map(|chain| hvac_audit::register_chain(Arc::new(chain)))
            .map_err(|e| format!("cannot create audit chain {path}: {e}"))
        })
        .transpose()?;
    if audit.is_some() {
        // Panics must still leave a flushed, checkpointed chain behind.
        hvac_audit::install_chain_flush_hook();
    }

    info!(
        "serving policy {} ({} nodes, depth {})",
        policy_path.display(),
        policy.tree().node_count(),
        policy.tree().depth()
    );
    let flight_capacity = args
        .flag("flight-capacity")
        .map(|n| {
            n.parse::<usize>()
                .map_err(|_| format!("--flight-capacity must be a record count, got {n:?}"))
        })
        .transpose()?
        .unwrap_or(veri_hvac::OpsOptions::default().flight_capacity);
    let options = veri_hvac::ServeOptions {
        audit: audit.clone(),
        certificate_id: certificate.as_ref().map(|c| c.certificate_id.clone()),
        ops: veri_hvac::OpsOptions {
            flight_capacity,
            ..veri_hvac::OpsOptions::default()
        },
        ..veri_hvac::ServeOptions::default()
    };
    let server = veri_hvac::serve_with_options(policy, options, addr)
        .map_err(|e| format!("cannot bind serve endpoint on {addr}: {e}"))?;
    println!("serving on http://{}", server.addr());
    println!("  POST /decide      {{\"zone_temperature\": 18.5, ...}} -> setpoint action");
    println!("  GET  /version     build, policy hash, certificate id");
    println!("  GET  /metrics     Prometheus text format 0.0.4");
    println!("  GET  /healthz     liveness probe");
    println!("  GET  /summary.json  registry summary with p50/p95/p99");
    println!("  GET  /debug/slo   SLO objectives with fast/slow burn rates");
    if flight_capacity > 0 {
        println!("  GET  /debug/flight  last {flight_capacity} decisions (flight recorder)");
    }
    if let Some(chain) = &audit {
        println!(
            "audit chain: {} (sealed on graceful shutdown; verify with `veri-hvac audit`)",
            args.flag("audit-log").unwrap_or("?")
        );
        let _ = chain; // chain lives in the server's shutdown hook too
    }
    hvac_telemetry::flush();
    match args.flag("duration") {
        // Bounded session (smoke tests, CI): serve for N seconds, then
        // shut down gracefully — hooks run, the chain seals, sinks
        // flush.
        Some(secs) => {
            let secs: u64 = secs
                .parse()
                .map_err(|_| format!("--duration must be a number of seconds, got {secs:?}"))?;
            std::thread::sleep(std::time::Duration::from_secs(secs));
            info!("--duration elapsed; shutting down");
            server.shutdown();
            Ok(())
        }
        // Serve until the process is interrupted. A signal kill skips
        // destructors: the chain stays durable per append but unsealed
        // (audit it with --allow-unsealed).
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    let chain_path = args.flag("chain").ok_or("audit requires --chain FILE")?;

    // `--recover` repairs a crash-torn chain in place before auditing:
    // the torn tail is truncated (atomically), a hash-covered recovery
    // record is appended, and the chain is sealed. Interior corruption
    // is still refused — recovery never papers over tampering.
    if args.has("recover") {
        let (chain, recovery) = hvac_audit::AuditChain::recover(
            Path::new(chain_path),
            hvac_audit::ChainConfig::default(),
        )
        .map_err(|e| format!("cannot recover {chain_path}: {e}"))?;
        chain
            .seal()
            .map_err(|e| format!("cannot seal recovered chain {chain_path}: {e}"))?;
        info!(
            "recovered {chain_path}: {} verified records kept, {} torn bytes truncated at \
             byte offset {}",
            recovery.prefix_records, recovery.truncated_bytes, recovery.truncated_at
        );
    }

    let text = std::fs::read_to_string(chain_path)
        .map_err(|e| format!("cannot read chain {chain_path}: {e}"))?;

    // The policy is optional (hash/link checks run without it) but
    // enables the binding and replay checks.
    let policy = args
        .flag("policy")
        .map(|path| -> Result<DtPolicy, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read policy {path}: {e}"))?;
            DtPolicy::from_compact_string(&text).map_err(|e| e.to_string())
        })
        .transpose()?;
    let certificate = match &policy {
        Some(p) => {
            let path = PathBuf::from(args.flag("policy").unwrap_or("."));
            resolve_certificate(args, &path, &hvac_audit::policy_hash(p))?
        }
        None => args
            .flag("certificate")
            .map(|path| {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read certificate {path}: {e}"))?;
                Certificate::from_json_string(&text).map_err(|e| e.to_string())
            })
            .transpose()?,
    };

    // `--compiled FILE` supplies the flat-kernel artifact for the
    // binding check: it must hash to the certificate's compiled_hash
    // and (with --policy) re-prove exhaustively equivalent to the tree.
    let compiled_artifact = args
        .flag("compiled")
        .map(|path| {
            std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read compiled artifact {path}: {e}"))
        })
        .transpose()?;

    let replay_sample: usize = args
        .flag("replay")
        .map(|v| v.parse().map_err(|_| "--replay must be a number"))
        .transpose()?
        .unwrap_or(64);
    let mut auditor = hvac_audit::Auditor::new(&text).options(hvac_audit::AuditOptions {
        allow_unsealed: args.has("allow-unsealed"),
        replay_sample,
    });
    if let Some(p) = &policy {
        auditor = auditor.with_policy(p);
    }
    if let Some(c) = &certificate {
        auditor = auditor.with_certificate(c);
    }
    if let Some(artifact) = &compiled_artifact {
        auditor = auditor.with_compiled_artifact(artifact);
    }
    let report = auditor.run();

    if args.has("json") {
        println!("{}", report.to_json_string());
    } else {
        print!("{report}");
    }
    if report.passed() {
        Ok(())
    } else {
        let failure = report.first_failure().expect("failed report has a failure");
        Err(format!(
            "chain {chain_path} FAILED the {} check: {}",
            failure.name, failure.detail
        ))
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let mut metrics_guard = None;
    let result = init_telemetry(&args)
        .and_then(|()| {
            metrics_guard = init_metrics_server(&args)?;
            Ok(())
        })
        .and_then(|()| match args.positional.first().map(String::as_str) {
            Some("extract") => cmd_extract(&args),
            Some("verify") => cmd_verify(&args),
            Some("sweep") => cmd_sweep(&args),
            Some("inspect") => cmd_inspect(&args),
            Some("simulate") => cmd_simulate(&args),
            Some("serve") => cmd_serve(&args),
            Some("audit") => cmd_audit(&args),
            _ => {
                eprint!("{USAGE}");
                Err(String::new())
            }
        });
    hvac_telemetry::flush();
    drop(metrics_guard);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) if message.is_empty() => ExitCode::from(2),
        Err(message) => {
            error!("error: {message}");
            hvac_telemetry::flush();
            ExitCode::FAILURE
        }
    }
}
