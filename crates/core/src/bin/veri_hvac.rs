//! `veri-hvac` — command-line front end for the extraction/verification
//! pipeline.
//!
//! ```text
//! veri-hvac extract  --city pittsburgh --out-dir artifacts [--paper]
//! veri-hvac verify   --policy artifacts/policy.dtree --model artifacts/model.dynmodel --city pittsburgh
//! veri-hvac inspect  --policy artifacts/policy.dtree [--dot]
//! veri-hvac simulate --policy artifacts/policy.dtree --city pittsburgh --days 7
//! veri-hvac serve    --policy artifacts/policy.dtree --addr 127.0.0.1:9464
//! ```
//!
//! `extract` runs the paper's full procedure (Fig. 2) and writes the
//! verified decision-tree policy plus the trained dynamics model as
//! human-auditable text artifacts. `verify` re-runs offline verification
//! on saved artifacts. `inspect` prints the policy's rules (or Graphviz
//! DOT). `simulate` deploys a saved policy in the simulated building
//! and reports energy/comfort metrics. `serve` loads a policy and
//! answers `POST /decide` (plus `/metrics`, `/healthz`,
//! `/summary.json`) until interrupted. Any long-running subcommand
//! additionally exposes the observability routes when
//! `--metrics-addr ADDR` is given.

use hvac_telemetry::{error, info, JsonlSink, Level, StderrSink};
use std::process::ExitCode;
use std::sync::Arc;
use veri_hvac::control::DtPolicy;
use veri_hvac::dynamics::{collect_historical_dataset, DynamicsModel};
use veri_hvac::env::space::feature;
use veri_hvac::env::{run_episode, EnvConfig, HvacEnv};
use veri_hvac::extract::NoiseAugmenter;
use veri_hvac::pipeline::{run_pipeline, PipelineConfig};
use veri_hvac::verify::{verify_and_correct, VerificationConfig};

const USAGE: &str = "\
veri-hvac — interpretable & verifiable decision-tree HVAC control

USAGE:
  veri-hvac extract  --city <pittsburgh|tucson|new-york> [--out-dir DIR] [--paper]
  veri-hvac verify   --policy FILE --model FILE --city <city> [--samples N]
  veri-hvac inspect  --policy FILE [--dot]
  veri-hvac simulate --policy FILE --city <city> [--days N]
  veri-hvac serve    --policy FILE [--addr HOST:PORT]

GLOBAL FLAGS:
  --verbose          stderr progress at debug level (span timings included)
  --quiet            suppress stderr progress (warnings and errors only)
  --telemetry FILE   append machine-readable JSONL telemetry events to FILE
                     (equivalent to HVAC_TELEMETRY=FILE)
  --metrics-addr A   expose GET /metrics, /healthz, /summary.json at A
                     (e.g. 127.0.0.1:9464) for the duration of the run

`serve` answers POST /decide with the policy's setpoint decision for a
JSON observation body and always exposes the observability routes on
its own --addr (default 127.0.0.1:9464; port 0 picks one). Decisions
pass through a degradation guard: invalid readings are held or routed
to a rule-based fallback (the response's guard_state field names the
rung), oversized bodies get 413, stalled requests 408, and parse
failures a structured 422 JSON error.

Machine-readable results go to stdout; progress and diagnostics to stderr.
Artifacts are plain text (see hvac_dtree::serialize / hvac_dynamics::serialize).
";

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = if iter.peek().is_some_and(|v| !v.starts_with("--")) {
                    iter.next()
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Self { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

/// Installs the stderr sink (level from `--verbose`/`--quiet`) and, when
/// `--telemetry FILE` is given, tees events into a JSONL file. The
/// stderr sink goes in first so failures opening the JSONL file are
/// still reported.
fn init_telemetry(args: &Args) -> Result<(), String> {
    let level = if args.has("verbose") {
        Level::Debug
    } else if args.has("quiet") {
        Level::Warn
    } else {
        Level::Info
    };
    let stderr: Arc<dyn hvac_telemetry::Sink> = Arc::new(StderrSink::new(level));
    hvac_telemetry::set_sink(Arc::clone(&stderr));
    if let Some(path) = args.flag("telemetry") {
        let jsonl = JsonlSink::create(path)
            .map_err(|e| format!("cannot open telemetry file {path}: {e}"))?;
        hvac_telemetry::set_sink(Arc::new(hvac_telemetry::MultiSink::new(vec![
            stderr,
            Arc::new(jsonl),
        ])));
    }
    // HVAC_TELEMETRY=<path> still works; it tees into whatever is set.
    hvac_telemetry::init_from_env();
    // A buffered JSONL sink must survive panics with its tail intact.
    hvac_telemetry::install_panic_flush_hook();
    Ok(())
}

/// Starts the opt-in observability server when `--metrics-addr` is
/// given; the returned guard keeps it alive for the whole run.
fn init_metrics_server(args: &Args) -> Result<Option<hvac_telemetry::http::HttpServer>, String> {
    let Some(addr) = args.flag("metrics-addr") else {
        return Ok(None);
    };
    let server = hvac_telemetry::http::HttpServer::bind(addr)
        .map_err(|e| format!("cannot bind metrics server on {addr}: {e}"))?;
    Ok(Some(server))
}

fn env_config_for(city: &str) -> Result<EnvConfig, String> {
    match city {
        "pittsburgh" => Ok(EnvConfig::pittsburgh()),
        "tucson" => Ok(EnvConfig::tucson()),
        "new-york" | "new_york" => Ok(EnvConfig::new_york()),
        other => Err(format!(
            "unknown city {other:?} (try pittsburgh, tucson, new-york)"
        )),
    }
}

fn cmd_extract(args: &Args) -> Result<(), String> {
    let city = args.flag("city").ok_or("extract requires --city")?;
    let out_dir = args.flag("out-dir").unwrap_or("artifacts");
    let env = env_config_for(city)?;
    let config = if args.has("paper") {
        PipelineConfig::paper_with_env(env)
    } else {
        PipelineConfig::quick(env)
    };

    info!("running extraction pipeline for {city}…");
    let artifacts = run_pipeline(&config).map_err(|e| e.to_string())?;
    info!("{}", artifacts.telemetry);
    println!("{}", artifacts.report);
    println!(
        "dynamics model: {} transitions, validation RMSE {:.3} °C",
        artifacts.historical.len(),
        artifacts.model.validation_rmse()
    );

    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let policy_path = format!("{out_dir}/policy.dtree");
    let model_path = format!("{out_dir}/model.dynmodel");
    std::fs::write(&policy_path, artifacts.policy.to_compact_string())
        .map_err(|e| e.to_string())?;
    std::fs::write(&model_path, artifacts.model.to_compact_string()).map_err(|e| e.to_string())?;
    println!("wrote {policy_path} and {model_path}");
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let policy_path = args.flag("policy").ok_or("verify requires --policy")?;
    let model_path = args.flag("model").ok_or("verify requires --model")?;
    let city = args.flag("city").ok_or("verify requires --city")?;
    let samples: usize = args
        .flag("samples")
        .map(|v| v.parse().map_err(|_| "--samples must be a number"))
        .transpose()?
        .unwrap_or(2000);

    let policy_text = std::fs::read_to_string(policy_path).map_err(|e| e.to_string())?;
    let mut policy = DtPolicy::from_compact_string(&policy_text).map_err(|e| e.to_string())?;
    let model_text = std::fs::read_to_string(model_path).map_err(|e| e.to_string())?;
    let model = DynamicsModel::from_compact_string(&model_text).map_err(|e| e.to_string())?;

    info!("collecting input distribution for {city}…");
    let env = env_config_for(city)?.with_episode_steps(7 * 96);
    let historical = collect_historical_dataset(&env, 2, 0).map_err(|e| e.to_string())?;
    let augmenter =
        NoiseAugmenter::fit(historical.policy_inputs(), 0.01).map_err(|e| e.to_string())?;

    let config = VerificationConfig {
        samples,
        ..VerificationConfig::paper()
    };
    let report =
        verify_and_correct(&mut policy, &model, &augmenter, &config).map_err(|e| e.to_string())?;
    println!("{report}");
    println!(
        "\nverdict: {}",
        if report.verified() {
            "VERIFIED (criterion #1 above threshold; #2/#3 corrected)"
        } else {
            "NOT VERIFIED (criterion #1 below threshold)"
        }
    );
    if report.corrected_criterion_2 + report.corrected_criterion_3 > 0 {
        let corrected_path = format!("{policy_path}.corrected");
        std::fs::write(&corrected_path, policy.to_compact_string()).map_err(|e| e.to_string())?;
        println!("corrected policy written to {corrected_path}");
    }
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let policy_path = args.flag("policy").ok_or("inspect requires --policy")?;
    let policy_text = std::fs::read_to_string(policy_path).map_err(|e| e.to_string())?;
    let policy = DtPolicy::from_compact_string(&policy_text).map_err(|e| e.to_string())?;
    let tree = policy.tree();
    info!(
        "{} nodes, {} leaves, depth {}",
        tree.node_count(),
        tree.leaf_count(),
        tree.depth()
    );
    if args.has("dot") {
        let class_names: Vec<String> = policy
            .action_space()
            .iter()
            .map(|a| a.to_string())
            .collect();
        let class_refs: Vec<&str> = class_names.iter().map(String::as_str).collect();
        println!("{}", tree.to_dot(&feature::NAMES, &class_refs));
    } else {
        println!("{}", policy.to_text());
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let policy_path = args.flag("policy").ok_or("simulate requires --policy")?;
    let city = args.flag("city").ok_or("simulate requires --city")?;
    let days: usize = args
        .flag("days")
        .map(|v| v.parse().map_err(|_| "--days must be a number"))
        .transpose()?
        .unwrap_or(7);

    let policy_text = std::fs::read_to_string(policy_path).map_err(|e| e.to_string())?;
    let mut policy = DtPolicy::from_compact_string(&policy_text).map_err(|e| e.to_string())?;
    let env_config = env_config_for(city)?.with_episode_steps(days * 96);
    let mut env = HvacEnv::new(env_config).map_err(|e| e.to_string())?;
    info!("simulating {days} January day(s) in {city}…");
    let record = run_episode(&mut env, &mut policy).map_err(|e| e.to_string())?;
    let m = &record.metrics;
    println!("{m}");
    println!(
        "comfort rate {:.1}%   performance index {:.2}",
        100.0 * m.comfort_rate(),
        m.performance_index()
    );
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let policy_path = args.flag("policy").ok_or("serve requires --policy")?;
    let addr = args.flag("addr").unwrap_or("127.0.0.1:9464");
    let policy_text = std::fs::read_to_string(policy_path).map_err(|e| e.to_string())?;
    let policy = DtPolicy::from_compact_string(&policy_text).map_err(|e| e.to_string())?;
    info!(
        "serving policy {policy_path} ({} nodes, depth {})",
        policy.tree().node_count(),
        policy.tree().depth()
    );
    let server = veri_hvac::serve_policy(policy, addr)
        .map_err(|e| format!("cannot bind serve endpoint on {addr}: {e}"))?;
    println!("serving on http://{}", server.addr());
    println!("  POST /decide      {{\"zone_temperature\": 18.5, ...}} -> setpoint action");
    println!("  GET  /metrics     Prometheus text format 0.0.4");
    println!("  GET  /healthz     liveness probe");
    println!("  GET  /summary.json  registry summary with p50/p95/p99");
    hvac_telemetry::flush();
    // Serve until the process is interrupted.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let mut metrics_guard = None;
    let result = init_telemetry(&args)
        .and_then(|()| {
            metrics_guard = init_metrics_server(&args)?;
            Ok(())
        })
        .and_then(|()| match args.positional.first().map(String::as_str) {
            Some("extract") => cmd_extract(&args),
            Some("verify") => cmd_verify(&args),
            Some("inspect") => cmd_inspect(&args),
            Some("simulate") => cmd_simulate(&args),
            Some("serve") => cmd_serve(&args),
            _ => {
                eprint!("{USAGE}");
                Err(String::new())
            }
        });
    hvac_telemetry::flush();
    drop(metrics_guard);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) if message.is_empty() => ExitCode::from(2),
        Err(message) => {
            error!("error: {message}");
            hvac_telemetry::flush();
            ExitCode::FAILURE
        }
    }
}
