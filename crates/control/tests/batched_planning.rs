//! Integration tests: batched planning over a *trained* dynamics model.
//!
//! The unit tests in `random_shooting.rs` prove scalar/batched identity
//! for toy predictors (which route through the default batched method).
//! These tests close the remaining gap: a real [`DynamicsModel`]
//! overrides `predict_next_batch` with the normalized, transposed MLP
//! path, and the planner must still pick bit-identical actions.

use hvac_control::{
    evaluate_sequence, evaluate_sequences_lockstep, LockstepWorkspace, PlanningConfig,
    RandomShootingConfig, RandomShootingController,
};
use hvac_dynamics::{DynamicsModel, ModelConfig, TransitionDataset};
use hvac_env::{ActionSpace, Disturbances, Observation, SetpointAction, Transition};
use hvac_nn::TrainConfig;

fn trained_model() -> DynamicsModel {
    let dataset: TransitionDataset = (0..160)
        .map(|i| {
            let s = 14.0 + (i % 12) as f64;
            let heat = 15 + (i % 9);
            Transition {
                observation: Observation::new(
                    s,
                    Disturbances {
                        outdoor_temperature: -4.0 + (i % 7) as f64,
                        occupant_count: f64::from(i % 2 == 0),
                        hour_of_day: (i % 24) as f64,
                        ..Disturbances::default()
                    },
                ),
                action: SetpointAction::new(heat, 25).unwrap(),
                next_zone_temperature: 0.85 * s + 0.12 * f64::from(heat) + 0.4,
            }
        })
        .collect();
    let config = ModelConfig {
        hidden: vec![24, 24],
        train: TrainConfig {
            epochs: 40,
            ..TrainConfig::paper()
        },
        ..ModelConfig::default()
    };
    DynamicsModel::train(&dataset, &config).expect("quick model trains")
}

fn start_obs(temp: f64) -> Observation {
    Observation::new(
        temp,
        Disturbances {
            outdoor_temperature: -2.0,
            occupant_count: 2.0,
            hour_of_day: 9.0,
            ..Disturbances::default()
        },
    )
}

#[test]
fn lockstep_evaluation_is_bit_identical_to_scalar_over_trained_model() {
    let model = trained_model();
    let space = ActionSpace::new();
    let planning = PlanningConfig {
        horizon: 6,
        ..PlanningConfig::paper()
    };
    // A deterministic spread of candidate sequences across the space.
    let n = 40;
    let sequences: Vec<SetpointAction> = (0..n * planning.horizon)
        .map(|k| {
            space
                .action((k * 37) % space.len())
                .expect("index in range")
        })
        .collect();
    let mut workspace = LockstepWorkspace::new();
    let mut returns = Vec::new();
    evaluate_sequences_lockstep(
        &model,
        &start_obs(17.5),
        &sequences,
        planning.horizon,
        &planning,
        &mut workspace,
        &mut returns,
    );
    assert_eq!(returns.len(), n);
    for i in 0..n {
        let seq = &sequences[i * planning.horizon..(i + 1) * planning.horizon];
        let scalar = evaluate_sequence(&model, &start_obs(17.5), seq, &planning);
        assert_eq!(returns[i], scalar, "candidate {i} diverged");
    }
}

#[test]
fn batched_controller_plans_identically_to_scalar_over_trained_model() {
    let model = trained_model();
    let run = |batched| {
        let config = RandomShootingConfig {
            samples: 120,
            planning: PlanningConfig {
                horizon: 8,
                ..PlanningConfig::paper()
            },
            threads: 1,
            batched,
        };
        let mut controller = RandomShootingController::new(model.clone(), config, 23).unwrap();
        (0..5)
            .map(|i| controller.plan(&start_obs(15.0 + f64::from(i))))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn samples_not_divisible_by_threads_is_deterministic_and_complete() {
    let model = trained_model();
    let run = || {
        let config = RandomShootingConfig {
            samples: 50, // 50 = 4 × 13 − 2: last worker gets a short quota
            planning: PlanningConfig {
                horizon: 5,
                ..PlanningConfig::paper()
            },
            threads: 4,
            batched: true,
        };
        let mut controller = RandomShootingController::new(model.clone(), config, 31).unwrap();
        (0..3)
            .map(|_| controller.plan(&start_obs(16.0)))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn threads_beyond_samples_clamp_without_changing_the_plan() {
    let model = trained_model();
    let run = |threads| {
        let config = RandomShootingConfig {
            samples: 4,
            planning: PlanningConfig {
                horizon: 5,
                ..PlanningConfig::paper()
            },
            threads,
            batched: true,
        };
        let mut controller = RandomShootingController::new(model.clone(), config, 7).unwrap();
        controller.plan(&start_obs(18.0))
    };
    // 16 workers over 4 samples must behave exactly like 4 workers.
    assert_eq!(run(16), run(4));
}
