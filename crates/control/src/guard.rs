//! Graceful degradation around any policy: input validation, last-good
//! holds and a three-rung fallback ladder.
//!
//! The paper's three safety criteria are proved over *clean*
//! observations. [`GuardedPolicy`] is the runtime companion to that
//! offline proof: it checks every incoming reading against the
//! observation-space box ([`hvac_env::VALID_RANGES`]), rejects NaN/∞,
//! holds briefly-missing fields at their last good value, and walks a
//! degradation ladder when the sensor stream stays bad:
//!
//! 1. **Normal / Hold** — the wrapped policy decides (on the original
//!    observation, bit-identically, when nothing was repaired; on the
//!    repaired one while holds are within the staleness budget);
//! 2. **Fallback** — a rule-based controller takes over, holding a
//!    setpoint pair one degree inside each comfort bound so the zone
//!    stays in range regardless of what the sensors claim;
//! 3. **Fail-safe** — when even the occupancy feed is untrustworthy,
//!    that same margin setpoint pair is emitted without consulting the
//!    observation at all.
//!
//! Every guard action is recorded in telemetry: `guard.rejections`,
//! `guard.holds`, `guard.fallbacks`, `guard.failsafes` counters and the
//! `guard.state` gauge (0 = normal, 1 = hold, 2 = fallback,
//! 3 = fail-safe).
//!
//! **Observation NaNs are the guard's job.** A decision tree routes NaN
//! right at every split (`x <= t` is false for NaN) — silently, in both
//! the enum walk and the compiled kernel, which replicate each other
//! exactly on hostile inputs. That accidental asymmetry is not a
//! decision anyone designed, so the contract here is stronger: every
//! observation the guard hands to the wrapped policy is fully finite
//! (rejected fields are held, or the ladder resolves the action without
//! consulting the tree), meaning `Tree::apply` never sees a NaN in
//! production. The `no_nan_ever_reaches_the_wrapped_tree` test pins
//! this down.

use crate::rule_based::RuleBasedController;
use hvac_env::space::feature;
use hvac_env::{ComfortRange, Observation, Policy, SetpointAction, POLICY_INPUT_DIM, VALID_RANGES};
use hvac_telemetry::json::{parse, JsonValue, ObjectWriter};

/// Where the guard currently sits on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardState {
    /// Every field valid — the wrapped policy decided on the original
    /// observation.
    Normal,
    /// Some fields were repaired from last-good values (all within the
    /// staleness budget) — the wrapped policy decided on the repaired
    /// observation.
    Hold,
    /// At least one field stayed invalid beyond the staleness budget —
    /// the rule-based fallback decided.
    Fallback,
    /// The occupancy feed itself is untrustworthy — the fail-safe
    /// setpoints were emitted.
    FailSafe,
}

impl GuardState {
    /// Gauge encoding (0 = normal … 3 = fail-safe).
    pub fn as_gauge(self) -> u64 {
        match self {
            GuardState::Normal => 0,
            GuardState::Hold => 1,
            GuardState::Fallback => 2,
            GuardState::FailSafe => 3,
        }
    }

    /// Snake-case rung name, for logs and serving responses.
    pub fn name(self) -> &'static str {
        match self {
            GuardState::Normal => "normal",
            GuardState::Hold => "hold",
            GuardState::Fallback => "fallback",
            GuardState::FailSafe => "fail_safe",
        }
    }

    /// Parses a rung back from its [`GuardState::name`] spelling (used
    /// by the offline audit verifier when re-reading chain records).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "normal" => Some(GuardState::Normal),
            "hold" => Some(GuardState::Hold),
            "fallback" => Some(GuardState::Fallback),
            "fail_safe" => Some(GuardState::FailSafe),
            _ => None,
        }
    }
}

/// One recorded movement on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardTransition {
    /// Rung before the decision.
    pub from: GuardState,
    /// Rung after the decision.
    pub to: GuardState,
    /// Zero-based index of the decision that moved the ladder.
    pub decision_index: u64,
}

/// Pending-transition buffer cap: transitions are rare (the ladder has
/// four rungs) and callers drain per decision, but an undrained guard
/// must not grow without bound.
const MAX_PENDING_TRANSITIONS: usize = 1024;

/// Where one observation was routed by the guard's validation pass —
/// the first half of the two-phase [`GuardedPolicy::route`] /
/// [`GuardedPolicy::commit`] API that lets a fleet controller coalesce
/// many tenants' tree evaluations into one batched call between the
/// two phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardRoute {
    /// The wrapped policy must decide on `observation`: the caller
    /// evaluates it (alone or batched across tenants) and passes the
    /// action to [`GuardedPolicy::commit`]. On the `Normal` rung the
    /// observation is the caller's original one, untouched; on `Hold`
    /// it carries the repaired fields.
    Policy {
        /// The observation the wrapped policy must see.
        observation: Observation,
        /// `Normal` or `Hold`.
        state: GuardState,
    },
    /// The guard resolved the decision itself on a degraded rung
    /// (`Fallback` or `FailSafe`); pass `action` straight to
    /// [`GuardedPolicy::commit`].
    Resolved {
        /// The rule-based or fail-safe action.
        action: SetpointAction,
        /// `Fallback` or `FailSafe`.
        state: GuardState,
    },
}

/// Configuration of the input validator and degradation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Per-feature `[lo, hi]` validity box (defaults to
    /// [`hvac_env::VALID_RANGES`]).
    pub bounds: [(f64, f64); POLICY_INPUT_DIM],
    /// How many *consecutive* invalid steps a field may be held at its
    /// last good value before the guard escalates to the fallback rung.
    pub staleness_budget: usize,
    /// Treat the zone-temperature sensor as stuck after this many
    /// consecutive *bit-identical* readings (0 disables the check —
    /// the right setting when serving independent requests, where
    /// repeats are legitimate).
    pub stuck_after: usize,
    /// Dead-reckon the hour-of-day field against its own 15-minute
    /// cadence and reject readings that disagree (off by default; only
    /// sound when `decide` is called once per simulation step).
    pub clock_check: bool,
    /// Tolerated |reported − dead-reckoned| hour gap (wrapping).
    pub clock_tolerance_hours: f64,
    /// Comfort range the fallback rungs defend.
    pub comfort: ComfortRange,
}

impl GuardConfig {
    /// Serve-safe defaults: box + NaN/∞ validation and last-good holds
    /// only. The stuck-sensor and clock checks stay off because
    /// repeated or out-of-cadence requests are legitimate on the wire.
    pub fn new(comfort: ComfortRange) -> Self {
        Self {
            bounds: VALID_RANGES,
            staleness_budget: 4,
            stuck_after: 0,
            clock_check: false,
            clock_tolerance_hours: 1.0,
            comfort,
        }
    }

    /// Episode-monitoring preset: additionally treats 8 consecutive
    /// bit-identical zone readings (2 h) as a stuck sensor and
    /// dead-reckons the clock — sound when `decide` is called once per
    /// 15-minute step.
    pub fn strict(comfort: ComfortRange) -> Self {
        Self {
            stuck_after: 8,
            clock_check: true,
            ..Self::new(comfort)
        }
    }
}

/// Per-instance guard counters (the telemetry counters aggregate across
/// instances; these are exact for one policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardStats {
    /// Individual field readings rejected by the validator.
    pub rejections: u64,
    /// Field repairs from last-good values.
    pub holds: u64,
    /// Decisions delegated to the rule-based fallback.
    pub fallbacks: u64,
    /// Decisions resolved by the fail-safe setpoints.
    pub failsafes: u64,
}

/// A point-in-time serialization of a guard's mutable state: the
/// ladder rung, the last-good observation fields and their staleness
/// runs, the stuck-sensor and dead-reckoned-clock trackers, the
/// per-instance counters, and the decision count.
///
/// Snapshots make a guard survivable across process restarts: a fleet
/// controller persists one per tenant and rehydrates it with
/// [`GuardedPolicy::restore`] on startup. The *pending transition
/// buffer is deliberately excluded* — transitions are drained into the
/// audit chain per decision, so any still buffered at a crash were
/// never durable evidence to begin with.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardSnapshot {
    /// Rung on the degradation ladder.
    pub state: GuardState,
    /// Last valid reading per feature (the "last-good observation").
    pub last_good: [Option<f64>; POLICY_INPUT_DIM],
    /// Consecutive invalid steps per feature.
    pub invalid_run: [usize; POLICY_INPUT_DIM],
    /// Raw bits of the previous zone reading (stuck-sensor tracker).
    pub last_zone_bits: Option<u64>,
    /// Consecutive bit-identical zone readings.
    pub zone_repeat_run: usize,
    /// Last committed `(heating, cooling)` setpoints.
    pub last_action: Option<(i32, i32)>,
    /// Dead-reckoned hour-of-day expectation.
    pub expected_hour: Option<f64>,
    /// Per-instance counters.
    pub stats: GuardStats,
    /// Total decisions taken through the guard.
    pub decisions: u64,
}

impl GuardSnapshot {
    /// One-line JSON encoding (atomic-write friendly). Absent options
    /// encode as `null` (finite values are the only valid readings, so
    /// `null` is unambiguous); zone bits encode as hex so no `u64`
    /// precision is lost through the JSON float path.
    pub fn to_json_string(&self) -> String {
        let mut o = ObjectWriter::new();
        o.str_field("state", self.state.name());
        let last_good: Vec<f64> = self
            .last_good
            .iter()
            .map(|v| v.unwrap_or(f64::NAN))
            .collect();
        o.f64_array_field("last_good", &last_good);
        let invalid_run: Vec<f64> = self.invalid_run.iter().map(|&v| v as f64).collect();
        o.f64_array_field("invalid_run", &invalid_run);
        let bits = self
            .last_zone_bits
            .map_or_else(String::new, |b| format!("{b:016x}"));
        o.str_field("last_zone_bits", &bits);
        o.u64_field("zone_repeat_run", self.zone_repeat_run as u64);
        let (heating, cooling) = self
            .last_action
            .map_or((f64::NAN, f64::NAN), |(h, c)| (f64::from(h), f64::from(c)));
        o.f64_field("heating", heating);
        o.f64_field("cooling", cooling);
        o.f64_field("expected_hour", self.expected_hour.unwrap_or(f64::NAN));
        o.u64_field("rejections", self.stats.rejections);
        o.u64_field("holds", self.stats.holds);
        o.u64_field("fallbacks", self.stats.fallbacks);
        o.u64_field("failsafes", self.stats.failsafes);
        o.u64_field("decisions", self.decisions);
        o.finish()
    }

    /// Parses a snapshot back from [`GuardSnapshot::to_json_string`]
    /// output.
    ///
    /// # Errors
    ///
    /// Malformed JSON, missing fields, or out-of-domain values.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = parse(text).map_err(|e| format!("bad snapshot JSON: {e:?}"))?;
        let opt_f64 = |key: &str| -> Result<Option<f64>, String> {
            match v.get(key) {
                Some(JsonValue::Null) => Ok(None),
                Some(JsonValue::Number(n)) => Ok(Some(*n)),
                _ => Err(format!("snapshot field {key:?} missing or non-numeric")),
            }
        };
        let u64_of = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("snapshot field {key:?} missing or non-numeric"))
        };
        let opt_array = |key: &str| -> Result<[Option<f64>; POLICY_INPUT_DIM], String> {
            let items = v
                .get(key)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("snapshot field {key:?} missing or not an array"))?;
            if items.len() != POLICY_INPUT_DIM {
                return Err(format!(
                    "snapshot field {key:?} has {} entries, expected {POLICY_INPUT_DIM}",
                    items.len()
                ));
            }
            let mut out = [None; POLICY_INPUT_DIM];
            for (slot, item) in out.iter_mut().zip(items) {
                *slot = match item {
                    JsonValue::Null => None,
                    JsonValue::Number(n) => Some(*n),
                    _ => return Err(format!("snapshot field {key:?} has a non-numeric entry")),
                };
            }
            Ok(out)
        };

        let state_name = v
            .get("state")
            .and_then(JsonValue::as_str)
            .ok_or("snapshot field \"state\" missing")?;
        let state = GuardState::from_name(state_name)
            .ok_or_else(|| format!("unknown guard state {state_name:?}"))?;
        let mut invalid_run = [0usize; POLICY_INPUT_DIM];
        for (slot, value) in invalid_run.iter_mut().zip(opt_array("invalid_run")?) {
            let n = value.ok_or("snapshot field \"invalid_run\" has a null entry")?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err("snapshot field \"invalid_run\" has a non-integer entry".to_string());
            }
            *slot = n as usize;
        }
        let bits_text = v
            .get("last_zone_bits")
            .and_then(JsonValue::as_str)
            .ok_or("snapshot field \"last_zone_bits\" missing")?;
        let last_zone_bits = if bits_text.is_empty() {
            None
        } else {
            Some(
                u64::from_str_radix(bits_text, 16)
                    .map_err(|_| format!("bad zone bits {bits_text:?}"))?,
            )
        };
        let last_action = match (opt_f64("heating")?, opt_f64("cooling")?) {
            (Some(h), Some(c)) => Some((h as i32, c as i32)),
            (None, None) => None,
            _ => return Err("snapshot heating/cooling must be both set or both null".to_string()),
        };
        Ok(Self {
            state,
            last_good: opt_array("last_good")?,
            invalid_run,
            last_zone_bits,
            zone_repeat_run: u64_of("zone_repeat_run")? as usize,
            last_action,
            expected_hour: opt_f64("expected_hour")?,
            stats: GuardStats {
                rejections: u64_of("rejections")?,
                holds: u64_of("holds")?,
                fallbacks: u64_of("fallbacks")?,
                failsafes: u64_of("failsafes")?,
            },
            decisions: u64_of("decisions")?,
        })
    }
}

/// Wraps any [`Policy`] with input validation and the degradation
/// ladder described in the module docs.
///
/// On a clean observation stream the wrapper is bit-identical to the
/// wrapped policy: no field is touched, and the inner policy receives
/// the original observation reference.
#[derive(Debug, Clone)]
pub struct GuardedPolicy<P> {
    inner: P,
    config: GuardConfig,
    fallback: RuleBasedController,
    failsafe: SetpointAction,
    name: String,
    last_good: [Option<f64>; POLICY_INPUT_DIM],
    invalid_run: [usize; POLICY_INPUT_DIM],
    last_zone_bits: Option<u64>,
    zone_repeat_run: usize,
    last_action: Option<SetpointAction>,
    expected_hour: Option<f64>,
    state: GuardState,
    stats: GuardStats,
    decisions: u64,
    transitions: Vec<GuardTransition>,
}

/// How close (°C) a bit-repeating zone reading may sit to the last
/// commanded setpoint and still be read as the plant *holding* the
/// zone there rather than a stuck sensor. An ideal-loads plant pins
/// the zone exactly on the active setpoint (bit-identical readings
/// for hours are normal at equilibrium); a sensor frozen anywhere
/// else has no such excuse.
const SETPOINT_PIN_TOLERANCE: f64 = 0.75;

impl<P: Policy> GuardedPolicy<P> {
    /// Wraps `inner` with `config`. The fallback and fail-safe rungs
    /// both hold a setpoint pair one degree *inside* each comfort
    /// bound: the plant's thermostat deadband lets the zone sag a
    /// fraction of a degree below a heating setpoint (and ride above a
    /// cooling one), so holding the exact bounds would park the zone
    /// marginally outside the range it is supposed to defend.
    pub fn new(inner: P, config: GuardConfig) -> Self {
        let hold = SetpointAction::from_clamped(
            config.comfort.lo().ceil() + 1.0,
            config.comfort.hi().floor() - 1.0,
        );
        let fallback = RuleBasedController::with_actions(hold, hold);
        let failsafe = hold;
        let name = format!("guarded({})", inner.name());
        Self {
            inner,
            config,
            fallback,
            failsafe,
            name,
            last_good: [None; POLICY_INPUT_DIM],
            invalid_run: [0; POLICY_INPUT_DIM],
            last_zone_bits: None,
            zone_repeat_run: 0,
            last_action: None,
            expected_hour: None,
            state: GuardState::Normal,
            stats: GuardStats::default(),
            decisions: 0,
            transitions: Vec::new(),
        }
    }

    /// Replaces the fallback rung (e.g. with the setback variant).
    #[must_use]
    pub fn with_fallback(mut self, fallback: RuleBasedController) -> Self {
        self.fallback = fallback;
        self
    }

    /// Current rung on the degradation ladder.
    pub fn state(&self) -> GuardState {
        self.state
    }

    /// Per-instance counters.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// Total decisions taken through the guard — the denominator for
    /// [`GuardStats`] and the per-tenant activity readout of a fleet's
    /// `GET /tenants` listing.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Drains the degradation-ladder transitions recorded since the
    /// last call, in decision order, so callers (the serve audit chain)
    /// can turn rung movements into auditable events.
    pub fn take_transitions(&mut self) -> Vec<GuardTransition> {
        std::mem::take(&mut self.transitions)
    }

    /// The configuration in force.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The wrapped policy, mutably.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwraps the inner policy.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Captures the guard's mutable state for crash-safe persistence
    /// (see [`GuardSnapshot`]).
    pub fn snapshot(&self) -> GuardSnapshot {
        GuardSnapshot {
            state: self.state,
            last_good: self.last_good,
            invalid_run: self.invalid_run,
            last_zone_bits: self.last_zone_bits,
            zone_repeat_run: self.zone_repeat_run,
            last_action: self.last_action.map(|a| (a.heating(), a.cooling())),
            expected_hour: self.expected_hour,
            stats: self.stats,
            decisions: self.decisions,
        }
    }

    /// Rehydrates the guard from a [`GuardSnapshot`], discarding any
    /// pending transitions (they were never durable — see the snapshot
    /// docs). After a restore, the guard continues bit-identically to
    /// one that was never serialized.
    ///
    /// # Errors
    ///
    /// A snapshot carrying setpoints outside the action grid.
    pub fn restore(&mut self, snapshot: &GuardSnapshot) -> Result<(), String> {
        let last_action = match snapshot.last_action {
            Some((h, c)) => Some(
                SetpointAction::new(h, c)
                    .map_err(|e| format!("snapshot last_action ({h}, {c}) invalid: {e:?}"))?,
            ),
            None => None,
        };
        self.state = snapshot.state;
        self.last_good = snapshot.last_good;
        self.invalid_run = snapshot.invalid_run;
        self.last_zone_bits = snapshot.last_zone_bits;
        self.zone_repeat_run = snapshot.zone_repeat_run;
        self.last_action = last_action;
        self.expected_hour = snapshot.expected_hour;
        self.stats = snapshot.stats;
        self.decisions = snapshot.decisions;
        self.transitions.clear();
        Ok(())
    }

    /// Wrapping |a − b| distance on the 24-hour circle.
    fn hour_gap(a: f64, b: f64) -> f64 {
        let d = (a - b).rem_euclid(24.0);
        d.min(24.0 - d)
    }

    fn in_bounds(&self, index: usize, value: f64) -> bool {
        let (lo, hi) = self.config.bounds[index];
        value.is_finite() && value >= lo && value <= hi
    }

    /// Validates and (where possible) repairs `x` in place; returns
    /// `(any_repaired, any_exceeded_budget)`.
    fn validate(&mut self, x: &mut [f64; POLICY_INPUT_DIM]) -> (bool, bool) {
        // Stuck-sensor detection runs on the *raw* zone reading so a
        // frozen (or coarsely quantized) sensor is caught even when the
        // frozen value is plausible. Readings pinned at the last
        // commanded setpoint are exempt: an ideal plant at equilibrium
        // legitimately reports the same bits for hours.
        let zone_stuck = if self.config.stuck_after > 0 {
            let reading = x[feature::ZONE_TEMPERATURE];
            let bits = reading.to_bits();
            if self.last_zone_bits == Some(bits) {
                self.zone_repeat_run += 1;
            } else {
                self.zone_repeat_run = 0;
            }
            self.last_zone_bits = Some(bits);
            let pinned = self.last_action.is_some_and(|a| {
                let (heat, cool) = a.as_f64_pair();
                (reading - heat).abs() <= SETPOINT_PIN_TOLERANCE
                    || (reading - cool).abs() <= SETPOINT_PIN_TOLERANCE
            });
            self.zone_repeat_run >= self.config.stuck_after && !pinned
        } else {
            false
        };

        let dead_reckoned = self.expected_hour;
        let mut repaired = false;
        let mut exceeded = false;
        for (i, slot) in x.iter_mut().enumerate() {
            let mut valid = self.in_bounds(i, *slot);
            if valid && i == feature::ZONE_TEMPERATURE && zone_stuck {
                valid = false;
            }
            if valid && i == feature::HOUR_OF_DAY && self.config.clock_check {
                if let Some(expected) = dead_reckoned {
                    if Self::hour_gap(*slot, expected) > self.config.clock_tolerance_hours {
                        valid = false;
                    }
                }
            }

            if valid {
                self.last_good[i] = Some(*slot);
                self.invalid_run[i] = 0;
                continue;
            }

            self.stats.rejections += 1;
            hvac_telemetry::counter("guard.rejections").incr();
            self.invalid_run[i] += 1;
            // The dead-reckoned hour beats a stale one when the clock
            // check is on; every other field holds its last good value.
            let substitute = if i == feature::HOUR_OF_DAY && self.config.clock_check {
                dead_reckoned.or(self.last_good[i])
            } else {
                self.last_good[i]
            };
            match substitute {
                Some(value) if self.invalid_run[i] <= self.config.staleness_budget => {
                    *slot = value;
                    repaired = true;
                    self.stats.holds += 1;
                    hvac_telemetry::counter("guard.holds").incr();
                }
                _ => exceeded = true,
            }
        }

        // Advance the clock expectation: re-anchor on a trusted reading,
        // otherwise dead-reckon forward one 15-minute step.
        if self.config.clock_check {
            let h = feature::HOUR_OF_DAY;
            self.expected_hour = if self.invalid_run[h] == 0 {
                Some((x[h] + 0.25).rem_euclid(24.0))
            } else {
                dead_reckoned.map(|e| (e + 0.25).rem_euclid(24.0))
            };
        }

        (repaired, exceeded)
    }
}

impl<P: Policy> GuardedPolicy<P> {
    /// Phase one of a decision: validates `obs`, walks the ladder, and
    /// either hands back the observation the wrapped policy must
    /// evaluate ([`GuardRoute::Policy`]) or resolves the action on a
    /// degraded rung ([`GuardRoute::Resolved`]). The decision is not
    /// recorded until the matching [`GuardedPolicy::commit`]; exactly
    /// one commit must follow each route.
    ///
    /// [`Policy::decide`] is `route` + inner evaluation + `commit`, so
    /// a caller that batches the inner evaluations across many guards
    /// between the phases stays bit-identical to per-guard `decide`.
    pub fn route(&mut self, obs: &Observation) -> GuardRoute {
        let mut x = obs.to_vector();
        let (repaired, exceeded) = self.validate(&mut x);

        if exceeded {
            // Ladder rung 2 or 3: the stream is broken beyond repair.
            if self.invalid_run[feature::OCCUPANT_COUNT] > self.config.staleness_budget {
                self.stats.failsafes += 1;
                hvac_telemetry::counter("guard.failsafes").incr();
                GuardRoute::Resolved {
                    action: self.failsafe,
                    state: GuardState::FailSafe,
                }
            } else {
                self.stats.fallbacks += 1;
                hvac_telemetry::counter("guard.fallbacks").incr();
                let repaired_obs = Observation::from_vector(&x);
                GuardRoute::Resolved {
                    action: self.fallback.decide(&repaired_obs),
                    state: GuardState::Fallback,
                }
            }
        } else if repaired {
            GuardRoute::Policy {
                observation: Observation::from_vector(&x),
                state: GuardState::Hold,
            }
        } else {
            // Clean path: the wrapped policy sees the caller's
            // observation untouched — bit-identical behavior.
            GuardRoute::Policy {
                observation: *obs,
                state: GuardState::Normal,
            }
        }
    }

    /// Phase two of a decision: records the rung movement, advances the
    /// decision counter, updates the state gauge, and returns `action`.
    /// `state` and `action` come from the matching
    /// [`GuardedPolicy::route`] (with the wrapped policy's action
    /// substituted on the `Policy` arm).
    pub fn commit(&mut self, state: GuardState, action: SetpointAction) -> SetpointAction {
        if state != self.state && self.transitions.len() < MAX_PENDING_TRANSITIONS {
            self.transitions.push(GuardTransition {
                from: self.state,
                to: state,
                decision_index: self.decisions,
            });
        }
        self.decisions += 1;
        self.state = state;
        self.last_action = Some(action);
        hvac_telemetry::gauge("guard.state").set(state.as_gauge());
        action
    }
}

impl<P: Policy> Policy for GuardedPolicy<P> {
    fn decide(&mut self, obs: &Observation) -> SetpointAction {
        match self.route(obs) {
            GuardRoute::Resolved { action, state } => self.commit(state, action),
            GuardRoute::Policy { observation, state } => {
                let action = if state == GuardState::Normal {
                    // Pass the caller's own reference through so the
                    // clean path stays bit-for-bit what the wrapped
                    // policy would have done unwrapped.
                    self.inner.decide(obs)
                } else {
                    self.inner.decide(&observation)
                };
                self.commit(state, action)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_deterministic(&self) -> bool {
        self.inner.is_deterministic()
    }
}

impl<P: Policy> GuardedPolicy<P> {
    /// [`Policy::decide`] with the serving request's trace id threaded
    /// through: identical decision semantics, plus a trace-level
    /// telemetry message stamping the id, the rung that served the
    /// decision, and the chosen setpoints — so a JSONL trace joins
    /// against the flight recorder and the audit chain by id.
    pub fn decide_traced(&mut self, obs: &Observation, trace_id: &str) -> SetpointAction {
        let action = self.decide(obs);
        hvac_telemetry::trace!(
            "guard.decide trace_id={} rung={} heating={} cooling={}",
            trace_id,
            self.state.name(),
            action.heating(),
            action.cooling()
        );
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dt_policy::DtPolicy;
    use hvac_dtree::{DecisionTree, TreeConfig};
    use hvac_env::{ActionSpace, Disturbances};

    /// Cold zones → heat hard, warm zones → off.
    fn toy_policy() -> DtPolicy {
        let space = ActionSpace::new();
        let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
        let off = space.index_of(SetpointAction::off());
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let temp = 14.0 + f64::from(i) * 0.5;
            let mut row = vec![0.0; POLICY_INPUT_DIM];
            row[feature::ZONE_TEMPERATURE] = temp;
            inputs.push(row);
            labels.push(if temp < 20.0 { heat } else { off });
        }
        let tree =
            DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
        DtPolicy::new(tree).unwrap()
    }

    fn obs(zone: f64, step: usize) -> Observation {
        Observation::new(
            zone,
            Disturbances {
                outdoor_temperature: -3.0,
                relative_humidity: 65.0,
                wind_speed: 4.0,
                solar_radiation: 90.0,
                occupant_count: 5.0,
                hour_of_day: (step as f64 * 0.25).rem_euclid(24.0),
            },
        )
    }

    /// The guard's degraded-rung pair: one degree inside each winter
    /// comfort bound ([20, 23.5] → heating 21, cooling 22).
    fn comfort_hold() -> SetpointAction {
        SetpointAction::new(21, 22).unwrap()
    }

    #[test]
    fn clean_inputs_are_bit_identical_to_the_wrapped_policy() {
        let mut raw = toy_policy();
        let mut guarded =
            GuardedPolicy::new(toy_policy(), GuardConfig::strict(ComfortRange::winter()));
        for step in 0..200 {
            // A drifting but plausible zone trace, never bit-repeating.
            let zone = 18.0 + 4.0 * ((step as f64) * 0.37).sin() + step as f64 * 1e-6;
            let o = obs(zone, step);
            assert_eq!(guarded.decide(&o), raw.decide(&o), "step {step}");
            assert_eq!(guarded.state(), GuardState::Normal, "step {step}");
        }
        assert_eq!(guarded.stats(), GuardStats::default());
        assert_eq!(guarded.name(), "guarded(dt)");
        assert!(guarded.is_deterministic());
    }

    #[test]
    fn traced_decide_matches_untraced_decide() {
        let mut plain =
            GuardedPolicy::new(toy_policy(), GuardConfig::strict(ComfortRange::winter()));
        let mut traced =
            GuardedPolicy::new(toy_policy(), GuardConfig::strict(ComfortRange::winter()));
        for step in 0..50 {
            let zone = 17.0 + 3.0 * ((step as f64) * 0.41).sin();
            let o = obs(zone, step);
            assert_eq!(
                traced.decide_traced(&o, "req-trace-eq"),
                plain.decide(&o),
                "step {step}"
            );
            assert_eq!(traced.state(), plain.state(), "step {step}");
        }
    }

    #[test]
    fn nan_reading_is_held_at_last_good_value() {
        let mut guarded =
            GuardedPolicy::new(toy_policy(), GuardConfig::new(ComfortRange::winter()));
        // Establish a last-good cold reading → tree heats.
        let warm_up = guarded.decide(&obs(16.0, 0));
        let held = guarded.decide(&obs(f64::NAN, 1));
        assert_eq!(held, warm_up, "held value must reproduce the decision");
        assert_eq!(guarded.state(), GuardState::Hold);
        assert_eq!(guarded.stats().rejections, 1);
        assert_eq!(guarded.stats().holds, 1);
    }

    #[test]
    fn no_nan_ever_reaches_the_wrapped_tree() {
        // The kernels route NaN right at every split by IEEE accident,
        // not by design; the *contract* is that observation NaNs are the
        // guard's job. Under a hostile barrage of NaN/∞ in every field,
        // every observation the guard hands to the Policy arm must be
        // fully finite — `Tree::apply` never sees a NaN in production.
        let mut guarded =
            GuardedPolicy::new(toy_policy(), GuardConfig::new(ComfortRange::winter()));
        guarded.decide(&obs(19.0, 0)); // seed last-good values
        let hostile = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        for step in 1..60 {
            let mut o = obs(19.0 + (step % 3) as f64, step);
            let field = step % (POLICY_INPUT_DIM + 1);
            let value = hostile[step % hostile.len()];
            match field {
                0 => o.zone_temperature = value,
                1 => o.disturbances.outdoor_temperature = value,
                2 => o.disturbances.relative_humidity = value,
                3 => o.disturbances.wind_speed = value,
                4 => o.disturbances.solar_radiation = value,
                5 => o.disturbances.occupant_count = value,
                _ => o.disturbances.hour_of_day = value,
            }
            match guarded.route(&o) {
                GuardRoute::Policy { observation, state } => {
                    assert!(
                        observation.to_vector().iter().all(|v| v.is_finite()),
                        "guard leaked a non-finite field to the policy at step {step}"
                    );
                    let action = guarded.inner_mut().decide(&observation);
                    guarded.commit(state, action);
                }
                GuardRoute::Resolved { action, state } => {
                    // Degraded rung: the wrapped tree is not consulted.
                    guarded.commit(state, action);
                }
            }
        }
        assert!(guarded.stats().rejections > 0, "barrage must be noticed");
    }

    #[test]
    fn out_of_range_reading_is_rejected_like_nan() {
        let mut guarded =
            GuardedPolicy::new(toy_policy(), GuardConfig::new(ComfortRange::winter()));
        guarded.decide(&obs(16.0, 0));
        guarded.decide(&obs(51.0, 1)); // spiked: outside the zone box
        assert_eq!(guarded.state(), GuardState::Hold);
        assert_eq!(guarded.stats().rejections, 1);
    }

    #[test]
    fn staleness_budget_escalates_to_the_rule_based_fallback() {
        let config = GuardConfig::new(ComfortRange::winter());
        let budget = config.staleness_budget;
        let mut guarded = GuardedPolicy::new(toy_policy(), config);
        guarded.decide(&obs(16.0, 0));
        for k in 1..=budget {
            guarded.decide(&obs(f64::NAN, k));
            assert_eq!(guarded.state(), GuardState::Hold, "within budget, step {k}");
        }
        let degraded = guarded.decide(&obs(f64::NAN, budget + 1));
        assert_eq!(guarded.state(), GuardState::Fallback);
        assert_eq!(degraded, comfort_hold());
        assert!(guarded.stats().fallbacks >= 1);
    }

    #[test]
    fn dead_occupancy_feed_escalates_to_fail_safe() {
        let config = GuardConfig::new(ComfortRange::winter());
        let budget = config.staleness_budget;
        let mut guarded = GuardedPolicy::new(toy_policy(), config);
        guarded.decide(&obs(21.0, 0));
        for k in 1..=(budget + 1) {
            let mut o = obs(f64::NAN, k);
            o.disturbances.occupant_count = f64::NAN;
            guarded.decide(&o);
        }
        assert_eq!(guarded.state(), GuardState::FailSafe);
        assert!(guarded.stats().failsafes >= 1);
        // The fail-safe pair is the comfort hold: trivially inside the
        // comfort range, so criteria 2 and 3 hold whatever the sensors
        // claim.
        let mut o = obs(f64::NAN, budget + 2);
        o.disturbances.occupant_count = f64::NAN;
        assert_eq!(guarded.decide(&o), comfort_hold());
    }

    #[test]
    fn guard_recovers_when_the_stream_heals() {
        let config = GuardConfig::new(ComfortRange::winter());
        let budget = config.staleness_budget;
        let mut guarded = GuardedPolicy::new(toy_policy(), config);
        let mut raw = toy_policy();
        guarded.decide(&obs(16.0, 0));
        for k in 1..=(budget + 3) {
            guarded.decide(&obs(f64::NAN, k));
        }
        assert_eq!(guarded.state(), GuardState::Fallback);
        let healed = obs(22.0, budget + 4);
        assert_eq!(guarded.decide(&healed), raw.decide(&healed));
        assert_eq!(guarded.state(), GuardState::Normal);
    }

    #[test]
    fn stuck_sensor_is_detected_by_bit_repeats() {
        let mut config = GuardConfig::strict(ComfortRange::winter());
        config.stuck_after = 3;
        let budget = config.staleness_budget;
        let mut guarded = GuardedPolicy::new(toy_policy(), config);
        // The same bits forever: plausible value, frozen sensor.
        let mut saw_fallback = false;
        for step in 0..(3 + budget + 2) {
            guarded.decide(&obs(21.5, step));
            saw_fallback |= guarded.state() == GuardState::Fallback;
        }
        assert!(saw_fallback, "stuck sensor must escalate to fallback");
        assert!(guarded.stats().rejections > 0);
    }

    #[test]
    fn clock_skew_is_dead_reckoned_then_escalated() {
        let config = GuardConfig::strict(ComfortRange::winter());
        let budget = config.staleness_budget;
        let mut guarded = GuardedPolicy::new(toy_policy(), config);
        // Anchor the clock with two clean steps.
        guarded.decide(&obs(21.0, 0));
        guarded.decide(&obs(21.1, 1));
        // Hour jumps 12 h: rejected, substituted, eventually fallback.
        for k in 2..=(2 + budget + 1) {
            let mut o = obs(21.0 + k as f64 * 0.01, k);
            o.disturbances.hour_of_day = (o.disturbances.hour_of_day + 12.0).rem_euclid(24.0);
            guarded.decide(&o);
        }
        assert_eq!(guarded.state(), GuardState::Fallback);
        assert!(guarded.stats().rejections >= 1);
    }

    #[test]
    fn gauge_and_counters_are_recorded() {
        let before = hvac_telemetry::snapshot();
        let mut guarded =
            GuardedPolicy::new(toy_policy(), GuardConfig::new(ComfortRange::winter()));
        guarded.decide(&obs(20.0, 0));
        guarded.decide(&obs(f64::INFINITY, 1));
        let after = hvac_telemetry::snapshot();
        let delta = |name: &str| {
            after.counters.get(name).copied().unwrap_or(0)
                - before.counters.get(name).copied().unwrap_or(0)
        };
        assert!(delta("guard.rejections") >= 1);
        assert!(delta("guard.holds") >= 1);
        assert!(after.gauges.contains_key("guard.state"));
    }

    #[test]
    fn state_gauge_encoding_is_stable() {
        assert_eq!(GuardState::Normal.as_gauge(), 0);
        assert_eq!(GuardState::Hold.as_gauge(), 1);
        assert_eq!(GuardState::Fallback.as_gauge(), 2);
        assert_eq!(GuardState::FailSafe.as_gauge(), 3);
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for state in [
            GuardState::Normal,
            GuardState::Hold,
            GuardState::Fallback,
            GuardState::FailSafe,
        ] {
            assert_eq!(GuardState::from_name(state.name()), Some(state));
        }
        assert_eq!(GuardState::from_name("panic"), None);
    }

    #[test]
    fn ladder_movements_are_recorded_as_transitions() {
        let config = GuardConfig::new(ComfortRange::winter());
        let budget = config.staleness_budget;
        let mut guarded = GuardedPolicy::new(toy_policy(), config);
        guarded.decide(&obs(16.0, 0));
        for k in 1..=(budget + 1) {
            guarded.decide(&obs(f64::NAN, k));
        }
        guarded.decide(&obs(21.0, budget + 2));
        let transitions = guarded.take_transitions();
        // normal → hold (decision 1), hold → fallback, fallback → normal.
        assert_eq!(transitions.len(), 3);
        assert_eq!(
            (
                transitions[0].from,
                transitions[0].to,
                transitions[0].decision_index
            ),
            (GuardState::Normal, GuardState::Hold, 1)
        );
        assert_eq!(
            (transitions[1].from, transitions[1].to),
            (GuardState::Hold, GuardState::Fallback)
        );
        assert_eq!(
            (transitions[2].from, transitions[2].to),
            (GuardState::Fallback, GuardState::Normal)
        );
        // Drained: a second take returns nothing.
        assert!(guarded.take_transitions().is_empty());
    }

    #[test]
    fn route_commit_is_bit_identical_to_decide_across_the_ladder() {
        // Drive two identical guards through a stream that touches
        // every rung: one via `decide`, one via the two-phase
        // route/commit API a fleet batcher uses.
        let mut whole = GuardedPolicy::new(toy_policy(), GuardConfig::new(ComfortRange::winter()));
        let mut phased = GuardedPolicy::new(toy_policy(), GuardConfig::new(ComfortRange::winter()));
        let budget = whole.config().staleness_budget;
        let mut stream = Vec::new();
        stream.push(obs(16.0, 0));
        stream.push(obs(f64::NAN, 1)); // hold
        stream.push(obs(21.5, 2)); // recover
        for k in 3..(4 + budget + 2) {
            let mut o = obs(f64::NAN, k); // ride past the budget…
            if k > 4 + budget {
                o.disturbances.occupant_count = f64::NAN; // …into fail-safe
            }
            stream.push(o);
        }
        stream.push(obs(19.0, 20)); // recover again
        for (step, o) in stream.iter().enumerate() {
            let expected = whole.decide(o);
            let got = match phased.route(o) {
                GuardRoute::Resolved { action, state } => phased.commit(state, action),
                GuardRoute::Policy { observation, state } => {
                    let action = phased.inner_mut().decide(&observation);
                    phased.commit(state, action)
                }
            };
            assert_eq!(got, expected, "step {step}");
            assert_eq!(phased.state(), whole.state(), "step {step}");
        }
        assert_eq!(phased.stats(), whole.stats());
        assert_eq!(phased.take_transitions(), whole.take_transitions());
    }

    #[test]
    fn snapshot_restore_round_trips_and_continues_bit_identically() {
        // Drive one guard mid-ladder (held fields, live staleness runs,
        // a dead-reckoned clock), snapshot it through JSON, rehydrate a
        // fresh guard, and require identical decisions thereafter.
        let config = GuardConfig::strict(ComfortRange::winter());
        let mut original = GuardedPolicy::new(toy_policy(), config.clone());
        original.decide(&obs(16.0, 0));
        original.decide(&obs(21.3, 1));
        original.decide(&obs(f64::NAN, 2)); // hold: live staleness run
        original.take_transitions();

        let snapshot = original.snapshot();
        let text = snapshot.to_json_string();
        let parsed = GuardSnapshot::from_json_str(&text).unwrap();
        assert_eq!(parsed, snapshot);

        let mut restored = GuardedPolicy::new(toy_policy(), config);
        restored.restore(&parsed).unwrap();
        assert_eq!(restored.state(), original.state());
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.decisions(), original.decisions());

        // Continue both through a stream that exercises the restored
        // staleness runs and clock expectation.
        for step in 3..40 {
            let o = if step < 6 {
                obs(f64::NAN, step) // ride the restored invalid_run
            } else {
                obs(17.0 + (step as f64) * 0.2, step)
            };
            assert_eq!(restored.decide(&o), original.decide(&o), "step {step}");
            assert_eq!(restored.state(), original.state(), "step {step}");
        }
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.take_transitions(), original.take_transitions());
    }

    #[test]
    fn snapshot_of_a_fresh_guard_has_empty_state() {
        let guarded = GuardedPolicy::new(toy_policy(), GuardConfig::new(ComfortRange::winter()));
        let snapshot = guarded.snapshot();
        assert_eq!(snapshot.state, GuardState::Normal);
        assert_eq!(snapshot.last_good, [None; POLICY_INPUT_DIM]);
        assert_eq!(snapshot.last_action, None);
        assert_eq!(snapshot.decisions, 0);
        let round = GuardSnapshot::from_json_str(&snapshot.to_json_string()).unwrap();
        assert_eq!(round, snapshot);
    }

    #[test]
    fn snapshot_rejects_malformed_input() {
        assert!(GuardSnapshot::from_json_str("not json").is_err());
        assert!(GuardSnapshot::from_json_str("{}").is_err());
        let good = GuardedPolicy::new(toy_policy(), GuardConfig::new(ComfortRange::winter()))
            .snapshot()
            .to_json_string();
        let bad_state = good.replace("\"normal\"", "\"panic\"");
        assert!(GuardSnapshot::from_json_str(&bad_state).is_err());
    }

    #[test]
    fn custom_fallback_is_respected() {
        let config = GuardConfig::new(ComfortRange::winter());
        let budget = config.staleness_budget;
        let mut guarded = GuardedPolicy::new(toy_policy(), config)
            .with_fallback(RuleBasedController::with_setback(ComfortRange::winter()));
        guarded.decide(&obs(21.0, 0));
        for k in 1..=(budget + 1) {
            let mut o = obs(f64::NAN, k);
            o.disturbances.occupant_count = 0.0; // building empty
            guarded.decide(&o);
        }
        assert_eq!(guarded.state(), GuardState::Fallback);
        // The setback fallback released the setpoints while empty.
        let mut o = obs(f64::NAN, budget + 2);
        o.disturbances.occupant_count = 0.0;
        assert_eq!(guarded.decide(&o), SetpointAction::off());
    }
}
