//! The building's default rule-based controller.
//!
//! This is the paper's "default \[12\]" baseline: the static schedule
//! shipped with Sinergym's 5Zone environment. While the zone is occupied
//! it holds the comfort-range setpoints; while empty it sets back to the
//! HVAC-off pair.

use hvac_env::{ComfortRange, Observation, Policy, SetpointAction};

/// Static comfort-range setpoints (optionally with night setback).
///
/// Sinergym's default RBC holds the seasonal comfort-range setpoints
/// around the clock — which is exactly why it lands at the high-energy
/// end of the paper's Fig. 4. [`RuleBasedController::with_setback`]
/// builds the energy-saving variant that releases the setpoints while
/// the building is empty.
///
/// # Example
///
/// ```
/// use hvac_control::RuleBasedController;
/// use hvac_env::{ComfortRange, Disturbances, Observation, Policy};
///
/// let mut ctl = RuleBasedController::new(ComfortRange::winter());
/// let empty = Observation::new(18.0, Disturbances::default());
/// // The Sinergym-style default conditions even when empty.
/// assert_eq!(ctl.decide(&empty).heating(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RuleBasedController {
    occupied_action: SetpointAction,
    unoccupied_action: SetpointAction,
}

impl RuleBasedController {
    /// The Sinergym-style default: comfort-range setpoints held
    /// constantly, occupied or not. The bounds snap *into* the comfort
    /// range on the integer grid (heating = ⌈z̲⌉, cooling = ⌊z̄⌋) so the
    /// held band never pokes outside it.
    pub fn new(comfort: ComfortRange) -> Self {
        let hold = Self::comfort_hold_action(comfort);
        Self {
            occupied_action: hold,
            unoccupied_action: hold,
        }
    }

    /// A setback variant: comfort setpoints while occupied, HVAC-off
    /// while empty.
    pub fn with_setback(comfort: ComfortRange) -> Self {
        Self {
            occupied_action: Self::comfort_hold_action(comfort),
            unoccupied_action: SetpointAction::off(),
        }
    }

    /// The tightest legal setpoint pair inside the comfort range.
    fn comfort_hold_action(comfort: ComfortRange) -> SetpointAction {
        SetpointAction::from_clamped(comfort.lo().ceil(), comfort.hi().floor())
    }

    /// A schedule with explicit occupied/unoccupied actions.
    pub fn with_actions(occupied: SetpointAction, unoccupied: SetpointAction) -> Self {
        Self {
            occupied_action: occupied,
            unoccupied_action: unoccupied,
        }
    }

    /// The action used while occupied.
    pub fn occupied_action(&self) -> SetpointAction {
        self.occupied_action
    }

    /// The action used while unoccupied.
    pub fn unoccupied_action(&self) -> SetpointAction {
        self.unoccupied_action
    }
}

impl Policy for RuleBasedController {
    fn decide(&mut self, obs: &Observation) -> SetpointAction {
        if obs.is_occupied() {
            self.occupied_action
        } else {
            self.unoccupied_action
        }
    }

    fn name(&self) -> &str {
        "default"
    }

    fn is_deterministic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::Disturbances;

    fn obs(occupied: bool) -> Observation {
        Observation::new(
            21.0,
            Disturbances {
                occupant_count: if occupied { 3.0 } else { 0.0 },
                ..Disturbances::default()
            },
        )
    }

    #[test]
    fn occupied_holds_comfort_setpoints() {
        let mut c = RuleBasedController::new(ComfortRange::winter());
        let a = c.decide(&obs(true));
        assert_eq!(a.heating(), 20);
        assert_eq!(a.cooling(), 23); // 23.5 floors to 23: inside the range
    }

    #[test]
    fn default_holds_setpoints_around_the_clock() {
        let mut c = RuleBasedController::new(ComfortRange::winter());
        assert_eq!(c.decide(&obs(false)), c.decide(&obs(true)));
    }

    #[test]
    fn setback_variant_releases_when_empty() {
        let mut c = RuleBasedController::with_setback(ComfortRange::winter());
        assert_eq!(c.decide(&obs(false)), SetpointAction::off());
        assert_eq!(c.decide(&obs(true)).heating(), 20);
    }

    #[test]
    fn custom_actions_respected() {
        let occ = SetpointAction::new(22, 25).unwrap();
        let un = SetpointAction::new(16, 29).unwrap();
        let mut c = RuleBasedController::with_actions(occ, un);
        assert_eq!(c.decide(&obs(true)), occ);
        assert_eq!(c.decide(&obs(false)), un);
        assert_eq!(c.occupied_action(), occ);
        assert_eq!(c.unoccupied_action(), un);
    }

    #[test]
    fn is_deterministic_and_named() {
        let c = RuleBasedController::new(ComfortRange::winter());
        assert!(c.is_deterministic());
        assert_eq!(c.name(), "default");
    }
}
