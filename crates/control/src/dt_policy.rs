//! The extracted decision-tree policy — the paper's contribution
//! deployed as a controller.
//!
//! A fitted CART ([`hvac_dtree::DecisionTree`]) over the 6-dimensional
//! policy input, whose classes index the discrete setpoint action space.
//! Evaluation is a single root-to-leaf descent: deterministic, ~100 ns —
//! the source of the paper's 1127× computation-overhead reduction
//! (Table 3).

use crate::error::ControlError;
use hvac_dtree::DecisionTree;
use hvac_env::space::feature;
use hvac_env::{ActionSpace, Observation, Policy, SetpointAction, POLICY_INPUT_DIM};

/// A decision-tree policy over the HVAC action space.
///
/// # Example
///
/// ```no_run
/// use hvac_control::DtPolicy;
/// use hvac_dtree::{DecisionTree, TreeConfig};
/// use hvac_env::{ActionSpace, Observation, Policy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let inputs: Vec<Vec<f64>> = vec![vec![0.0; 6]];
/// # let labels = vec![0usize];
/// let tree = DecisionTree::fit(&inputs, &labels, ActionSpace::new().len(),
///                              &TreeConfig::default())?;
/// let mut policy = DtPolicy::new(tree)?;
/// let action = policy.decide(&Observation::default());
/// println!("the tree commands {action}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DtPolicy {
    tree: DecisionTree,
    action_space: ActionSpace,
}

impl DtPolicy {
    /// Wraps a fitted tree as a policy.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::FeatureMismatch`] if the tree was not
    /// fitted on [`POLICY_INPUT_DIM`]-wide inputs, and
    /// [`ControlError::ClassMismatch`] if its class count differs from
    /// the action space.
    pub fn new(tree: DecisionTree) -> Result<Self, ControlError> {
        let action_space = ActionSpace::new();
        if tree.n_features() != POLICY_INPUT_DIM {
            return Err(ControlError::FeatureMismatch {
                tree: tree.n_features(),
                env: POLICY_INPUT_DIM,
            });
        }
        if tree.n_classes() != action_space.len() {
            return Err(ControlError::ClassMismatch {
                tree: tree.n_classes(),
                actions: action_space.len(),
            });
        }
        Ok(Self { tree, action_space })
    }

    /// Borrow the underlying tree (for verification and inspection).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Mutable access to the tree (Algorithm 1 edits failed leaves).
    pub fn tree_mut(&mut self) -> &mut DecisionTree {
        &mut self.tree
    }

    /// Consumes the policy, returning the tree.
    pub fn into_tree(self) -> DecisionTree {
        self.tree
    }

    /// The action space used for class↔action mapping.
    pub fn action_space(&self) -> &ActionSpace {
        &self.action_space
    }

    /// Serializes the policy to the compact text format of
    /// [`hvac_dtree::serialize`]. The action-space mapping is canonical,
    /// so the tree alone fully determines the policy.
    pub fn to_compact_string(&self) -> String {
        self.tree.to_compact_string()
    }

    /// Loads a policy from the compact text format, re-validating the
    /// feature and class dimensions against the HVAC spaces.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and the dimension checks of
    /// [`DtPolicy::new`].
    pub fn from_compact_string(text: &str) -> Result<Self, ControlError> {
        let tree =
            DecisionTree::from_compact_string(text).map_err(|_| ControlError::FeatureMismatch {
                tree: 0,
                env: POLICY_INPUT_DIM,
            })?;
        Self::new(tree)
    }

    /// Renders the policy as human-readable rules using the paper's
    /// feature names.
    pub fn to_text(&self) -> String {
        let class_names: Vec<String> = self.action_space.iter().map(|a| a.to_string()).collect();
        let class_refs: Vec<&str> = class_names.iter().map(String::as_str).collect();
        self.tree.to_text(&feature::NAMES, &class_refs)
    }

    /// [`Policy::decide`] without `&mut`: the tree descent mutates
    /// nothing, so a shared policy (one registry entry serving many
    /// tenants) can evaluate concurrently.
    pub fn decide_shared(&self, obs: &Observation) -> SetpointAction {
        let x = obs.to_vector();
        let class = self
            .tree
            .predict(&x)
            .expect("tree width validated at construction");
        self.action_space
            .action(class)
            .expect("class count validated at construction")
    }

    /// Evaluates a batch of observations in one call, appending one
    /// action per observation to `out` — the fleet-serving extension of
    /// PR 3's lockstep idiom: concurrent tenants' evaluations coalesce
    /// into a single pass over the shared tree (root and hot split
    /// nodes stay cache-resident) instead of N interleaved descents.
    /// Bit-identical to per-observation [`DtPolicy::decide_shared`].
    pub fn decide_batch_into(&self, observations: &[Observation], out: &mut Vec<SetpointAction>) {
        out.reserve(observations.len());
        for obs in observations {
            out.push(self.decide_shared(obs));
        }
    }
}

impl Policy for DtPolicy {
    fn decide(&mut self, obs: &Observation) -> SetpointAction {
        self.decide_shared(obs)
    }

    fn name(&self) -> &str {
        "dt"
    }

    fn is_deterministic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_dtree::TreeConfig;
    use hvac_env::Disturbances;

    /// A tiny decision dataset: cold zones → heat (class of (23, 30)),
    /// warm zones → off.
    fn toy_tree() -> DecisionTree {
        let space = ActionSpace::new();
        let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
        let off = space.index_of(SetpointAction::off());
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let temp = 14.0 + i as f64 * 0.5;
            let mut row = vec![0.0; POLICY_INPUT_DIM];
            row[feature::ZONE_TEMPERATURE] = temp;
            inputs.push(row);
            labels.push(if temp < 20.0 { heat } else { off });
        }
        DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap()
    }

    fn obs(temp: f64) -> Observation {
        Observation::new(temp, Disturbances::default())
    }

    #[test]
    fn routes_to_expected_actions() {
        let mut p = DtPolicy::new(toy_tree()).unwrap();
        assert_eq!(p.decide(&obs(15.0)), SetpointAction::new(23, 30).unwrap());
        assert_eq!(p.decide(&obs(23.0)), SetpointAction::off());
    }

    #[test]
    fn deterministic_repeated_decisions() {
        let mut p = DtPolicy::new(toy_tree()).unwrap();
        let o = obs(18.3);
        let first = p.decide(&o);
        for _ in 0..100 {
            assert_eq!(p.decide(&o), first);
        }
        assert!(p.is_deterministic());
    }

    #[test]
    fn batch_decide_matches_scalar_decides() {
        let mut p = DtPolicy::new(toy_tree()).unwrap();
        let observations: Vec<Observation> = (0..50).map(|i| obs(14.0 + i as f64 * 0.2)).collect();
        let mut batched = Vec::new();
        p.decide_batch_into(&observations, &mut batched);
        assert_eq!(batched.len(), observations.len());
        for (o, b) in observations.iter().zip(&batched) {
            assert_eq!(p.decide(o), *b);
            assert_eq!(p.decide_shared(o), *b);
        }
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let tree = DecisionTree::fit(
            &[vec![0.0], vec![1.0]],
            &[0, 1],
            ActionSpace::new().len(),
            &TreeConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            DtPolicy::new(tree),
            Err(ControlError::FeatureMismatch { tree: 1, env: 7 })
        ));
    }

    #[test]
    fn rejects_wrong_class_count() {
        let tree = DecisionTree::fit(
            &[vec![0.0; POLICY_INPUT_DIM], vec![1.0; POLICY_INPUT_DIM]],
            &[0, 1],
            2,
            &TreeConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            DtPolicy::new(tree),
            Err(ControlError::ClassMismatch {
                tree: 2,
                actions: 90
            })
        ));
    }

    #[test]
    fn text_rendering_uses_domain_names() {
        let p = DtPolicy::new(toy_tree()).unwrap();
        let text = p.to_text();
        assert!(text.contains("zone_air_temperature"));
        assert!(text.contains("heat 23 °C / cool 30 °C"));
    }

    #[test]
    fn tree_mut_allows_editing() {
        let mut p = DtPolicy::new(toy_tree()).unwrap();
        let o = obs(15.0);
        let space = ActionSpace::new();
        let target = space.index_of(SetpointAction::new(21, 25).unwrap());
        let leaf = p.tree().apply(&o.to_vector()).unwrap();
        p.tree_mut().set_leaf_class(leaf, target).unwrap();
        assert_eq!(p.decide(&o), SetpointAction::new(21, 25).unwrap());
    }
}
