//! The extracted decision-tree policy — the paper's contribution
//! deployed as a controller.
//!
//! A fitted CART ([`hvac_dtree::DecisionTree`]) over the 6-dimensional
//! policy input, whose classes index the discrete setpoint action space.
//! Evaluation is a single root-to-leaf descent: deterministic, ~100 ns —
//! the source of the paper's 1127× computation-overhead reduction
//! (Table 3).

use crate::error::ControlError;
use hvac_dtree::{prove_equivalence, CompileOptions, CompiledTree, DecisionTree, EquivalenceProof};
use hvac_env::space::feature;
use hvac_env::{ActionSpace, Observation, Policy, SetpointAction, POLICY_INPUT_DIM};

/// A decision-tree policy over the HVAC action space.
///
/// # Example
///
/// ```no_run
/// use hvac_control::DtPolicy;
/// use hvac_dtree::{DecisionTree, TreeConfig};
/// use hvac_env::{ActionSpace, Observation, Policy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let inputs: Vec<Vec<f64>> = vec![vec![0.0; 6]];
/// # let labels = vec![0usize];
/// let tree = DecisionTree::fit(&inputs, &labels, ActionSpace::new().len(),
///                              &TreeConfig::default())?;
/// let mut policy = DtPolicy::new(tree)?;
/// let action = policy.decide(&Observation::default());
/// println!("the tree commands {action}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DtPolicy {
    tree: DecisionTree,
    action_space: ActionSpace,
    /// Flat branchless kernel, present only when the proof-of-
    /// equivalence sweep passed for this exact tree. Invalidated by
    /// [`DtPolicy::tree_mut`]; rebuilt by [`DtPolicy::recompile`].
    compiled: Option<CompiledTree>,
}

/// The compiled kernel is derived data (recomputed deterministically
/// from the tree), so policy equality is tree + action-space equality —
/// an edited-then-recompiled policy equals its uncompiled twin.
impl PartialEq for DtPolicy {
    fn eq(&self, other: &Self) -> bool {
        self.tree == other.tree && self.action_space == other.action_space
    }
}

impl DtPolicy {
    /// Wraps a fitted tree as a policy.
    ///
    /// Validates the tree structurally (a malformed tree — cycle,
    /// dangling child, NaN threshold — is rejected, never served), then
    /// compiles the flat kernel and proves it equivalent over the
    /// verification box grid. If compilation or the proof fails the
    /// policy still constructs and serves the reference enum walk.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::FeatureMismatch`] if the tree was not
    /// fitted on [`POLICY_INPUT_DIM`]-wide inputs,
    /// [`ControlError::ClassMismatch`] if its class count differs from
    /// the action space, and [`ControlError::BadTree`] for structural
    /// offenses.
    pub fn new(tree: DecisionTree) -> Result<Self, ControlError> {
        let mut policy = Self::new_uncompiled(tree)?;
        policy.recompile();
        Ok(policy)
    }

    /// [`DtPolicy::new`] without the compiled kernel: every decision
    /// runs the reference enum walk. Exists so benchmarks and tests can
    /// A/B the two kernels; production paths should use `new`.
    ///
    /// # Errors
    ///
    /// Same dimension and structural checks as [`DtPolicy::new`].
    pub fn new_uncompiled(tree: DecisionTree) -> Result<Self, ControlError> {
        let action_space = ActionSpace::new();
        if tree.n_features() != POLICY_INPUT_DIM {
            return Err(ControlError::FeatureMismatch {
                tree: tree.n_features(),
                env: POLICY_INPUT_DIM,
            });
        }
        if tree.n_classes() != action_space.len() {
            return Err(ControlError::ClassMismatch {
                tree: tree.n_classes(),
                actions: action_space.len(),
            });
        }
        tree.validate_structure().map_err(ControlError::BadTree)?;
        Ok(Self {
            tree,
            action_space,
            compiled: None,
        })
    }

    /// Compiles the flat kernel for the current tree and proves it
    /// equivalent; the kernel serves only if the proof passes. Returns
    /// the proof, or `None` when compilation or the proof failed (the
    /// policy then serves the enum walk).
    pub fn recompile(&mut self) -> Option<EquivalenceProof> {
        self.compiled = None;
        let compiled = CompiledTree::compile(&self.tree, CompileOptions::default()).ok()?;
        let proof = prove_equivalence(&self.tree, &compiled).ok()?;
        self.compiled = Some(compiled);
        Some(proof)
    }

    /// The proven compiled kernel, if one is active.
    pub fn compiled(&self) -> Option<&CompiledTree> {
        self.compiled.as_ref()
    }

    /// The serialized compiled artifact (`ctree v1`) whose content hash
    /// the verification certificate binds, if a proven kernel is active.
    pub fn compiled_artifact(&self) -> Option<String> {
        self.compiled.as_ref().map(CompiledTree::to_compact_string)
    }

    /// Borrow the underlying tree (for verification and inspection).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Mutable access to the tree (Algorithm 1 edits failed leaves).
    ///
    /// Drops the compiled kernel: any edit invalidates the equivalence
    /// proof, so subsequent decisions run the enum walk until
    /// [`DtPolicy::recompile`] re-proves a fresh kernel.
    pub fn tree_mut(&mut self) -> &mut DecisionTree {
        self.compiled = None;
        &mut self.tree
    }

    /// Consumes the policy, returning the tree.
    pub fn into_tree(self) -> DecisionTree {
        self.tree
    }

    /// The action space used for class↔action mapping.
    pub fn action_space(&self) -> &ActionSpace {
        &self.action_space
    }

    /// Serializes the policy to the compact text format of
    /// [`hvac_dtree::serialize`]. The action-space mapping is canonical,
    /// so the tree alone fully determines the policy.
    pub fn to_compact_string(&self) -> String {
        self.tree.to_compact_string()
    }

    /// Loads a policy from the compact text format, re-validating the
    /// feature and class dimensions against the HVAC spaces.
    ///
    /// # Errors
    ///
    /// Parse and structural failures come back as
    /// [`ControlError::BadTree`] wrapping the typed
    /// [`hvac_dtree::TreeError`] (so a manifest loader can report *why*
    /// a tenant's policy was rejected), plus the dimension checks of
    /// [`DtPolicy::new`].
    pub fn from_compact_string(text: &str) -> Result<Self, ControlError> {
        let tree = DecisionTree::from_compact_string(text).map_err(ControlError::BadTree)?;
        Self::new(tree)
    }

    /// Renders the policy as human-readable rules using the paper's
    /// feature names.
    pub fn to_text(&self) -> String {
        let class_names: Vec<String> = self.action_space.iter().map(|a| a.to_string()).collect();
        let class_refs: Vec<&str> = class_names.iter().map(String::as_str).collect();
        self.tree.to_text(&feature::NAMES, &class_refs)
    }

    /// [`Policy::decide`] without `&mut`: the tree descent mutates
    /// nothing, so a shared policy (one registry entry serving many
    /// tenants) can evaluate concurrently. Runs the proven compiled
    /// kernel when one is active (bit-identical by proof), else the
    /// reference enum walk.
    pub fn decide_shared(&self, obs: &Observation) -> SetpointAction {
        let x = obs.to_vector();
        let class = match &self.compiled {
            Some(kernel) => kernel
                .predict(&x)
                .expect("kernel width validated at compile"),
            None => self
                .tree
                .predict(&x)
                .expect("tree validated at construction"),
        };
        self.action_space
            .action(class)
            .expect("class count validated at construction")
    }

    /// Evaluates a batch of observations in one call, appending one
    /// action per observation to `out` — the fleet-serving extension of
    /// PR 3's lockstep idiom: concurrent tenants' evaluations coalesce
    /// into a single pass over the shared tree instead of N interleaved
    /// descents. With a proven compiled kernel active, the batch runs
    /// the eight-wide wavefront descent of
    /// [`hvac_dtree::CompiledTree::predict_batch_into`]; either way the
    /// result is bit-identical to per-observation
    /// [`DtPolicy::decide_shared`].
    pub fn decide_batch_into(&self, observations: &[Observation], out: &mut Vec<SetpointAction>) {
        out.reserve(observations.len());
        if let Some(kernel) = &self.compiled {
            let mut rows = Vec::with_capacity(observations.len() * POLICY_INPUT_DIM);
            for obs in observations {
                rows.extend_from_slice(&obs.to_vector());
            }
            let mut classes = Vec::new();
            kernel
                .predict_batch_into(&rows, &mut classes)
                .expect("kernel width validated at compile");
            for class in classes {
                out.push(
                    self.action_space
                        .action(class)
                        .expect("class count validated at construction"),
                );
            }
        } else {
            for obs in observations {
                out.push(self.decide_shared(obs));
            }
        }
    }
}

impl Policy for DtPolicy {
    fn decide(&mut self, obs: &Observation) -> SetpointAction {
        self.decide_shared(obs)
    }

    fn name(&self) -> &str {
        "dt"
    }

    fn is_deterministic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_dtree::TreeConfig;
    use hvac_env::Disturbances;

    /// A tiny decision dataset: cold zones → heat (class of (23, 30)),
    /// warm zones → off.
    fn toy_tree() -> DecisionTree {
        let space = ActionSpace::new();
        let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
        let off = space.index_of(SetpointAction::off());
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let temp = 14.0 + i as f64 * 0.5;
            let mut row = vec![0.0; POLICY_INPUT_DIM];
            row[feature::ZONE_TEMPERATURE] = temp;
            inputs.push(row);
            labels.push(if temp < 20.0 { heat } else { off });
        }
        DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap()
    }

    fn obs(temp: f64) -> Observation {
        Observation::new(temp, Disturbances::default())
    }

    #[test]
    fn routes_to_expected_actions() {
        let mut p = DtPolicy::new(toy_tree()).unwrap();
        assert_eq!(p.decide(&obs(15.0)), SetpointAction::new(23, 30).unwrap());
        assert_eq!(p.decide(&obs(23.0)), SetpointAction::off());
    }

    #[test]
    fn deterministic_repeated_decisions() {
        let mut p = DtPolicy::new(toy_tree()).unwrap();
        let o = obs(18.3);
        let first = p.decide(&o);
        for _ in 0..100 {
            assert_eq!(p.decide(&o), first);
        }
        assert!(p.is_deterministic());
    }

    #[test]
    fn batch_decide_matches_scalar_decides() {
        let mut p = DtPolicy::new(toy_tree()).unwrap();
        let observations: Vec<Observation> = (0..50).map(|i| obs(14.0 + i as f64 * 0.2)).collect();
        let mut batched = Vec::new();
        p.decide_batch_into(&observations, &mut batched);
        assert_eq!(batched.len(), observations.len());
        for (o, b) in observations.iter().zip(&batched) {
            assert_eq!(p.decide(o), *b);
            assert_eq!(p.decide_shared(o), *b);
        }
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let tree = DecisionTree::fit(
            &[vec![0.0], vec![1.0]],
            &[0, 1],
            ActionSpace::new().len(),
            &TreeConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            DtPolicy::new(tree),
            Err(ControlError::FeatureMismatch { tree: 1, env: 7 })
        ));
    }

    #[test]
    fn rejects_wrong_class_count() {
        let tree = DecisionTree::fit(
            &[vec![0.0; POLICY_INPUT_DIM], vec![1.0; POLICY_INPUT_DIM]],
            &[0, 1],
            2,
            &TreeConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            DtPolicy::new(tree),
            Err(ControlError::ClassMismatch {
                tree: 2,
                actions: 90
            })
        ));
    }

    #[test]
    fn text_rendering_uses_domain_names() {
        let p = DtPolicy::new(toy_tree()).unwrap();
        let text = p.to_text();
        assert!(text.contains("zone_air_temperature"));
        assert!(text.contains("heat 23 °C / cool 30 °C"));
    }

    #[test]
    fn tree_mut_allows_editing() {
        let mut p = DtPolicy::new(toy_tree()).unwrap();
        let o = obs(15.0);
        let space = ActionSpace::new();
        let target = space.index_of(SetpointAction::new(21, 25).unwrap());
        let leaf = p.tree().apply(&o.to_vector()).unwrap();
        p.tree_mut().set_leaf_class(leaf, target).unwrap();
        assert_eq!(p.decide(&o), SetpointAction::new(21, 25).unwrap());
    }

    #[test]
    fn construction_proves_and_activates_the_compiled_kernel() {
        let p = DtPolicy::new(toy_tree()).unwrap();
        let kernel = p.compiled().expect("proof passes for fitted trees");
        assert_eq!(kernel.n_features(), POLICY_INPUT_DIM);
        assert!(p.compiled_artifact().unwrap().starts_with("ctree v1\n"));
    }

    #[test]
    fn compiled_and_enum_walk_decide_identically() {
        let compiled = DtPolicy::new(toy_tree()).unwrap();
        let reference = DtPolicy::new_uncompiled(toy_tree()).unwrap();
        assert!(compiled.compiled().is_some());
        assert!(reference.compiled().is_none());
        assert_eq!(
            compiled, reference,
            "derived kernel must not affect equality"
        );
        let observations: Vec<Observation> =
            (0..60).map(|i| obs(12.0 + f64::from(i) * 0.25)).collect();
        let (mut fast, mut slow) = (Vec::new(), Vec::new());
        compiled.decide_batch_into(&observations, &mut fast);
        reference.decide_batch_into(&observations, &mut slow);
        assert_eq!(fast, slow);
        for o in &observations {
            assert_eq!(compiled.decide_shared(o), reference.decide_shared(o));
        }
    }

    #[test]
    fn tree_mut_invalidates_the_kernel_and_recompile_restores_it() {
        let mut p = DtPolicy::new(toy_tree()).unwrap();
        assert!(p.compiled().is_some());
        let o = obs(15.0);
        let space = ActionSpace::new();
        let target = space.index_of(SetpointAction::new(21, 25).unwrap());
        let leaf = p.tree().apply(&o.to_vector()).unwrap();
        p.tree_mut().set_leaf_class(leaf, target).unwrap();
        // A stale kernel would still serve the pre-edit class; the edit
        // must drop it so the enum walk serves the corrected tree.
        assert!(p.compiled().is_none());
        assert_eq!(p.decide_shared(&o), SetpointAction::new(21, 25).unwrap());
        let proof = p.recompile().expect("re-proof passes");
        assert!(proof.probes > 0);
        assert_eq!(p.decide_shared(&o), SetpointAction::new(21, 25).unwrap());
        assert!(p.compiled().is_some());
    }

    #[test]
    fn parse_failures_carry_the_typed_tree_error() {
        let cyclic = "dtree v1\nfeatures 7\nclasses 90\nnodes 3\nL 0 1\nS 0 1.0 2 2\nL 1 1\n";
        match DtPolicy::from_compact_string(cyclic) {
            Err(ControlError::BadTree(err)) => {
                assert!(!err.to_string().is_empty());
            }
            other => panic!("expected BadTree, got {other:?}"),
        }
        let garbage = DtPolicy::from_compact_string("not a tree");
        assert!(matches!(garbage, Err(ControlError::BadTree(_))));
    }
}
