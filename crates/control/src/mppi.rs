//! Model Predictive Path Integral (MPPI) control.
//!
//! The second stochastic optimizer the paper's MBRL background cites
//! (Section 2.1). MPPI keeps a nominal action sequence, perturbs it with
//! Gaussian noise, weights the perturbed rollouts by the softmax of
//! their returns (temperature λ), and executes the first action of the
//! weighted mean. Like random shooting it is stochastic — and therefore
//! another instance of the reliability problem the paper attacks.

use crate::error::ControlError;
use crate::planner::{evaluate_sequence, PlanningConfig, Predictor};
use hvac_env::{Observation, Policy, SetpointAction};
use hvac_stats::{sample_standard_normal, seeded_rng};
use rand::rngs::StdRng;

/// MPPI hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MppiConfig {
    /// Number of perturbed rollouts per decision.
    pub samples: usize,
    /// Standard deviation of the setpoint perturbation, °C.
    pub noise_std: f64,
    /// Softmax temperature λ.
    pub lambda: f64,
    /// Shared planning settings.
    pub planning: PlanningConfig,
}

impl MppiConfig {
    /// Reference configuration (samples matched to the RS baseline).
    pub fn paper() -> Self {
        Self {
            samples: 1000,
            noise_std: 2.0,
            lambda: 1.0,
            planning: PlanningConfig::paper(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadPlannerConfig`] for non-positive
    /// samples, noise, or λ.
    pub fn validate(&self) -> Result<(), ControlError> {
        if self.samples == 0 {
            return Err(ControlError::BadPlannerConfig {
                name: "samples",
                value: 0.0,
            });
        }
        if !(self.noise_std > 0.0) {
            return Err(ControlError::BadPlannerConfig {
                name: "noise_std",
                value: self.noise_std,
            });
        }
        if !(self.lambda > 0.0) {
            return Err(ControlError::BadPlannerConfig {
                name: "lambda",
                value: self.lambda,
            });
        }
        self.planning.validate()
    }
}

impl Default for MppiConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The MPPI controller.
pub struct MppiController<P> {
    predictor: P,
    config: MppiConfig,
    rng: StdRng,
    /// Nominal continuous sequence: `(heating, cooling)` per step.
    nominal: Vec<(f64, f64)>,
}

impl<P: Predictor> MppiController<P> {
    /// Creates a controller around a trained predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadPlannerConfig`] for an invalid
    /// configuration.
    pub fn new(predictor: P, config: MppiConfig, seed: u64) -> Result<Self, ControlError> {
        config.validate()?;
        let nominal = vec![(20.0, 25.0); config.planning.horizon];
        Ok(Self {
            predictor,
            config,
            rng: seeded_rng(seed),
            nominal,
        })
    }

    /// One MPPI optimization; updates the nominal sequence and returns
    /// the first action.
    pub fn plan(&mut self, obs: &Observation) -> SetpointAction {
        let h = self.config.planning.horizon;
        let k = self.config.samples;
        let mut perturbed: Vec<Vec<(f64, f64)>> = Vec::with_capacity(k);
        let mut returns = Vec::with_capacity(k);

        for _ in 0..k {
            let seq: Vec<(f64, f64)> = self
                .nominal
                .iter()
                .map(|&(heat, cool)| {
                    (
                        heat + self.config.noise_std * sample_standard_normal(&mut self.rng),
                        cool + self.config.noise_std * sample_standard_normal(&mut self.rng),
                    )
                })
                .collect();
            let actions: Vec<SetpointAction> = seq
                .iter()
                .map(|&(heat, cool)| SetpointAction::from_clamped(heat, cool))
                .collect();
            let ret = evaluate_sequence(&self.predictor, obs, &actions, &self.config.planning);
            perturbed.push(seq);
            returns.push(ret);
        }

        // Softmax weights on returns.
        let max_ret = returns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = returns
            .iter()
            .map(|&r| ((r - max_ret) / self.config.lambda).exp())
            .collect();
        let weight_sum: f64 = weights.iter().sum();

        let mut new_nominal = vec![(0.0, 0.0); h];
        for (seq, w) in perturbed.iter().zip(&weights) {
            for (n, &(heat, cool)) in new_nominal.iter_mut().zip(seq) {
                n.0 += w * heat / weight_sum;
                n.1 += w * cool / weight_sum;
            }
        }
        self.nominal = new_nominal;

        let (heat, cool) = self.nominal[0];
        let action = SetpointAction::from_clamped(heat, cool);

        // Receding horizon: shift the nominal left, repeat the tail.
        self.nominal.rotate_left(1);
        let last = *self.nominal.last().expect("horizon >= 1");
        *self.nominal.last_mut().expect("horizon >= 1") = last;

        action
    }
}

impl<P: Predictor> Policy for MppiController<P> {
    fn decide(&mut self, obs: &Observation) -> SetpointAction {
        self.plan(obs)
    }

    fn name(&self) -> &str {
        "mbrl-mppi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::Disturbances;

    struct Toy;
    impl Predictor for Toy {
        fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64 {
            let s = obs.zone_temperature;
            let pull = 0.3 * (f64::from(action.heating()) - s).max(0.0)
                - 0.3 * (s - f64::from(action.cooling())).max(0.0);
            s + pull - 0.1
        }
    }

    fn obs(temp: f64, occupied: bool) -> Observation {
        Observation::new(
            temp,
            Disturbances {
                occupant_count: if occupied { 4.0 } else { 0.0 },
                ..Disturbances::default()
            },
        )
    }

    fn quick() -> MppiConfig {
        MppiConfig {
            samples: 120,
            ..MppiConfig::paper()
        }
    }

    #[test]
    fn rejects_bad_config() {
        for bad in [
            MppiConfig {
                samples: 0,
                ..quick()
            },
            MppiConfig {
                noise_std: 0.0,
                ..quick()
            },
            MppiConfig {
                lambda: -1.0,
                ..quick()
            },
        ] {
            assert!(MppiController::new(Toy, bad, 0).is_err());
        }
    }

    #[test]
    fn heats_cold_occupied_zone() {
        let mut c = MppiController::new(Toy, quick(), 1).unwrap();
        // Let the nominal sequence adapt over a few planning rounds.
        let mut a = SetpointAction::off();
        for _ in 0..5 {
            a = c.plan(&obs(16.0, true));
        }
        assert!(a.heating() >= 19, "chose {a}");
    }

    #[test]
    fn relaxes_when_unoccupied() {
        let mut c = MppiController::new(Toy, quick(), 2).unwrap();
        let mut a = SetpointAction::off();
        for _ in 0..5 {
            a = c.plan(&obs(21.0, false));
        }
        assert!(a.energy_proxy() <= 6.0, "chose {a}");
    }

    #[test]
    fn stochastic_across_seeds() {
        // A single MPPI step from the same nominal averages out much of
        // the noise, so stochasticity is observed over a short receding-
        // horizon run with a small sample count.
        let noisy = MppiConfig {
            samples: 30,
            noise_std: 3.0,
            ..MppiConfig::paper()
        };
        let o = obs(21.0, true);
        let sequences: std::collections::HashSet<Vec<SetpointAction>> = (0..8)
            .map(|seed| {
                let mut c = MppiController::new(Toy, noisy, seed).unwrap();
                (0..6).map(|_| c.plan(&o)).collect()
            })
            .collect();
        assert!(sequences.len() > 1);
    }

    #[test]
    fn named_and_stochastic() {
        let c = MppiController::new(Toy, quick(), 0).unwrap();
        assert_eq!(c.name(), "mbrl-mppi");
        assert!(!c.is_deterministic());
    }
}
