//! CLUE-style uncertainty-gated MBRL — the paper's state-of-the-art
//! baseline \[1\].
//!
//! CLUE (An et al., "CLUE: Safe Model-Based RL HVAC Control Using
//! Epistemic Uncertainty Estimation", BuildSys'23) wraps an MBRL planner
//! with an epistemic-uncertainty monitor: the dynamics model is an
//! ensemble, and when the ensemble's disagreement on the planned action
//! exceeds a threshold the controller falls back to a safe rule-based
//! action instead of trusting the model. This reproduction keeps that
//! mechanism: random-shooting over the ensemble mean, gated by the
//! ensemble's predictive standard deviation.

use crate::error::ControlError;
use crate::random_shooting::{RandomShootingConfig, RandomShootingController};
use crate::rule_based::RuleBasedController;
use hvac_dynamics::DynamicsEnsemble;
use hvac_env::{Observation, Policy, SetpointAction};

/// CLUE hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClueConfig {
    /// Underlying planner settings.
    pub planner: RandomShootingConfig,
    /// Epistemic-uncertainty threshold, °C of ensemble disagreement on
    /// the one-step prediction of the planned action. Above it the
    /// controller falls back.
    pub uncertainty_threshold: f64,
}

impl ClueConfig {
    /// Reference configuration.
    pub fn paper() -> Self {
        Self {
            planner: RandomShootingConfig::paper(),
            uncertainty_threshold: 0.6,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadPlannerConfig`] for a non-positive
    /// threshold or an invalid planner configuration.
    pub fn validate(&self) -> Result<(), ControlError> {
        if !(self.uncertainty_threshold > 0.0) {
            return Err(ControlError::BadPlannerConfig {
                name: "uncertainty_threshold",
                value: self.uncertainty_threshold,
            });
        }
        self.planner.validate()
    }
}

impl Default for ClueConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The CLUE controller: ensemble-planned, uncertainty-gated.
pub struct ClueController {
    planner: RandomShootingController<DynamicsEnsemble>,
    fallback: RuleBasedController,
    threshold: f64,
    fallback_count: u64,
    decision_count: u64,
}

impl ClueController {
    /// Creates a CLUE controller from a trained ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadPlannerConfig`] for an invalid
    /// configuration.
    pub fn new(
        ensemble: DynamicsEnsemble,
        config: ClueConfig,
        fallback: RuleBasedController,
        seed: u64,
    ) -> Result<Self, ControlError> {
        config.validate()?;
        Ok(Self {
            planner: RandomShootingController::new(ensemble, config.planner, seed)?,
            fallback,
            threshold: config.uncertainty_threshold,
            fallback_count: 0,
            decision_count: 0,
        })
    }

    /// Fraction of decisions that fell back to the rule-based action.
    pub fn fallback_rate(&self) -> f64 {
        if self.decision_count == 0 {
            0.0
        } else {
            self.fallback_count as f64 / self.decision_count as f64
        }
    }

    /// Total decisions taken.
    pub fn decision_count(&self) -> u64 {
        self.decision_count
    }
}

impl Policy for ClueController {
    fn decide(&mut self, obs: &Observation) -> SetpointAction {
        self.decision_count += 1;
        let planned = self.planner.plan(obs);
        let (_, uncertainty) = self
            .planner
            .predictor()
            .predict_with_uncertainty(obs, planned);
        if uncertainty > self.threshold {
            self.fallback_count += 1;
            self.fallback.decide(obs)
        } else {
            planned
        }
    }

    fn name(&self) -> &str {
        "clue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlanningConfig;
    use hvac_dynamics::{EnsembleConfig, ModelConfig, TransitionDataset};
    use hvac_env::{ComfortRange, Disturbances, Transition};
    use hvac_nn::TrainConfig;

    fn synthetic_dataset(n: usize) -> TransitionDataset {
        (0..n)
            .map(|i| {
                let s = 17.0 + (i % 8) as f64;
                let h = 15 + (i % 9) as i32;
                let c = 21 + (i % 10) as i32;
                let action = SetpointAction::new(h, c).unwrap();
                Transition {
                    observation: Observation::new(s, Disturbances::default()),
                    action,
                    next_zone_temperature: 0.85 * s + 0.15 * f64::from(h),
                }
            })
            .collect()
    }

    fn ensemble() -> DynamicsEnsemble {
        let config = EnsembleConfig {
            members: 3,
            model: ModelConfig {
                hidden: vec![16],
                train: TrainConfig {
                    epochs: 40,
                    ..TrainConfig::paper()
                },
                ..ModelConfig::default()
            },
            bootstrap: true,
        };
        DynamicsEnsemble::train(&synthetic_dataset(100), &config).unwrap()
    }

    fn quick_planner() -> RandomShootingConfig {
        RandomShootingConfig {
            samples: 60,
            planning: PlanningConfig::paper(),
            ..RandomShootingConfig::paper()
        }
    }

    #[test]
    fn rejects_bad_threshold() {
        let config = ClueConfig {
            uncertainty_threshold: 0.0,
            planner: quick_planner(),
        };
        assert!(ClueController::new(
            ensemble(),
            config,
            RuleBasedController::new(ComfortRange::winter()),
            0
        )
        .is_err());
    }

    #[test]
    fn trusts_model_in_distribution() {
        let config = ClueConfig {
            uncertainty_threshold: 50.0, // effectively never falls back
            planner: quick_planner(),
        };
        let mut c = ClueController::new(
            ensemble(),
            config,
            RuleBasedController::new(ComfortRange::winter()),
            1,
        )
        .unwrap();
        let obs = Observation::new(20.0, Disturbances::default());
        let _ = c.decide(&obs);
        assert_eq!(c.fallback_rate(), 0.0);
    }

    #[test]
    fn falls_back_when_uncertain() {
        let config = ClueConfig {
            uncertainty_threshold: 1e-12, // always uncertain
            planner: quick_planner(),
        };
        let fallback = RuleBasedController::new(ComfortRange::winter());
        let expected = {
            let mut f = fallback.clone();
            f.decide(&Observation::new(20.0, Disturbances::default()))
        };
        let mut c = ClueController::new(ensemble(), config, fallback, 1).unwrap();
        let obs = Observation::new(20.0, Disturbances::default());
        let a = c.decide(&obs);
        assert_eq!(a, expected);
        assert_eq!(c.fallback_rate(), 1.0);
        assert_eq!(c.decision_count(), 1);
    }

    #[test]
    fn named_clue() {
        let c = ClueController::new(
            ensemble(),
            ClueConfig {
                planner: quick_planner(),
                ..ClueConfig::paper()
            },
            RuleBasedController::new(ComfortRange::winter()),
            0,
        )
        .unwrap();
        assert_eq!(c.name(), "clue");
        assert_eq!(c.fallback_rate(), 0.0);
    }
}
