//! Random-shooting MPC — the paper's "MBRL \[9\]" baseline.
//!
//! At each step the controller samples `N` uniformly random action
//! sequences of length `H` from the discrete action space, scores each
//! by the discounted model-predicted return (Eq. 1), and executes the
//! first action of the best sequence. With `N = 1000`, `H = 20` (the
//! configuration validated in the paper's reference \[9\]) the decision is
//! stochastic: rerunning the optimizer on the same input generally
//! yields a different setpoint — the instability the paper's Fig. 1
//! demonstrates and its decision-tree extraction removes.

use crate::error::ControlError;
use crate::planner::{
    evaluate_sequence, evaluate_sequences_lockstep, LockstepWorkspace, PlanningConfig, Predictor,
};
use hvac_env::{ActionSpace, Observation, Policy, SetpointAction};
use hvac_stats::{seeded_rng, split_seed};
use hvac_telemetry::{Counter, Histogram, LATENCY_BOUNDS_NS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Random-shooting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomShootingConfig {
    /// Number of candidate sequences per decision (paper: 1000).
    pub samples: usize,
    /// Shared planning settings (horizon, discount, reward).
    pub planning: PlanningConfig,
    /// Worker threads for candidate evaluation. `1` (the default) runs
    /// sequentially; larger values fan the samples out with crossbeam
    /// scoped threads (clamped to `samples` — surplus workers would
    /// receive empty quotas). Results are identical across thread
    /// counts — each worker derives its own seed and the argmax merge
    /// is deterministic by (return, worker, order).
    pub threads: usize,
    /// Evaluate candidates in lockstep through the predictor's batched
    /// path (`true`, the default): all `samples` sequences advance one
    /// horizon step at a time, costing `H` batched model calls instead
    /// of `N × H` scalar calls. The chosen action is bit-identical to
    /// the scalar path for the same seed — candidates are drawn in the
    /// same RNG order, scored with bit-identical arithmetic, and
    /// arg-maxed with the same tie-breaking — so this is purely a
    /// latency knob (kept switchable for benchmarking).
    pub batched: bool,
}

impl RandomShootingConfig {
    /// The paper's configuration: `sample_number = 1000`, `horizon = 20`.
    pub fn paper() -> Self {
        Self {
            samples: 1000,
            planning: PlanningConfig::paper(),
            threads: 1,
            batched: true,
        }
    }

    /// The paper's configuration with parallel candidate evaluation.
    pub fn paper_parallel(threads: usize) -> Self {
        Self {
            threads,
            ..Self::paper()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadPlannerConfig`] for zero samples or an
    /// invalid planning configuration.
    pub fn validate(&self) -> Result<(), ControlError> {
        if self.samples == 0 {
            return Err(ControlError::BadPlannerConfig {
                name: "samples",
                value: 0.0,
            });
        }
        if self.threads == 0 {
            return Err(ControlError::BadPlannerConfig {
                name: "threads",
                value: 0.0,
            });
        }
        self.planning.validate()
    }
}

impl Default for RandomShootingConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The random-shooting MBRL controller.
pub struct RandomShootingController<P> {
    predictor: P,
    config: RandomShootingConfig,
    action_space: ActionSpace,
    rng: StdRng,
    scratch: Vec<SetpointAction>,
    // Lockstep-path buffers, reused across plan() calls so steady-state
    // planning allocates nothing.
    candidates: Vec<SetpointAction>,
    returns: Vec<f64>,
    workspace: LockstepWorkspace,
    // Cached telemetry handles: registry lookups happen once at
    // construction, each plan() pays a few relaxed atomic adds.
    plans: Counter,
    trajectories: Counter,
    plan_ns: Histogram,
}

impl<P: Predictor + Sync> RandomShootingController<P> {
    /// Creates a controller around a trained predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadPlannerConfig`] for an invalid
    /// configuration.
    pub fn new(
        predictor: P,
        config: RandomShootingConfig,
        seed: u64,
    ) -> Result<Self, ControlError> {
        config.validate()?;
        Ok(Self {
            predictor,
            config,
            action_space: ActionSpace::new(),
            rng: seeded_rng(seed),
            scratch: Vec::new(),
            candidates: Vec::new(),
            returns: Vec::new(),
            workspace: LockstepWorkspace::new(),
            plans: hvac_telemetry::counter("rs.plan.count"),
            trajectories: hvac_telemetry::counter("rs.trajectories"),
            plan_ns: hvac_telemetry::histogram("rs.plan.ns", LATENCY_BOUNDS_NS),
        })
    }

    /// The planner configuration.
    pub fn config(&self) -> &RandomShootingConfig {
        &self.config
    }

    /// Borrow the underlying predictor.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// Runs one stochastic optimization and returns the chosen action.
    /// Identical to [`Policy::decide`] but usable without the trait in
    /// scope; the extraction stage calls this repeatedly to build the
    /// Monte-Carlo action distribution `p(â)` of Section 3.2.1.
    pub fn plan(&mut self, obs: &Observation) -> SetpointAction {
        // All paths score exactly `samples` candidate trajectories
        // (the parallel quotas sum to `samples`), so one add covers
        // sequential, lockstep, and fan-out planning alike.
        self.plans.incr();
        self.trajectories.add(self.config.samples as u64);
        let started = Instant::now();
        let action = if self.config.threads > 1 {
            self.plan_parallel(obs)
        } else if self.config.batched {
            self.plan_lockstep(obs)
        } else {
            self.plan_scalar(obs)
        };
        self.plan_ns
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        action
    }

    /// Sequential scalar evaluation: one `evaluate_sequence` rollout per
    /// candidate (`N × H` scalar predictor calls).
    fn plan_scalar(&mut self, obs: &Observation) -> SetpointAction {
        let h = self.config.planning.horizon;
        let n_actions = self.action_space.len();
        let mut best_first = self.action_space.as_slice()[0];
        let mut best_return = f64::NEG_INFINITY;

        for _ in 0..self.config.samples {
            self.scratch.clear();
            for _ in 0..h {
                let idx = self.rng.gen_range(0..n_actions);
                self.scratch.push(self.action_space.as_slice()[idx]);
            }
            let ret = evaluate_sequence(&self.predictor, obs, &self.scratch, &self.config.planning);
            if ret > best_return {
                best_return = ret;
                best_first = self.scratch[0];
            }
        }
        best_first
    }

    /// Lockstep batched evaluation: candidates are drawn in exactly the
    /// scalar path's RNG order, then all advance one horizon step at a
    /// time through the predictor's batched forward (`H` batched calls).
    /// The strictly-greater argmax in candidate order reproduces the
    /// scalar path's tie-breaking, so the chosen action is bit-identical
    /// to [`RandomShootingController::plan_scalar`] for the same seed.
    fn plan_lockstep(&mut self, obs: &Observation) -> SetpointAction {
        let h = self.config.planning.horizon;
        let n_actions = self.action_space.len();
        self.candidates.clear();
        self.candidates.reserve(self.config.samples * h);
        for _ in 0..self.config.samples * h {
            let idx = self.rng.gen_range(0..n_actions);
            self.candidates.push(self.action_space.as_slice()[idx]);
        }
        evaluate_sequences_lockstep(
            &self.predictor,
            obs,
            &self.candidates,
            h,
            &self.config.planning,
            &mut self.workspace,
            &mut self.returns,
        );
        let mut best_first = self.action_space.as_slice()[0];
        let mut best_return = f64::NEG_INFINITY;
        for (i, &ret) in self.returns.iter().enumerate() {
            if ret > best_return {
                best_return = ret;
                best_first = self.candidates[i * h];
            }
        }
        best_first
    }

    /// Parallel candidate evaluation with crossbeam scoped threads.
    ///
    /// One RNG seed per worker is derived from the controller's main
    /// RNG, so the parallel planner is just as reproducible as the
    /// sequential one (though it samples a *different* candidate set —
    /// the two paths are each deterministic, not identical to each
    /// other). The thread count is clamped to `samples` so no worker
    /// spawns with an empty quota; clamping does not change the chosen
    /// action for any `(seed, threads)` pair, because `per_worker` and
    /// the active workers' derived seeds are unaffected and a zero-quota
    /// worker's `(−∞, off)` entry can never win the strictly-greater
    /// merge. When `batched` is set each worker evaluates its quota in
    /// lockstep — same draws, same scores, same winner as the scalar
    /// worker loop, just fewer predictor calls.
    fn plan_parallel(&mut self, obs: &Observation) -> SetpointAction {
        let threads = self.config.threads.min(self.config.samples);
        let h = self.config.planning.horizon;
        let base: u64 = self.rng.gen();
        let per_worker = self.config.samples.div_ceil(threads);
        let space = &self.action_space;
        let predictor = &self.predictor;
        let planning = self.config.planning;
        let total = self.config.samples;
        let batched = self.config.batched;

        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move |_| {
                        let mut rng = StdRng::seed_from_u64(split_seed(base, w as u64));
                        let n_actions = space.len();
                        let quota = per_worker.min(total.saturating_sub(w * per_worker));
                        let mut best_first = space.as_slice()[0];
                        let mut best_return = f64::NEG_INFINITY;
                        if batched {
                            let mut candidates = Vec::with_capacity(quota * h);
                            for _ in 0..quota * h {
                                let idx = rng.gen_range(0..n_actions);
                                candidates.push(space.as_slice()[idx]);
                            }
                            let mut workspace = LockstepWorkspace::new();
                            let mut returns = Vec::new();
                            evaluate_sequences_lockstep(
                                predictor,
                                obs,
                                &candidates,
                                h,
                                &planning,
                                &mut workspace,
                                &mut returns,
                            );
                            for (i, &ret) in returns.iter().enumerate() {
                                if ret > best_return {
                                    best_return = ret;
                                    best_first = candidates[i * h];
                                }
                            }
                        } else {
                            let mut scratch = Vec::with_capacity(h);
                            for _ in 0..quota {
                                scratch.clear();
                                for _ in 0..h {
                                    let idx = rng.gen_range(0..n_actions);
                                    scratch.push(space.as_slice()[idx]);
                                }
                                let ret = evaluate_sequence(predictor, obs, &scratch, &planning);
                                if ret > best_return {
                                    best_return = ret;
                                    best_first = scratch[0];
                                }
                            }
                        }
                        (best_return, best_first)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("planner worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("crossbeam scope");

        // Deterministic merge: strictly-greater keeps the earliest
        // worker's winner on ties.
        let mut best = (f64::NEG_INFINITY, space.as_slice()[0]);
        for candidate in results {
            if candidate.0 > best.0 {
                best = candidate;
            }
        }
        best.1
    }

    /// Runs the optimizer `runs` times and counts how often each action
    /// is chosen (indexed by [`ActionSpace`] index) — the empirical
    /// `p(â)` from which the extraction stage takes the mode.
    pub fn action_distribution(&mut self, obs: &Observation, runs: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.action_space.len()];
        for _ in 0..runs {
            let a = self.plan(obs);
            counts[self.action_space.index_of(a)] += 1;
        }
        counts
    }

    /// The most frequent action over `runs` optimizer invocations
    /// (Section 3.2.1: "we define a* as the most frequent a in p(â)").
    /// Ties break toward the lower action index, deterministically.
    pub fn most_frequent_action(&mut self, obs: &Observation, runs: usize) -> SetpointAction {
        let counts = self.action_distribution(obs, runs);
        let mut best = 0;
        for (i, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = i;
            }
        }
        self.action_space
            .action(best)
            .expect("index from enumerate is valid")
    }
}

impl<P: Predictor + Sync> Policy for RandomShootingController<P> {
    fn decide(&mut self, obs: &Observation) -> SetpointAction {
        self.plan(obs)
    }

    fn name(&self) -> &str {
        "mbrl-rs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::Disturbances;

    /// Simple physics: heating setpoint pulls the zone up, cooling caps
    /// it; energy costs make "off" attractive when empty.
    struct Toy;
    impl Predictor for Toy {
        fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64 {
            let s = obs.zone_temperature;
            let pull = 0.3 * (f64::from(action.heating()) - s).max(0.0)
                - 0.3 * (s - f64::from(action.cooling())).max(0.0);
            s + pull - 0.1 // slight passive cooling
        }
    }

    fn obs(temp: f64, occupied: bool) -> Observation {
        Observation::new(
            temp,
            Disturbances {
                occupant_count: if occupied { 4.0 } else { 0.0 },
                ..Disturbances::default()
            },
        )
    }

    fn quick_config() -> RandomShootingConfig {
        RandomShootingConfig {
            samples: 150,
            ..RandomShootingConfig::paper()
        }
    }

    #[test]
    fn zero_samples_rejected() {
        let config = RandomShootingConfig {
            samples: 0,
            ..quick_config()
        };
        assert!(RandomShootingController::new(Toy, config, 0).is_err());
    }

    #[test]
    fn heats_cold_occupied_zone() {
        let mut c = RandomShootingController::new(Toy, quick_config(), 1).unwrap();
        let a = c.plan(&obs(16.0, true));
        // Comfort range is [20, 23.5]: a cold zone needs a high heating
        // setpoint.
        assert!(a.heating() >= 20, "chose {a}");
    }

    #[test]
    fn saves_energy_when_unoccupied() {
        // Unoccupied ⇒ w_e = 1 ⇒ any conditioning is pure cost, so
        // across seeds the optimizer should spend clearly less energy
        // than it does heating the same cold zone when occupied. (A
        // single-seed threshold is a coin flip: the argmax over random
        // *sequences* only weakly constrains the first action.)
        let mean_proxy = |occupied: bool| {
            (0..8)
                .map(|seed| {
                    let mut c = RandomShootingController::new(Toy, quick_config(), seed).unwrap();
                    c.plan(&obs(16.0, occupied)).energy_proxy()
                })
                .sum::<f64>()
                / 8.0
        };
        let unoccupied = mean_proxy(false);
        let occupied = mean_proxy(true);
        assert!(
            unoccupied < occupied,
            "mean proxy unoccupied {unoccupied} !< occupied {occupied}"
        );
    }

    #[test]
    fn decisions_are_stochastic_across_seeds() {
        // The motivation experiment (Fig. 1): same observation, different
        // optimizer randomness ⇒ varying setpoints.
        let o = obs(21.0, true);
        let actions: std::collections::HashSet<_> = (0..8)
            .map(|seed| {
                let mut c = RandomShootingController::new(Toy, quick_config(), seed).unwrap();
                c.plan(&o)
            })
            .collect();
        assert!(actions.len() > 1, "optimizer is suspiciously deterministic");
    }

    #[test]
    fn same_seed_reproduces() {
        let o = obs(21.0, true);
        let run = |seed| {
            let mut c = RandomShootingController::new(Toy, quick_config(), seed).unwrap();
            (0..3).map(|_| c.plan(&o)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn action_distribution_sums_to_runs() {
        let mut c = RandomShootingController::new(Toy, quick_config(), 3).unwrap();
        let counts = c.action_distribution(&obs(21.0, true), 12);
        assert_eq!(counts.iter().sum::<usize>(), 12);
    }

    #[test]
    fn most_frequent_action_is_plausible() {
        let mut c = RandomShootingController::new(Toy, quick_config(), 4).unwrap();
        let a = c.most_frequent_action(&obs(15.0, true), 10);
        assert!(a.heating() >= 19, "mode action {a} too cold");
    }

    #[test]
    fn parallel_planning_gives_sensible_actions() {
        let config = RandomShootingConfig {
            samples: 160,
            threads: 4,
            ..RandomShootingConfig::paper()
        };
        let mut c = RandomShootingController::new(Toy, config, 9).unwrap();
        let a = c.plan(&obs(16.0, true));
        assert!(a.heating() >= 20, "parallel planner chose {a}");
    }

    #[test]
    fn parallel_planning_is_reproducible() {
        let config = RandomShootingConfig {
            samples: 120,
            threads: 3,
            ..RandomShootingConfig::paper()
        };
        let run = |seed| {
            let mut c = RandomShootingController::new(Toy, config, seed).unwrap();
            (0..3).map(|_| c.plan(&obs(21.0, true))).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn zero_threads_rejected() {
        let config = RandomShootingConfig {
            threads: 0,
            ..quick_config()
        };
        assert!(RandomShootingController::new(Toy, config, 0).is_err());
    }

    #[test]
    fn policy_trait_not_deterministic() {
        let c = RandomShootingController::new(Toy, quick_config(), 0).unwrap();
        assert!(!c.is_deterministic());
        assert_eq!(c.name(), "mbrl-rs");
    }

    #[test]
    fn lockstep_plan_matches_scalar_plan() {
        // `batched` is purely a latency knob: same seed ⇒ same candidate
        // draws ⇒ same argmax ⇒ identical decisions, plan after plan.
        let run = |batched| {
            let config = RandomShootingConfig {
                batched,
                ..quick_config()
            };
            let mut c = RandomShootingController::new(Toy, config, 11).unwrap();
            (0..4)
                .map(|i| c.plan(&obs(15.0 + 2.0 * f64::from(i), i % 2 == 0)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn parallel_batched_matches_parallel_scalar() {
        let run = |batched| {
            let config = RandomShootingConfig {
                samples: 130, // not divisible by threads
                threads: 4,
                batched,
                ..RandomShootingConfig::paper()
            };
            let mut c = RandomShootingController::new(Toy, config, 13).unwrap();
            (0..3).map(|_| c.plan(&obs(21.0, true))).collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn more_threads_than_samples_is_safe_and_clamped() {
        // Regression: surplus workers used to spawn with zero quotas.
        // Clamping threads to samples must not change the decision.
        let run = |threads| {
            let config = RandomShootingConfig {
                samples: 3,
                threads,
                ..RandomShootingConfig::paper()
            };
            let mut c = RandomShootingController::new(Toy, config, 17).unwrap();
            c.plan(&obs(16.0, true))
        };
        assert_eq!(run(8), run(3));
    }
}
