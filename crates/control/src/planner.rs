//! Shared model-based planning machinery.
//!
//! Both stochastic optimizers (random shooting and MPPI) score candidate
//! action sequences by rolling them out through the learned dynamics
//! model and summing discounted Eq. 2 rewards — the objective of the
//! paper's Eq. 1:
//!
//! ```text
//! a[:] = argmax_{a[:]} Σ_{t=1..H} γ^t r(f̂(s_t, d_t, a_t), a_{t-1})
//! ```
//!
//! Future disturbances are not known at decision time; following common
//! MBRL-for-HVAC practice the planner uses a *persistence forecast*
//! (disturbances held at their current values over the horizon).

use hvac_dynamics::{DynamicsEnsemble, DynamicsModel};
use hvac_env::{reward, ComfortRange, Observation, RewardConfig, SetpointAction};
use hvac_sim::OccupancySchedule;

use crate::error::ControlError;

/// Anything that can predict the next zone temperature — the planner is
/// generic over single models and ensembles.
pub trait Predictor {
    /// Predicts `s_{t+1}` for `(obs, action)`.
    fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64;

    /// Predicts `s_{t+1}` for a whole batch of `(obs, action)` pairs
    /// into `out`.
    ///
    /// The default maps the scalar [`Predictor::predict_next`] over the
    /// batch, so toy predictors and existing implementations need no
    /// changes and behave bit-identically under the batched planner.
    /// Real models ([`DynamicsModel`], [`DynamicsEnsemble`]) override
    /// this with an allocation-free batched forward that is itself
    /// bit-identical to their scalar path.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the three slices differ in length.
    fn predict_next_batch(
        &self,
        observations: &[Observation],
        actions: &[SetpointAction],
        out: &mut [f64],
    ) {
        for ((obs, &action), slot) in observations.iter().zip(actions).zip(out.iter_mut()) {
            *slot = self.predict_next(obs, action);
        }
    }
}

impl Predictor for DynamicsModel {
    fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64 {
        self.predict_next_temperature(obs, action)
    }

    fn predict_next_batch(
        &self,
        observations: &[Observation],
        actions: &[SetpointAction],
        out: &mut [f64],
    ) {
        self.predict_batch_into(observations, actions, out);
    }
}

impl Predictor for DynamicsEnsemble {
    fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64 {
        self.predict_mean(obs, action)
    }

    fn predict_next_batch(
        &self,
        observations: &[Observation],
        actions: &[SetpointAction],
        out: &mut [f64],
    ) {
        self.predict_mean_batch_into(observations, actions, out);
    }
}

impl<P: Predictor + ?Sized> Predictor for &P {
    fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64 {
        (**self).predict_next(obs, action)
    }

    fn predict_next_batch(
        &self,
        observations: &[Observation],
        actions: &[SetpointAction],
        out: &mut [f64],
    ) {
        (**self).predict_next_batch(observations, actions, out);
    }
}

/// How the planner forecasts disturbances over its horizon.
///
/// Weather always persists at its current value (the standard MBRL-for-
/// HVAC simplification); what differs is *occupancy*, which — unlike
/// weather — follows a schedule the building manager genuinely knows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ForecastMode {
    /// Everything persists at the current observation, occupancy
    /// included. Cannot anticipate arrival/departure (no preheating).
    Persistence,
    /// Weather persists, but occupancy follows the known weekday
    /// schedule evaluated at the rolled-forward hour of day. This is
    /// what lets the planner preheat before 08:00 — and why the paper's
    /// decision trees split on "time" (Fig. 2).
    OccupancySchedule {
        /// The building's schedule.
        schedule: OccupancySchedule,
        /// Peak occupant count of the controlled zone (scales the
        /// schedule's fraction into a head count).
        zone_peak: f64,
    },
}

impl ForecastMode {
    /// The disturbances the planner assumes `offset` steps after the
    /// decision time, given the current observation's disturbances.
    pub fn disturbances_at(
        &self,
        current: &hvac_env::Disturbances,
        offset: usize,
    ) -> hvac_env::Disturbances {
        match self {
            ForecastMode::Persistence => *current,
            ForecastMode::OccupancySchedule {
                schedule,
                zone_peak,
            } => {
                let hour = (current.hour_of_day + offset as f64 * hvac_sim::STEP_SECONDS / 3600.0)
                    .rem_euclid(24.0);
                hvac_env::Disturbances {
                    occupant_count: zone_peak * schedule.weekday_fraction(hour),
                    hour_of_day: hour,
                    ..*current
                }
            }
        }
    }
}

/// Shared planning hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanningConfig {
    /// Planning horizon `H` in steps (paper: 20).
    pub horizon: usize,
    /// Discount factor `γ`.
    pub gamma: f64,
    /// Comfort range used inside the planning reward.
    pub comfort: ComfortRange,
    /// Reward weights used inside the planning reward.
    pub reward: RewardConfig,
    /// Disturbance forecast over the horizon.
    pub forecast: ForecastMode,
}

impl PlanningConfig {
    /// The paper's planner settings (H = 20, γ = 0.99, winter comfort).
    pub fn paper() -> Self {
        Self {
            horizon: 20,
            gamma: 0.99,
            comfort: ComfortRange::winter(),
            reward: RewardConfig::paper(),
            forecast: ForecastMode::Persistence,
        }
    }

    /// The paper's planner settings with the occupancy-schedule
    /// forecast for the given controlled zone.
    pub fn paper_with_schedule(schedule: OccupancySchedule, controlled_zone: usize) -> Self {
        Self {
            forecast: ForecastMode::OccupancySchedule {
                zone_peak: schedule.peak()[controlled_zone],
                schedule,
            },
            ..Self::paper()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadPlannerConfig`] for a zero horizon or
    /// a discount outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), ControlError> {
        if self.horizon == 0 {
            return Err(ControlError::BadPlannerConfig {
                name: "horizon",
                value: 0.0,
            });
        }
        if !(self.gamma > 0.0 && self.gamma <= 1.0) {
            return Err(ControlError::BadPlannerConfig {
                name: "gamma",
                value: self.gamma,
            });
        }
        Ok(())
    }
}

impl Default for PlanningConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Rolls an action sequence through the predictor under a persistence
/// disturbance forecast, returning the trajectory of predicted zone
/// temperatures (`sequence.len()` entries).
pub fn persistence_rollout<P: Predictor>(
    predictor: &P,
    start: &Observation,
    sequence: &[SetpointAction],
) -> Vec<f64> {
    let mut obs = *start;
    let mut out = Vec::with_capacity(sequence.len());
    for &a in sequence {
        let next = predictor.predict_next(&obs, a);
        out.push(next);
        obs.zone_temperature = next; // disturbances persist
    }
    out
}

/// Rolls an action sequence through the predictor under an explicit
/// forecast mode, returning the predicted zone-temperature trajectory.
pub fn forecast_rollout<P: Predictor>(
    predictor: &P,
    start: &Observation,
    sequence: &[SetpointAction],
    forecast: &ForecastMode,
) -> Vec<f64> {
    let mut obs = *start;
    let mut out = Vec::with_capacity(sequence.len());
    for (k, &a) in sequence.iter().enumerate() {
        obs.disturbances = forecast.disturbances_at(&start.disturbances, k);
        let next = predictor.predict_next(&obs, a);
        out.push(next);
        obs.zone_temperature = next;
    }
    out
}

/// Discounted return of an action sequence (the paper's Eq. 1 objective):
/// each step's reward is evaluated on the *predicted next state* and the
/// action that produced it.
pub fn evaluate_sequence<P: Predictor>(
    predictor: &P,
    start: &Observation,
    sequence: &[SetpointAction],
    config: &PlanningConfig,
) -> f64 {
    let mut obs = *start;
    let mut total = 0.0;
    let mut discount = config.gamma;
    for (k, &a) in sequence.iter().enumerate() {
        obs.disturbances = config.forecast.disturbances_at(&start.disturbances, k);
        let occupied = obs.is_occupied();
        let next = predictor.predict_next(&obs, a);
        total += discount * reward(&config.reward, &config.comfort, next, a, occupied);
        discount *= config.gamma;
        obs.zone_temperature = next;
    }
    total
}

/// Reusable buffers for [`evaluate_sequences_lockstep`]. One workspace
/// serves any number of calls and any `(candidates, horizon)` shape;
/// buffers grow on demand, so repeated planning performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct LockstepWorkspace {
    observations: Vec<Observation>,
    step_actions: Vec<SetpointAction>,
    next_temperatures: Vec<f64>,
}

impl LockstepWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scores `n` candidate action sequences in lockstep: all candidates
/// advance one horizon step at a time through
/// [`Predictor::predict_next_batch`], so a plan costs `H` batched model
/// calls instead of `N × H` scalar ones.
///
/// `sequences` is flat row-major — candidate `i` occupies
/// `sequences[i * horizon .. (i + 1) * horizon]`. Discounted returns
/// are written to `returns` (cleared and refilled, one entry per
/// candidate).
///
/// Per candidate, the arithmetic (forecast disturbances, reward on the
/// predicted next state, discount accumulation) runs in exactly the
/// order of [`evaluate_sequence`], and the batched predictors are
/// bit-identical to their scalar paths — so each returned score equals
/// the scalar `evaluate_sequence` result for that candidate bit for
/// bit.
///
/// # Panics
///
/// Panics if `horizon` is zero or `sequences.len()` is not a multiple
/// of `horizon`.
pub fn evaluate_sequences_lockstep<P: Predictor>(
    predictor: &P,
    start: &Observation,
    sequences: &[SetpointAction],
    horizon: usize,
    config: &PlanningConfig,
    workspace: &mut LockstepWorkspace,
    returns: &mut Vec<f64>,
) {
    assert!(horizon > 0, "zero horizon");
    assert!(
        sequences.len().is_multiple_of(horizon),
        "sequences not a multiple of the horizon"
    );
    let n = sequences.len() / horizon;
    returns.clear();
    returns.resize(n, 0.0);
    if n == 0 {
        return;
    }
    workspace.observations.clear();
    workspace.observations.resize(n, *start);
    workspace.step_actions.clear();
    workspace.step_actions.resize(n, sequences[0]);
    workspace.next_temperatures.clear();
    workspace.next_temperatures.resize(n, 0.0);

    let mut discount = config.gamma;
    for k in 0..horizon {
        // The forecast depends only on the start disturbances and the
        // step offset — shared by every candidate, computed once.
        let disturbances = config.forecast.disturbances_at(&start.disturbances, k);
        for (i, obs) in workspace.observations.iter_mut().enumerate() {
            obs.disturbances = disturbances;
            workspace.step_actions[i] = sequences[i * horizon + k];
        }
        predictor.predict_next_batch(
            &workspace.observations,
            &workspace.step_actions,
            &mut workspace.next_temperatures,
        );
        let occupied = workspace.observations[0].is_occupied();
        for (((ret, &next), obs), &action) in returns
            .iter_mut()
            .zip(&workspace.next_temperatures)
            .zip(workspace.observations.iter_mut())
            .zip(&workspace.step_actions)
        {
            *ret += discount * reward(&config.reward, &config.comfort, next, action, occupied);
            obs.zone_temperature = next;
        }
        discount *= config.gamma;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::Disturbances;

    /// A predictor with trivial physics: s' = s + 0.1 (heat_sp − s).
    struct Toy;

    impl Predictor for Toy {
        fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64 {
            obs.zone_temperature + 0.1 * (f64::from(action.heating()) - obs.zone_temperature)
        }
    }

    fn obs(temp: f64, occupied: bool) -> Observation {
        Observation::new(
            temp,
            Disturbances {
                occupant_count: if occupied { 5.0 } else { 0.0 },
                ..Disturbances::default()
            },
        )
    }

    #[test]
    fn rollout_tracks_heating_setpoint() {
        let seq = vec![SetpointAction::new(23, 30).unwrap(); 30];
        let traj = persistence_rollout(&Toy, &obs(15.0, true), &seq);
        assert_eq!(traj.len(), 30);
        assert!(traj[29] > traj[0]);
        assert!(traj[29] <= 23.0);
    }

    #[test]
    fn comfortable_sequence_beats_cold_sequence_when_occupied() {
        let config = PlanningConfig::paper();
        let warm = vec![SetpointAction::new(21, 30).unwrap(); 20];
        let cold = vec![SetpointAction::off(); 20];
        let start = obs(16.0, true);
        let r_warm = evaluate_sequence(&Toy, &start, &warm, &config);
        let r_cold = evaluate_sequence(&Toy, &start, &cold, &config);
        assert!(r_warm > r_cold);
    }

    #[test]
    fn off_sequence_wins_when_unoccupied() {
        let config = PlanningConfig::paper();
        let warm = vec![SetpointAction::new(23, 30).unwrap(); 20];
        let off = vec![SetpointAction::off(); 20];
        let start = obs(16.0, false);
        assert!(
            evaluate_sequence(&Toy, &start, &off, &config)
                > evaluate_sequence(&Toy, &start, &warm, &config)
        );
    }

    #[test]
    fn discounting_weights_early_steps() {
        // A violation in step 1 must cost more than the same violation in
        // step 19.
        let config = PlanningConfig::paper();
        let start = obs(21.0, true);

        struct Spike {
            at: usize,
            counter: std::cell::Cell<usize>,
        }
        impl Predictor for Spike {
            fn predict_next(&self, obs: &Observation, _a: SetpointAction) -> f64 {
                let k = self.counter.get();
                self.counter.set(k + 1);
                if k == self.at {
                    30.0 // violation
                } else {
                    obs.zone_temperature.clamp(20.0, 23.5)
                }
            }
        }
        let seq = vec![SetpointAction::off(); 20];
        let early = Spike {
            at: 0,
            counter: std::cell::Cell::new(0),
        };
        let late = Spike {
            at: 19,
            counter: std::cell::Cell::new(0),
        };
        let r_early = evaluate_sequence(&early, &start, &seq, &config);
        let r_late = evaluate_sequence(&late, &start, &seq, &config);
        assert!(r_early < r_late);
    }

    #[test]
    fn persistence_forecast_freezes_everything() {
        let d = hvac_env::Disturbances {
            outdoor_temperature: -3.0,
            occupant_count: 4.0,
            hour_of_day: 7.5,
            ..Default::default()
        };
        let f = ForecastMode::Persistence;
        for k in [0, 5, 19] {
            assert_eq!(f.disturbances_at(&d, k), d);
        }
    }

    #[test]
    fn schedule_forecast_advances_hour_and_occupancy() {
        use hvac_sim::OccupancySchedule;
        let schedule = OccupancySchedule::office();
        let f = ForecastMode::OccupancySchedule {
            schedule,
            zone_peak: 5.0,
        };
        // Decision at 07:00, unoccupied: four steps later it is 08:00
        // and the zone fills up.
        let d = hvac_env::Disturbances {
            hour_of_day: 7.0,
            occupant_count: 0.0,
            ..Default::default()
        };
        let now = f.disturbances_at(&d, 0);
        assert_eq!(now.occupant_count, 0.0);
        let at_8 = f.disturbances_at(&d, 4);
        assert_eq!(at_8.hour_of_day, 8.0);
        assert_eq!(at_8.occupant_count, 5.0);
        // Weather persists.
        assert_eq!(at_8.outdoor_temperature, d.outdoor_temperature);
    }

    #[test]
    fn schedule_forecast_wraps_midnight() {
        use hvac_sim::OccupancySchedule;
        let f = ForecastMode::OccupancySchedule {
            schedule: OccupancySchedule::office(),
            zone_peak: 5.0,
        };
        let d = hvac_env::Disturbances {
            hour_of_day: 23.5,
            ..Default::default()
        };
        let wrapped = f.disturbances_at(&d, 4);
        assert!((wrapped.hour_of_day - 0.5).abs() < 1e-9);
        assert_eq!(wrapped.occupant_count, 0.0);
    }

    #[test]
    fn paper_with_schedule_picks_zone_peak() {
        use hvac_sim::OccupancySchedule;
        let schedule = OccupancySchedule::office();
        let config = PlanningConfig::paper_with_schedule(schedule, 1);
        match config.forecast {
            ForecastMode::OccupancySchedule { zone_peak, .. } => {
                assert_eq!(zone_peak, schedule.peak()[1]);
            }
            ForecastMode::Persistence => panic!("expected schedule forecast"),
        }
    }

    #[test]
    fn forecast_rollout_matches_persistence_rollout_under_persistence() {
        let seq = vec![SetpointAction::new(21, 26).unwrap(); 10];
        let start = obs(17.0, true);
        let a = persistence_rollout(&Toy, &start, &seq);
        let b = forecast_rollout(&Toy, &start, &seq, &ForecastMode::Persistence);
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_forecast_rewards_preheating() {
        // At 07:00, unoccupied, zone cold: with the schedule forecast
        // the planner knows comfort starts mattering at 08:00, so a
        // heat-now sequence must outscore a never-heat sequence.
        use hvac_sim::OccupancySchedule;
        let mut config = PlanningConfig::paper();
        config.forecast = ForecastMode::OccupancySchedule {
            schedule: OccupancySchedule::office(),
            zone_peak: 5.0,
        };
        let start = Observation::new(
            15.0,
            hvac_env::Disturbances {
                hour_of_day: 7.0,
                occupant_count: 0.0,
                ..Default::default()
            },
        );
        let heat = vec![SetpointAction::new(22, 30).unwrap(); 20];
        let idle = vec![SetpointAction::off(); 20];
        let r_heat = evaluate_sequence(&Toy, &start, &heat, &config);
        let r_idle = evaluate_sequence(&Toy, &start, &idle, &config);
        assert!(
            r_heat > r_idle,
            "preheating should pay off: {r_heat} vs {r_idle}"
        );
        // Under persistence the same comparison flips: the planner never
        // sees the arrival, so heating is pure cost.
        config.forecast = ForecastMode::Persistence;
        let r_heat_p = evaluate_sequence(&Toy, &start, &heat, &config);
        let r_idle_p = evaluate_sequence(&Toy, &start, &idle, &config);
        assert!(r_idle_p > r_heat_p);
    }

    #[test]
    fn lockstep_matches_scalar_evaluate_sequence() {
        let config = PlanningConfig::paper();
        let start = obs(16.5, true);
        let h = config.horizon;
        // Deterministic candidate set spanning the action grid.
        let candidates: Vec<Vec<SetpointAction>> = (0..7)
            .map(|i| {
                (0..h)
                    .map(|k| SetpointAction::new(15 + ((i + k) % 9) as i32, 25).unwrap())
                    .collect()
            })
            .collect();
        let flat: Vec<SetpointAction> = candidates.iter().flatten().copied().collect();
        let mut ws = LockstepWorkspace::new();
        let mut returns = Vec::new();
        evaluate_sequences_lockstep(&Toy, &start, &flat, h, &config, &mut ws, &mut returns);
        assert_eq!(returns.len(), 7);
        for (i, seq) in candidates.iter().enumerate() {
            let scalar = evaluate_sequence(&Toy, &start, seq, &config);
            assert_eq!(returns[i], scalar, "candidate {i} diverged");
        }
    }

    #[test]
    fn lockstep_matches_scalar_under_schedule_forecast() {
        use hvac_sim::OccupancySchedule;
        let mut config = PlanningConfig::paper();
        config.forecast = ForecastMode::OccupancySchedule {
            schedule: OccupancySchedule::office(),
            zone_peak: 5.0,
        };
        let start = Observation::new(
            15.0,
            hvac_env::Disturbances {
                hour_of_day: 7.0,
                occupant_count: 0.0,
                ..Default::default()
            },
        );
        let h = 20;
        let heat: Vec<SetpointAction> = vec![SetpointAction::new(22, 30).unwrap(); h];
        let idle: Vec<SetpointAction> = vec![SetpointAction::off(); h];
        let flat: Vec<SetpointAction> = heat.iter().chain(idle.iter()).copied().collect();
        let mut ws = LockstepWorkspace::new();
        let mut returns = Vec::new();
        evaluate_sequences_lockstep(&Toy, &start, &flat, h, &config, &mut ws, &mut returns);
        assert_eq!(returns[0], evaluate_sequence(&Toy, &start, &heat, &config));
        assert_eq!(returns[1], evaluate_sequence(&Toy, &start, &idle, &config));
        assert!(returns[0] > returns[1], "preheating should still pay off");
    }

    #[test]
    fn lockstep_empty_candidate_set_yields_no_returns() {
        let config = PlanningConfig::paper();
        let mut ws = LockstepWorkspace::new();
        let mut returns = vec![1.0, 2.0];
        evaluate_sequences_lockstep(
            &Toy,
            &obs(20.0, true),
            &[],
            config.horizon,
            &config,
            &mut ws,
            &mut returns,
        );
        assert!(returns.is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of the horizon")]
    fn lockstep_rejects_misaligned_sequences() {
        let config = PlanningConfig::paper();
        let mut ws = LockstepWorkspace::new();
        let mut returns = Vec::new();
        evaluate_sequences_lockstep(
            &Toy,
            &obs(20.0, true),
            &[SetpointAction::off(); 7],
            4,
            &config,
            &mut ws,
            &mut returns,
        );
    }

    #[test]
    fn default_batch_method_maps_scalar_predictor() {
        let observations = [obs(18.0, true), obs(21.0, false), obs(25.0, true)];
        let actions = [
            SetpointAction::new(22, 30).unwrap(),
            SetpointAction::off(),
            SetpointAction::new(15, 22).unwrap(),
        ];
        let mut out = [0.0; 3];
        Toy.predict_next_batch(&observations, &actions, &mut out);
        for i in 0..3 {
            assert_eq!(out[i], Toy.predict_next(&observations[i], actions[i]));
        }
    }

    #[test]
    fn config_validation() {
        assert!(PlanningConfig::paper().validate().is_ok());
        let bad = PlanningConfig {
            horizon: 0,
            ..PlanningConfig::paper()
        };
        assert!(bad.validate().is_err());
        let bad = PlanningConfig {
            gamma: 1.5,
            ..PlanningConfig::paper()
        };
        assert!(bad.validate().is_err());
    }
}
