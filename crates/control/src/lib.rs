//! HVAC controllers: the paper's baselines and its decision-tree policy.
//!
//! Four controller families appear in the paper's evaluation (Fig. 4,
//! Table 3):
//!
//! | Paper name      | Type                                   | Here |
//! |-----------------|----------------------------------------|------|
//! | default \[12\]    | rule-based occupancy schedule          | [`RuleBasedController`] |
//! | MBRL \[9\]        | random-shooting MPC over a learned MLP | [`RandomShootingController`] |
//! | CLUE \[1\]        | uncertainty-gated MBRL with fallback   | [`ClueController`] |
//! | DT (ours)       | extracted decision-tree policy         | [`DtPolicy`] |
//!
//! An MPPI planner ([`MppiController`]) is included as well — the paper
//! cites it as the other stochastic optimizer used by MBRL HVAC work.
//!
//! All controllers implement [`hvac_env::Policy`], so any of them can be
//! dropped into [`hvac_env::run_episode`] or the benchmark harnesses.
//!
//! For deployment, [`GuardedPolicy`] wraps any of the above with input
//! validation and a degradation ladder (tree → rule-based fallback →
//! fail-safe setpoints) so faulty sensor streams degrade gracefully
//! instead of feeding garbage to a verified policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clue;
pub mod dt_policy;
pub mod error;
pub mod guard;
pub mod mppi;
pub mod planner;
pub mod random_shooting;
pub mod rule_based;

pub use clue::{ClueConfig, ClueController};
pub use dt_policy::DtPolicy;
pub use error::ControlError;
pub use guard::{
    GuardConfig, GuardRoute, GuardSnapshot, GuardState, GuardStats, GuardTransition, GuardedPolicy,
};
pub use mppi::{MppiConfig, MppiController};
pub use planner::{
    evaluate_sequence, evaluate_sequences_lockstep, forecast_rollout, persistence_rollout,
    ForecastMode, LockstepWorkspace, PlanningConfig, Predictor,
};
pub use random_shooting::{RandomShootingConfig, RandomShootingController};
pub use rule_based::RuleBasedController;
