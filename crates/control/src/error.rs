//! Error types.

use std::error::Error;
use std::fmt;

/// Error type for controller construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControlError {
    /// A planning hyperparameter was zero or otherwise unusable.
    BadPlannerConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The decision tree's feature count does not match the policy-input
    /// dimension.
    FeatureMismatch {
        /// Features the tree expects.
        tree: usize,
        /// Features the environment provides.
        env: usize,
    },
    /// The decision tree's class count does not match the action space.
    ClassMismatch {
        /// Classes the tree produces.
        tree: usize,
        /// Actions in the action space.
        actions: usize,
    },
    /// The decision tree itself was malformed — a parse failure or a
    /// structural offense (cycle, dangling child, NaN threshold). The
    /// wrapped [`hvac_dtree::TreeError`] names the exact problem, so
    /// manifest loaders can surface it per tenant instead of panicking.
    BadTree(hvac_dtree::TreeError),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::BadPlannerConfig { name, value } => {
                write!(f, "bad planner configuration: {name} = {value}")
            }
            ControlError::FeatureMismatch { tree, env } => {
                write!(
                    f,
                    "tree expects {tree} features but the environment provides {env}"
                )
            }
            ControlError::ClassMismatch { tree, actions } => {
                write!(
                    f,
                    "tree has {tree} classes but the action space has {actions}"
                )
            }
            ControlError::BadTree(err) => write!(f, "malformed decision tree: {err}"),
        }
    }
}

impl Error for ControlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControlError::BadTree(err) => Some(err),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let errs = [
            ControlError::BadPlannerConfig {
                name: "samples",
                value: 0.0,
            },
            ControlError::FeatureMismatch { tree: 4, env: 6 },
            ControlError::ClassMismatch {
                tree: 10,
                actions: 90,
            },
            ControlError::BadTree(hvac_dtree::TreeError::CycleDetected { node: 3 }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
