//! State and disturbance spaces (paper Table 1).

use crate::action::SetpointAction;

/// Dimensionality of the policy input vector: the zone temperature, the
/// five disturbance variables of Table 1, plus the hour of day (the
/// "time" variable the paper's Fig. 2 decision tree splits on —
/// Sinergym observations carry calendar features alongside Table 1's
/// physical quantities).
pub const POLICY_INPUT_DIM: usize = 7;

/// Index of each feature inside a policy-input vector. Keeping the layout
/// in one place lets the decision-tree verifier reason about "the zone
/// temperature dimension" without magic numbers.
pub mod feature {
    /// Zone air temperature (the MDP state `s_t`), °C.
    pub const ZONE_TEMPERATURE: usize = 0;
    /// Outdoor air drybulb temperature, °C.
    pub const OUTDOOR_TEMPERATURE: usize = 1;
    /// Outdoor air relative humidity, %.
    pub const RELATIVE_HUMIDITY: usize = 2;
    /// Site wind speed, m/s.
    pub const WIND_SPEED: usize = 3;
    /// Site total radiation rate per area, W/m².
    pub const SOLAR_RADIATION: usize = 4;
    /// Zone people occupant count.
    pub const OCCUPANT_COUNT: usize = 5;
    /// Hour of day in `[0, 24)`.
    pub const HOUR_OF_DAY: usize = 6;

    /// Human-readable feature names, indexable by the constants above.
    pub const NAMES: [&str; super::POLICY_INPUT_DIM] = [
        "zone_air_temperature",
        "outdoor_air_drybulb_temperature",
        "outdoor_air_relative_humidity",
        "site_wind_speed",
        "site_total_radiation",
        "zone_people_occupant_count",
        "hour_of_day",
    ];
}

/// Physically plausible sensor range per feature — the observation-space
/// box input validators check against. The bounds are generous: they
/// admit every value the simulator or any TMY-like weather trace can
/// produce (extreme climates included) while rejecting readings no real
/// sensor on a conditioned building could report, so a value outside the
/// box is a *fault*, not an unusual day.
///
/// Indexed by the [`feature`] constants; `[lo, hi]` inclusive.
pub const VALID_RANGES: [(f64, f64); POLICY_INPUT_DIM] = [
    (-10.0, 50.0), // zone air temperature, °C (conditioned interior)
    (-40.0, 50.0), // outdoor drybulb, °C
    (0.0, 100.0),  // relative humidity, %
    (0.0, 45.0),   // wind speed, m/s
    (0.0, 1200.0), // solar radiation, W/m² (above clear-sky max)
    (0.0, 1000.0), // occupant count
    (0.0, 24.0),   // hour of day
];

/// Whether `value` is a plausible reading for feature `index`: finite and
/// inside [`VALID_RANGES`]. NaN and ±∞ always fail.
pub fn in_valid_range(index: usize, value: f64) -> bool {
    let (lo, hi) = VALID_RANGES[index];
    value.is_finite() && value >= lo && value <= hi
}

/// The disturbance vector `d_t`: everything the HVAC action cannot
/// influence.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Disturbances {
    /// Outdoor air drybulb temperature, °C.
    pub outdoor_temperature: f64,
    /// Outdoor air relative humidity, %.
    pub relative_humidity: f64,
    /// Site wind speed, m/s.
    pub wind_speed: f64,
    /// Site total radiation rate per area, W/m².
    pub solar_radiation: f64,
    /// Occupant count in the controlled zone.
    pub occupant_count: f64,
    /// Hour of day in `[0, 24)`.
    pub hour_of_day: f64,
}

impl Disturbances {
    /// Builds the disturbance vector from a weather sample plus the
    /// controlled zone's occupant count.
    pub fn from_weather(
        w: &hvac_sim::WeatherSample,
        occupant_count: f64,
        hour_of_day: f64,
    ) -> Self {
        Self {
            outdoor_temperature: w.outdoor_temperature,
            relative_humidity: w.relative_humidity,
            wind_speed: w.wind_speed,
            solar_radiation: w.solar_radiation,
            occupant_count,
            hour_of_day,
        }
    }
}

/// The full policy input `(s_t, d_t)`: what the paper's decision tree and
/// all MBRL controllers observe at each step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Observation {
    /// Controlled-zone air temperature `s_t`, °C.
    pub zone_temperature: f64,
    /// Disturbances `d_t`.
    pub disturbances: Disturbances,
}

impl Observation {
    /// Creates an observation.
    pub fn new(zone_temperature: f64, disturbances: Disturbances) -> Self {
        Self {
            zone_temperature,
            disturbances,
        }
    }

    /// Flattens into the canonical policy-input vector
    /// (see [`feature`] for the layout).
    ///
    /// # Example
    ///
    /// ```
    /// use hvac_env::{Disturbances, Observation};
    /// use hvac_env::space::feature;
    ///
    /// let obs = Observation::new(21.0, Disturbances {
    ///     outdoor_temperature: -3.0,
    ///     relative_humidity: 70.0,
    ///     wind_speed: 4.0,
    ///     solar_radiation: 120.0,
    ///     occupant_count: 8.0,
    ///     hour_of_day: 10.5,
    /// });
    /// let x = obs.to_vector();
    /// assert_eq!(x[feature::ZONE_TEMPERATURE], 21.0);
    /// assert_eq!(x[feature::OCCUPANT_COUNT], 8.0);
    /// ```
    pub fn to_vector(&self) -> [f64; POLICY_INPUT_DIM] {
        [
            self.zone_temperature,
            self.disturbances.outdoor_temperature,
            self.disturbances.relative_humidity,
            self.disturbances.wind_speed,
            self.disturbances.solar_radiation,
            self.disturbances.occupant_count,
            self.disturbances.hour_of_day,
        ]
    }

    /// Reconstructs an observation from a policy-input vector.
    pub fn from_vector(x: &[f64; POLICY_INPUT_DIM]) -> Self {
        Self {
            zone_temperature: x[feature::ZONE_TEMPERATURE],
            disturbances: Disturbances {
                outdoor_temperature: x[feature::OUTDOOR_TEMPERATURE],
                relative_humidity: x[feature::RELATIVE_HUMIDITY],
                wind_speed: x[feature::WIND_SPEED],
                solar_radiation: x[feature::SOLAR_RADIATION],
                occupant_count: x[feature::OCCUPANT_COUNT],
                hour_of_day: x[feature::HOUR_OF_DAY],
            },
        }
    }

    /// Whether the controlled zone is occupied (the reward's `w_e`
    /// switch).
    pub fn is_occupied(&self) -> bool {
        self.disturbances.occupant_count > 0.0
    }
}

/// One historical transition `(s, d, a, s')` — the unit of the paper's
/// historical dataset `T` extracted from building management systems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Observation at time `t` (state + disturbances).
    pub observation: Observation,
    /// Action executed at time `t`.
    pub action: SetpointAction,
    /// Zone temperature at time `t + 1`.
    pub next_zone_temperature: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn vector_roundtrip() {
        let obs = Observation::new(
            22.5,
            Disturbances {
                outdoor_temperature: 5.0,
                relative_humidity: 55.0,
                wind_speed: 3.2,
                solar_radiation: 410.0,
                occupant_count: 3.0,
                hour_of_day: 14.25,
            },
        );
        assert_eq!(Observation::from_vector(&obs.to_vector()), obs);
    }

    #[test]
    fn feature_names_align_with_dim() {
        assert_eq!(feature::NAMES.len(), POLICY_INPUT_DIM);
        assert_eq!(
            feature::NAMES[feature::ZONE_TEMPERATURE],
            "zone_air_temperature"
        );
    }

    #[test]
    fn valid_ranges_accept_typical_and_reject_faulted_readings() {
        // A normal January observation sits inside the box.
        let obs = Observation::new(
            21.0,
            Disturbances {
                outdoor_temperature: -12.0,
                relative_humidity: 70.0,
                wind_speed: 6.0,
                solar_radiation: 310.0,
                occupant_count: 8.0,
                hour_of_day: 13.75,
            },
        );
        for (i, v) in obs.to_vector().iter().enumerate() {
            assert!(in_valid_range(i, *v), "feature {i} value {v}");
        }
        // Non-finite readings always fail, regardless of feature.
        for i in 0..POLICY_INPUT_DIM {
            assert!(!in_valid_range(i, f64::NAN));
            assert!(!in_valid_range(i, f64::INFINITY));
            assert!(!in_valid_range(i, f64::NEG_INFINITY));
        }
        // Physically absurd readings fail their feature's box.
        assert!(!in_valid_range(feature::ZONE_TEMPERATURE, 80.0));
        assert!(!in_valid_range(feature::RELATIVE_HUMIDITY, -5.0));
        assert!(!in_valid_range(feature::SOLAR_RADIATION, 1500.0));
        assert!(!in_valid_range(feature::HOUR_OF_DAY, 25.0));
    }

    #[test]
    fn occupancy_switch() {
        let mut obs = Observation::default();
        assert!(!obs.is_occupied());
        obs.disturbances.occupant_count = 1.0;
        assert!(obs.is_occupied());
    }

    #[test]
    fn from_weather_copies_fields() {
        let w = hvac_sim::WeatherSample {
            outdoor_temperature: -2.0,
            relative_humidity: 66.0,
            wind_speed: 7.0,
            solar_radiation: 90.0,
        };
        let d = Disturbances::from_weather(&w, 4.0, 9.5);
        assert_eq!(d.outdoor_temperature, -2.0);
        assert_eq!(d.occupant_count, 4.0);
        assert_eq!(d.hour_of_day, 9.5);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_vector(v in proptest::array::uniform7(-1e3f64..1e3)) {
            let obs = Observation::from_vector(&v);
            prop_assert_eq!(obs.to_vector(), v);
        }
    }
}
