//! The reward function (paper Eq. 2).
//!
//! ```text
//! r(s_t) = − w_e · E_t − (1 − w_e) · (|s_t − z̄|₊ + |z̲ − s_t|₊)
//! ```
//!
//! where `E_t` is the energy proxy (L1 distance between the commanded
//! setpoints and the HVAC-off setpoints) and the second term is the
//! comfort violation in °C. The weight switches with occupancy: the
//! paper uses `w_e = 0.01` while occupied (comfort dominates) and
//! `w_e = 1` while unoccupied (energy only).

use crate::action::SetpointAction;
use crate::comfort::ComfortRange;

/// Occupancy-dependent energy weights for Eq. 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardConfig {
    /// `w_e` during occupied periods (paper: `1e-2`).
    pub energy_weight_occupied: f64,
    /// `w_e` during unoccupied periods (paper: `1.0`).
    pub energy_weight_unoccupied: f64,
}

impl RewardConfig {
    /// The paper's weights.
    pub fn paper() -> Self {
        Self {
            energy_weight_occupied: 1e-2,
            energy_weight_unoccupied: 1.0,
        }
    }

    /// The effective `w_e` for the given occupancy.
    pub fn energy_weight(&self, occupied: bool) -> f64 {
        if occupied {
            self.energy_weight_occupied
        } else {
            self.energy_weight_unoccupied
        }
    }
}

impl Default for RewardConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Evaluates Eq. 2 for one step.
///
/// `zone_temperature` is `s_t`; `action` supplies the energy proxy;
/// `occupied` selects the energy weight.
///
/// The reward is always ≤ 0; the maximum (0) is achieved only with the
/// HVAC off and the zone inside the comfort range.
///
/// # Example
///
/// ```
/// use hvac_env::{reward, ComfortRange, RewardConfig, SetpointAction};
///
/// # fn main() -> Result<(), hvac_env::EnvError> {
/// let config = RewardConfig::paper();
/// let comfort = ComfortRange::winter();
/// // Comfortable and off: perfect score.
/// let r = reward(&config, &comfort, 21.0, SetpointAction::off(), false);
/// assert_eq!(r, 0.0);
/// // Too cold while occupied: penalized mostly on comfort.
/// let r = reward(&config, &comfort, 17.0, SetpointAction::off(), true);
/// assert!(r < -2.9);
/// # Ok(())
/// # }
/// ```
pub fn reward(
    config: &RewardConfig,
    comfort: &ComfortRange,
    zone_temperature: f64,
    action: SetpointAction,
    occupied: bool,
) -> f64 {
    let w_e = config.energy_weight(occupied);
    let energy = action.energy_proxy();
    let violation = comfort.violation_degrees(zone_temperature);
    -w_e * energy - (1.0 - w_e) * violation
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn config() -> RewardConfig {
        RewardConfig::paper()
    }

    #[test]
    fn perfect_step_scores_zero() {
        let r = reward(
            &config(),
            &ComfortRange::winter(),
            21.0,
            SetpointAction::off(),
            false,
        );
        assert_eq!(r, 0.0);
    }

    #[test]
    fn unoccupied_ignores_comfort() {
        // w_e = 1 while unoccupied: only energy matters.
        let freezing = reward(
            &config(),
            &ComfortRange::winter(),
            5.0,
            SetpointAction::off(),
            false,
        );
        assert_eq!(freezing, 0.0);
    }

    #[test]
    fn occupied_penalizes_violation_strongly() {
        let comfort = ComfortRange::winter();
        let cold = reward(&config(), &comfort, 18.0, SetpointAction::off(), true);
        let ok = reward(&config(), &comfort, 21.0, SetpointAction::off(), true);
        assert!(cold < ok);
        // Violation of 2 °C at (1 − 0.01) weight.
        assert!((cold - (-0.99 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn energy_costs_while_unoccupied() {
        let comfort = ComfortRange::winter();
        let heating_hard = SetpointAction::new(23, 30).unwrap();
        let r = reward(&config(), &comfort, 21.0, heating_hard, false);
        assert!((r - (-8.0)).abs() < 1e-12);
    }

    #[test]
    fn occupied_weight_applies_to_energy() {
        let comfort = ComfortRange::winter();
        let heating_hard = SetpointAction::new(23, 30).unwrap();
        let r = reward(&config(), &comfort, 21.0, heating_hard, true);
        assert!((r - (-0.01 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn weight_selector() {
        assert_eq!(config().energy_weight(true), 0.01);
        assert_eq!(config().energy_weight(false), 1.0);
    }

    proptest! {
        #[test]
        fn prop_reward_nonpositive(
            t in -40.0f64..60.0,
            h in 15i32..=23,
            c in 21i32..=30,
            occupied in proptest::bool::ANY,
        ) {
            let a = SetpointAction::new(h, c).unwrap();
            let r = reward(&config(), &ComfortRange::winter(), t, a, occupied);
            prop_assert!(r <= 0.0);
        }

        #[test]
        fn prop_reward_monotone_in_violation(
            h in 15i32..=23,
            c in 21i32..=30,
        ) {
            let a = SetpointAction::new(h, c).unwrap();
            let comfort = ComfortRange::winter();
            let near = reward(&config(), &comfort, 19.5, a, true);
            let far = reward(&config(), &comfort, 16.0, a, true);
            prop_assert!(far < near);
        }
    }
}
