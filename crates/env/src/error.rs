//! Error types.

use std::error::Error;
use std::fmt;

/// Error type for environment operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EnvError {
    /// A setpoint was outside the paper's action space
    /// (heating ∈ [15, 23] °C, cooling ∈ [21, 30] °C).
    SetpointOutOfRange {
        /// `"heating"` or `"cooling"`.
        which: &'static str,
        /// The rejected value.
        value: i32,
    },
    /// An action index was outside the discrete action space.
    ActionIndexOutOfRange {
        /// The rejected index.
        index: usize,
        /// Size of the action space.
        size: usize,
    },
    /// A comfort range was empty or non-finite.
    InvalidComfortRange {
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
    /// The controlled-zone index does not exist in the building.
    BadControlledZone {
        /// The rejected index.
        index: usize,
        /// Number of zones available.
        zones: usize,
    },
    /// A replayed weather trace was exhausted before the episode ended.
    TraceExhausted {
        /// Step at which the trace ran out.
        step: usize,
    },
    /// An underlying simulator error.
    Sim(hvac_sim::SimError),
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::SetpointOutOfRange { which, value } => {
                write!(f, "{which} setpoint {value} is outside the action space")
            }
            EnvError::ActionIndexOutOfRange { index, size } => {
                write!(
                    f,
                    "action index {index} out of range for space of size {size}"
                )
            }
            EnvError::InvalidComfortRange { lo, hi } => {
                write!(f, "invalid comfort range [{lo}, {hi}]")
            }
            EnvError::BadControlledZone { index, zones } => {
                write!(f, "controlled zone {index} does not exist ({zones} zones)")
            }
            EnvError::TraceExhausted { step } => {
                write!(f, "weather trace exhausted at step {step}")
            }
            EnvError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for EnvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnvError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hvac_sim::SimError> for EnvError {
    fn from(e: hvac_sim::SimError) -> Self {
        EnvError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs: Vec<EnvError> = vec![
            EnvError::SetpointOutOfRange {
                which: "heating",
                value: 99,
            },
            EnvError::ActionIndexOutOfRange {
                index: 100,
                size: 90,
            },
            EnvError::InvalidComfortRange { lo: 5.0, hi: 1.0 },
            EnvError::BadControlledZone { index: 7, zones: 5 },
            EnvError::TraceExhausted { step: 10 },
            EnvError::Sim(hvac_sim::SimError::NoZones),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sim_error_converts_and_sources() {
        let e: EnvError = hvac_sim::SimError::NoZones.into();
        assert!(e.source().is_some());
    }
}
