//! The policy abstraction shared by every controller in the workspace.

use crate::action::SetpointAction;
use crate::space::Observation;

/// A control policy `π : (S × D) → A`.
///
/// All controllers — the default rule-based schedule, the random-shooting
/// MBRL agent, CLUE, and the extracted decision tree — implement this
/// trait, so the episode driver ([`crate::run_episode`]) and every
/// experiment harness are controller-agnostic.
///
/// `decide` takes `&mut self` because stochastic controllers advance an
/// internal RNG; deterministic policies simply ignore the mutability.
///
/// # Example
///
/// ```
/// use hvac_env::{Observation, Policy, SetpointAction};
///
/// /// A policy that always commands the same setpoints.
/// struct Constant(SetpointAction);
///
/// impl Policy for Constant {
///     fn decide(&mut self, _obs: &Observation) -> SetpointAction {
///         self.0
///     }
///     fn name(&self) -> &str {
///         "constant"
///     }
/// }
///
/// let mut p = Constant(SetpointAction::off());
/// assert_eq!(p.decide(&Observation::default()), SetpointAction::off());
/// ```
pub trait Policy {
    /// Chooses the setpoint action for the current observation.
    fn decide(&mut self, obs: &Observation) -> SetpointAction;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &str;

    /// Whether the policy is deterministic (same observation ⇒ same
    /// action, always). The extracted decision tree returns `true`;
    /// stochastic-optimizer MBRL controllers return `false`. Used by the
    /// determinism experiments (Fig. 1 vs Fig. 5).
    fn is_deterministic(&self) -> bool {
        false
    }
}

impl<P: Policy + ?Sized> Policy for &mut P {
    fn decide(&mut self, obs: &Observation) -> SetpointAction {
        (**self).decide(obs)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn is_deterministic(&self) -> bool {
        (**self).is_deterministic()
    }
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn decide(&mut self, obs: &Observation) -> SetpointAction {
        (**self).decide(obs)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn is_deterministic(&self) -> bool {
        (**self).is_deterministic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;

    impl Policy for Fixed {
        fn decide(&mut self, _obs: &Observation) -> SetpointAction {
            SetpointAction::off()
        }
        fn name(&self) -> &str {
            "fixed"
        }
        fn is_deterministic(&self) -> bool {
            true
        }
    }

    #[test]
    fn blanket_impls_delegate() {
        let mut p = Fixed;
        let obs = Observation::default();
        {
            let by_ref: &mut Fixed = &mut p;
            assert_eq!(by_ref.decide(&obs), SetpointAction::off());
            assert_eq!(by_ref.name(), "fixed");
            assert!(by_ref.is_deterministic());
        }
        let mut boxed: Box<dyn Policy> = Box::new(Fixed);
        assert_eq!(boxed.decide(&obs), SetpointAction::off());
        assert!(boxed.is_deterministic());
    }

    #[test]
    fn default_is_stochastic() {
        struct Minimal;
        impl Policy for Minimal {
            fn decide(&mut self, _o: &Observation) -> SetpointAction {
                SetpointAction::off()
            }
            fn name(&self) -> &str {
                "minimal"
            }
        }
        assert!(!Minimal.is_deterministic());
    }
}
