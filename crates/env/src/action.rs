//! The discrete setpoint action space.
//!
//! "The setpoint for the HVAC system is an integer in [15 °C, 23 °C] for
//! heating, and [21 °C, 30 °C] for cooling" (paper Section 2.1), giving a
//! 9 × 10 = 90-action joint space. The "HVAC off" action is the pair
//! that never triggers conditioning: heating at its minimum and cooling
//! at its maximum.

use crate::EnvError;
use std::ops::RangeInclusive;

/// Valid integer heating setpoints, °C.
pub const HEATING_RANGE: RangeInclusive<i32> = 15..=23;
/// Valid integer cooling setpoints, °C.
pub const COOLING_RANGE: RangeInclusive<i32> = 21..=30;

/// A validated heating/cooling setpoint pair.
///
/// # Example
///
/// ```
/// use hvac_env::SetpointAction;
///
/// # fn main() -> Result<(), hvac_env::EnvError> {
/// let a = SetpointAction::new(21, 24)?;
/// assert_eq!(a.heating(), 21);
/// assert_eq!(a.cooling(), 24);
/// assert!(SetpointAction::new(14, 24).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetpointAction {
    heating: i32,
    cooling: i32,
}

impl SetpointAction {
    /// Creates an action after validating both setpoints.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::SetpointOutOfRange`] if either setpoint is
    /// outside its legal range.
    pub fn new(heating: i32, cooling: i32) -> Result<Self, EnvError> {
        if !HEATING_RANGE.contains(&heating) {
            return Err(EnvError::SetpointOutOfRange {
                which: "heating",
                value: heating,
            });
        }
        if !COOLING_RANGE.contains(&cooling) {
            return Err(EnvError::SetpointOutOfRange {
                which: "cooling",
                value: cooling,
            });
        }
        Ok(Self { heating, cooling })
    }

    /// Creates an action by clamping arbitrary (possibly fractional)
    /// setpoints into the legal integer grid — the deployment-side
    /// "actuator" used when a learned policy outputs raw numbers.
    pub fn from_clamped(heating: f64, cooling: f64) -> Self {
        let h = (heating.round() as i32).clamp(*HEATING_RANGE.start(), *HEATING_RANGE.end());
        let c = (cooling.round() as i32).clamp(*COOLING_RANGE.start(), *COOLING_RANGE.end());
        Self {
            heating: h,
            cooling: c,
        }
    }

    /// The "HVAC off" action: heating at its minimum, cooling at its
    /// maximum, so neither ever engages under normal indoor conditions.
    /// This is the reference point of the paper's energy proxy
    /// (Section 2.1, reward definition).
    pub fn off() -> Self {
        Self {
            heating: *HEATING_RANGE.start(),
            cooling: *COOLING_RANGE.end(),
        }
    }

    /// Heating setpoint, °C.
    pub fn heating(&self) -> i32 {
        self.heating
    }

    /// Cooling setpoint, °C.
    pub fn cooling(&self) -> i32 {
        self.cooling
    }

    /// The pair as `f64` values `(heating, cooling)`.
    pub fn as_f64_pair(&self) -> (f64, f64) {
        (f64::from(self.heating), f64::from(self.cooling))
    }

    /// The paper's per-step energy-consumption proxy: the L1 distance
    /// between this action and the HVAC-off setpoints.
    pub fn energy_proxy(&self) -> f64 {
        let off = Self::off();
        f64::from((self.heating - off.heating).abs() + (self.cooling - off.cooling).abs())
    }
}

impl Default for SetpointAction {
    fn default() -> Self {
        Self::off()
    }
}

impl std::fmt::Display for SetpointAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "heat {} °C / cool {} °C", self.heating, self.cooling)
    }
}

/// The full discrete action space (all 90 legal setpoint pairs), with a
/// stable index mapping used for decision-tree class labels.
///
/// Ordering is row-major: index = (heating − 15) × 10 + (cooling − 21).
///
/// # Example
///
/// ```
/// use hvac_env::{ActionSpace, SetpointAction};
///
/// # fn main() -> Result<(), hvac_env::EnvError> {
/// let space = ActionSpace::new();
/// assert_eq!(space.len(), 90);
/// let a = SetpointAction::new(15, 21)?;
/// assert_eq!(space.index_of(a), 0);
/// assert_eq!(space.action(0)?, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionSpace {
    actions: Vec<SetpointAction>,
}

impl ActionSpace {
    /// Builds the canonical 90-action space.
    pub fn new() -> Self {
        let mut actions = Vec::with_capacity(90);
        for h in HEATING_RANGE {
            for c in COOLING_RANGE {
                actions.push(SetpointAction {
                    heating: h,
                    cooling: c,
                });
            }
        }
        Self { actions }
    }

    /// Number of actions (90).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the space is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The action at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::ActionIndexOutOfRange`] for bad indices.
    pub fn action(&self, index: usize) -> Result<SetpointAction, EnvError> {
        self.actions
            .get(index)
            .copied()
            .ok_or(EnvError::ActionIndexOutOfRange {
                index,
                size: self.actions.len(),
            })
    }

    /// The stable index of an action.
    pub fn index_of(&self, action: SetpointAction) -> usize {
        let h = (action.heating() - HEATING_RANGE.start()) as usize;
        let c = (action.cooling() - COOLING_RANGE.start()) as usize;
        h * COOLING_RANGE.clone().count() + c
    }

    /// Iterates over all actions in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, SetpointAction> {
        self.actions.iter()
    }

    /// All actions as a slice.
    pub fn as_slice(&self) -> &[SetpointAction] {
        &self.actions
    }
}

impl Default for ActionSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> IntoIterator for &'a ActionSpace {
    type Item = &'a SetpointAction;
    type IntoIter = std::slice::Iter<'a, SetpointAction>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn valid_bounds_accepted() {
        assert!(SetpointAction::new(15, 21).is_ok());
        assert!(SetpointAction::new(23, 30).is_ok());
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(SetpointAction::new(14, 21).is_err());
        assert!(SetpointAction::new(24, 21).is_err());
        assert!(SetpointAction::new(20, 20).is_err());
        assert!(SetpointAction::new(20, 31).is_err());
    }

    #[test]
    fn off_action_has_zero_energy_proxy() {
        assert_eq!(SetpointAction::off().energy_proxy(), 0.0);
    }

    #[test]
    fn energy_proxy_is_l1_distance() {
        let a = SetpointAction::new(20, 25).unwrap();
        assert_eq!(a.energy_proxy(), 5.0 + 5.0);
    }

    #[test]
    fn from_clamped_rounds_and_clamps() {
        let a = SetpointAction::from_clamped(14.2, 35.0);
        assert_eq!(a.heating(), 15);
        assert_eq!(a.cooling(), 30);
        let b = SetpointAction::from_clamped(20.6, 24.4);
        assert_eq!(b.heating(), 21);
        assert_eq!(b.cooling(), 24);
    }

    #[test]
    fn space_has_90_actions() {
        let s = ActionSpace::new();
        assert_eq!(s.len(), 90);
        assert!(!s.is_empty());
    }

    #[test]
    fn index_roundtrip() {
        let s = ActionSpace::new();
        for (i, &a) in s.iter().enumerate() {
            assert_eq!(s.index_of(a), i);
            assert_eq!(s.action(i).unwrap(), a);
        }
    }

    #[test]
    fn bad_index_errors() {
        let s = ActionSpace::new();
        assert!(matches!(
            s.action(90),
            Err(EnvError::ActionIndexOutOfRange {
                index: 90,
                size: 90
            })
        ));
    }

    #[test]
    fn display_mentions_both_setpoints() {
        let a = SetpointAction::new(18, 27).unwrap();
        let s = a.to_string();
        assert!(s.contains("18") && s.contains("27"));
    }

    proptest! {
        #[test]
        fn prop_clamped_always_valid(h in -100.0f64..100.0, c in -100.0f64..100.0) {
            let a = SetpointAction::from_clamped(h, c);
            prop_assert!(HEATING_RANGE.contains(&a.heating()));
            prop_assert!(COOLING_RANGE.contains(&a.cooling()));
        }

        #[test]
        fn prop_energy_proxy_nonnegative(h in 15i32..=23, c in 21i32..=30) {
            let a = SetpointAction::new(h, c).unwrap();
            prop_assert!(a.energy_proxy() >= 0.0);
        }
    }
}
