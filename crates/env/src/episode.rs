//! Controller-agnostic episode driver and evaluation metrics.
//!
//! The paper's Fig. 4 scores each controller by monthly energy
//! consumption and comfort violation; Fig. 6 uses the derived
//! "comfort rate ÷ energy × 1000" performance index. This module runs a
//! policy against an environment and aggregates exactly those metrics.

use crate::action::SetpointAction;
use crate::env::{HvacEnv, StepOutcome};
use crate::error::EnvError;
use crate::policy::Policy;
use crate::space::Observation;

/// Anything the episode driver can run a policy against: reset to an
/// initial observation, then step on commanded setpoints.
///
/// [`HvacEnv`] implements it directly; wrappers — e.g. a fault injector
/// that corrupts what the policy observes while the true building state
/// evolves underneath — implement it by delegation, so
/// [`run_episode`] and every harness built on it stay wrapper-agnostic.
pub trait Environment {
    /// Resets the episode and returns the initial observation.
    fn reset(&mut self) -> Observation;

    /// Executes `action` for one step.
    ///
    /// # Errors
    ///
    /// Propagates any [`EnvError`] raised by the environment.
    fn step(&mut self, action: SetpointAction) -> Result<StepOutcome, EnvError>;
}

impl Environment for HvacEnv {
    fn reset(&mut self) -> Observation {
        HvacEnv::reset(self)
    }

    fn step(&mut self, action: SetpointAction) -> Result<StepOutcome, EnvError> {
        HvacEnv::step(self, action)
    }
}

impl<E: Environment + ?Sized> Environment for &mut E {
    fn reset(&mut self) -> Observation {
        (**self).reset()
    }

    fn step(&mut self, action: SetpointAction) -> Result<StepOutcome, EnvError> {
        (**self).step(action)
    }
}

/// Per-step log entry of an episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Step index within the episode.
    pub step: usize,
    /// Observation at decision time.
    pub observation: Observation,
    /// Action commanded.
    pub action: SetpointAction,
    /// Reward earned.
    pub reward: f64,
    /// Zone temperature after the step, °C.
    pub post_zone_temperature: f64,
    /// Whole-building electrical energy, kWh.
    pub electric_energy_kwh: f64,
    /// Controlled-zone electrical energy, kWh.
    pub zone_electric_energy_kwh: f64,
    /// Comfort violation of the post-step temperature, °C.
    pub comfort_violation_degrees: f64,
    /// Whether the zone was occupied during the step.
    pub occupied: bool,
}

/// Aggregate metrics over one episode.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpisodeMetrics {
    /// Number of steps executed.
    pub steps: usize,
    /// Sum of rewards.
    pub total_reward: f64,
    /// Whole-building electrical energy, kWh.
    pub total_electric_kwh: f64,
    /// Controlled-zone electrical energy, kWh.
    pub zone_electric_kwh: f64,
    /// Number of occupied steps.
    pub occupied_steps: usize,
    /// Occupied steps whose post-step temperature violated comfort.
    pub violation_steps: usize,
    /// Mean violation magnitude over occupied steps, °C.
    pub mean_violation_degrees: f64,
}

impl EpisodeMetrics {
    /// Fraction of occupied steps violating the comfort range
    /// (the paper's "violation rate"; 0 when never occupied).
    pub fn violation_rate(&self) -> f64 {
        if self.occupied_steps == 0 {
            0.0
        } else {
            self.violation_steps as f64 / self.occupied_steps as f64
        }
    }

    /// Fraction of occupied steps inside the comfort range.
    pub fn comfort_rate(&self) -> f64 {
        1.0 - self.violation_rate()
    }

    /// The paper's Fig. 6 performance index:
    /// `comfort_rate / energy × 1000` (0 when no energy was used —
    /// which cannot happen in January in either city).
    pub fn performance_index(&self) -> f64 {
        if self.zone_electric_kwh <= 0.0 {
            0.0
        } else {
            self.comfort_rate() / self.zone_electric_kwh * 1000.0
        }
    }
}

impl std::fmt::Display for EpisodeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps={} energy={:.1} kWh (zone {:.1}) violation_rate={:.1}% reward={:.1}",
            self.steps,
            self.total_electric_kwh,
            self.zone_electric_kwh,
            100.0 * self.violation_rate(),
            self.total_reward,
        )
    }
}

/// A complete episode: the per-step log plus the aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRecord {
    /// Name of the policy that produced the episode.
    pub policy_name: String,
    /// Per-step log.
    pub steps: Vec<StepRecord>,
    /// Aggregate metrics.
    pub metrics: EpisodeMetrics,
}

impl EpisodeRecord {
    /// The sequence of actions taken (useful for determinism checks).
    pub fn actions(&self) -> Vec<SetpointAction> {
        self.steps.iter().map(|s| s.action).collect()
    }

    /// Renders the per-step log as CSV (header + one row per step) for
    /// offline analysis/plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "step,hour_of_day,occupied,zone_temperature_c,outdoor_temperature_c,\
             heating_setpoint_c,cooling_setpoint_c,post_zone_temperature_c,\
             reward,electric_energy_kwh,zone_electric_energy_kwh,violation_c\n",
        );
        for s in &self.steps {
            out.push_str(&format!(
                "{},{:.2},{},{:.4},{:.4},{},{},{:.4},{:.6},{:.6},{:.6},{:.4}\n",
                s.step,
                s.observation.disturbances.hour_of_day,
                u8::from(s.occupied),
                s.observation.zone_temperature,
                s.observation.disturbances.outdoor_temperature,
                s.action.heating(),
                s.action.cooling(),
                s.post_zone_temperature,
                s.reward,
                s.electric_energy_kwh,
                s.zone_electric_energy_kwh,
                s.comfort_violation_degrees,
            ));
        }
        out
    }

    /// The sequence of heating setpoints (Fig. 1/Fig. 5 traces).
    pub fn heating_setpoints(&self) -> Vec<i32> {
        self.steps.iter().map(|s| s.action.heating()).collect()
    }
}

/// Runs `policy` in `env` from a fresh reset until the episode reports
/// `done` (or the environment errors).
///
/// # Errors
///
/// Propagates any [`EnvError`] raised by the environment (e.g. an
/// exhausted weather trace).
///
/// # Example
///
/// ```
/// use hvac_env::{run_episode, EnvConfig, HvacEnv, Observation, Policy, SetpointAction};
///
/// struct AlwaysOff;
/// impl Policy for AlwaysOff {
///     fn decide(&mut self, _o: &Observation) -> SetpointAction {
///         SetpointAction::off()
///     }
///     fn name(&self) -> &str {
///         "always-off"
///     }
/// }
///
/// # fn main() -> Result<(), hvac_env::EnvError> {
/// let mut env = HvacEnv::new(EnvConfig::pittsburgh().with_episode_steps(10))?;
/// let record = run_episode(&mut env, &mut AlwaysOff)?;
/// assert_eq!(record.steps.len(), 10);
/// # Ok(())
/// # }
/// ```
pub fn run_episode<E: Environment + ?Sized, P: Policy>(
    env: &mut E,
    policy: &mut P,
) -> Result<EpisodeRecord, EnvError> {
    let mut obs = env.reset();
    let mut steps = Vec::new();
    let mut metrics = EpisodeMetrics::default();
    let mut violation_sum = 0.0;

    loop {
        let action = policy.decide(&obs);
        let out = env.step(action)?;
        steps.push(StepRecord {
            step: metrics.steps,
            observation: obs,
            action,
            reward: out.reward,
            post_zone_temperature: out.observation.zone_temperature,
            electric_energy_kwh: out.electric_energy_kwh,
            zone_electric_energy_kwh: out.zone_electric_energy_kwh,
            comfort_violation_degrees: out.comfort_violation_degrees,
            occupied: out.occupied,
        });

        metrics.steps += 1;
        metrics.total_reward += out.reward;
        metrics.total_electric_kwh += out.electric_energy_kwh;
        metrics.zone_electric_kwh += out.zone_electric_energy_kwh;
        if out.occupied {
            metrics.occupied_steps += 1;
            violation_sum += out.comfort_violation_degrees;
            if out.comfort_violation_degrees > 0.0 {
                metrics.violation_steps += 1;
            }
        }

        obs = out.observation;
        if out.done {
            break;
        }
    }

    metrics.mean_violation_degrees = if metrics.occupied_steps == 0 {
        0.0
    } else {
        violation_sum / metrics.occupied_steps as f64
    };

    Ok(EpisodeRecord {
        policy_name: policy.name().to_string(),
        steps,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;

    struct Constant(SetpointAction);
    impl Policy for Constant {
        fn decide(&mut self, _o: &Observation) -> SetpointAction {
            self.0
        }
        fn name(&self) -> &str {
            "constant"
        }
        fn is_deterministic(&self) -> bool {
            true
        }
    }

    fn env(steps: usize) -> HvacEnv {
        HvacEnv::new(EnvConfig::pittsburgh().with_episode_steps(steps)).unwrap()
    }

    #[test]
    fn episode_runs_to_length() {
        let mut e = env(50);
        let record = run_episode(&mut e, &mut Constant(SetpointAction::off())).unwrap();
        assert_eq!(record.steps.len(), 50);
        assert_eq!(record.metrics.steps, 50);
        assert_eq!(record.policy_name, "constant");
    }

    #[test]
    fn metrics_accumulate() {
        let mut e = env(96 * 2);
        let record =
            run_episode(&mut e, &mut Constant(SetpointAction::new(21, 24).unwrap())).unwrap();
        let m = &record.metrics;
        assert!(m.total_electric_kwh > 0.0);
        assert!(m.zone_electric_kwh > 0.0);
        assert!(m.occupied_steps > 0);
        assert!(m.total_reward <= 0.0);
        assert!((0.0..=1.0).contains(&m.violation_rate()));
        assert!((m.comfort_rate() + m.violation_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn off_policy_violates_comfort_in_winter() {
        let mut e = env(96 * 2);
        let record = run_episode(&mut e, &mut Constant(SetpointAction::off())).unwrap();
        // Pittsburgh January with no heating: cold violations while
        // occupied are essentially guaranteed.
        assert!(record.metrics.violation_rate() > 0.5);
    }

    #[test]
    fn comfort_policy_beats_off_policy_on_comfort() {
        let mut e1 = env(96 * 2);
        let warm =
            run_episode(&mut e1, &mut Constant(SetpointAction::new(21, 24).unwrap())).unwrap();
        let mut e2 = env(96 * 2);
        let off = run_episode(&mut e2, &mut Constant(SetpointAction::off())).unwrap();
        assert!(warm.metrics.violation_rate() < off.metrics.violation_rate());
        assert!(warm.metrics.total_electric_kwh > off.metrics.total_electric_kwh);
    }

    #[test]
    fn determinism_of_recorded_actions() {
        let run = || {
            let mut e = env(30);
            run_episode(&mut e, &mut Constant(SetpointAction::new(20, 25).unwrap()))
                .unwrap()
                .actions()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn performance_index_zero_without_energy() {
        let m = EpisodeMetrics::default();
        assert_eq!(m.performance_index(), 0.0);
    }

    #[test]
    fn heating_setpoints_extracted() {
        let mut e = env(5);
        let record =
            run_episode(&mut e, &mut Constant(SetpointAction::new(19, 26).unwrap())).unwrap();
        assert_eq!(record.heating_setpoints(), vec![19; 5]);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut e = env(5);
        let record = run_episode(&mut e, &mut Constant(SetpointAction::off())).unwrap();
        let csv = record.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("step,hour_of_day,occupied"));
        assert_eq!(lines[1].split(',').count(), lines[0].split(',').count());
    }

    #[test]
    fn display_mentions_energy() {
        let mut e = env(5);
        let record = run_episode(&mut e, &mut Constant(SetpointAction::off())).unwrap();
        assert!(record.metrics.to_string().contains("kWh"));
    }
}
