//! The HVAC control environment.

use crate::action::SetpointAction;
use crate::comfort::ComfortRange;
use crate::error::EnvError;
use crate::reward::{reward, RewardConfig};
use crate::space::{Disturbances, Observation};
use hvac_sim::{
    Building, BuildingConfig, ClimatePreset, OccupancySchedule, SimClock, WeatherGenerator,
    WeatherSample,
};

/// Everything needed to instantiate an [`HvacEnv`].
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Climate the weather generator draws from.
    pub climate: ClimatePreset,
    /// Building description.
    pub building: BuildingConfig,
    /// Occupancy schedule.
    pub schedule: OccupancySchedule,
    /// Comfort range (January evaluation ⇒ winter by default).
    pub comfort: ComfortRange,
    /// Reward weights.
    pub reward: RewardConfig,
    /// Index of the zone the agent controls.
    pub controlled_zone: usize,
    /// Setpoints applied to the *other* zones while the building is
    /// occupied.
    pub uncontrolled_occupied: (f64, f64),
    /// Setpoints applied to the other zones while unoccupied (setback).
    pub uncontrolled_unoccupied: (f64, f64),
    /// Episode length in 15-minute steps (paper: one month, `31 × 96`).
    pub episode_steps: usize,
    /// Seed for the weather process; `reset` reproduces the same weather.
    pub weather_seed: u64,
    /// Calendar position of step 0 (January 1st by default; July 1st
    /// for summer scenarios).
    pub start_clock: SimClock,
}

impl EnvConfig {
    fn with_climate(climate: ClimatePreset) -> Self {
        Self {
            climate,
            building: BuildingConfig::five_zone_463m2(),
            schedule: OccupancySchedule::office(),
            comfort: ComfortRange::winter(),
            reward: RewardConfig::paper(),
            controlled_zone: 1,
            uncontrolled_occupied: (20.0, 23.5),
            uncontrolled_unoccupied: (15.0, 30.0),
            episode_steps: 31 * hvac_sim::STEPS_PER_DAY,
            weather_seed: 2021,
            start_clock: SimClock::january(),
        }
    }

    /// January in Pittsburgh (ASHRAE 4A) — the paper's cold-climate city.
    pub fn pittsburgh() -> Self {
        Self::with_climate(ClimatePreset::pittsburgh_4a())
    }

    /// January in Tucson (ASHRAE 2B) — the paper's hot-dry city.
    pub fn tucson() -> Self {
        Self::with_climate(ClimatePreset::tucson_2b())
    }

    /// January in New York (ASHRAE 4A) — used by the Fig. 3 noise study.
    pub fn new_york() -> Self {
        Self::with_climate(ClimatePreset::new_york_4a())
    }

    /// July in Pittsburgh with the paper's summer comfort range
    /// (`[23, 26]` °C).
    pub fn pittsburgh_summer() -> Self {
        let mut config = Self::with_climate(ClimatePreset::pittsburgh_4a_july());
        config.comfort = ComfortRange::summer();
        config.uncontrolled_occupied = (23.0, 26.0);
        config.start_clock = SimClock::july();
        config
    }

    /// July in Tucson with the paper's summer comfort range.
    pub fn tucson_summer() -> Self {
        let mut config = Self::with_climate(ClimatePreset::tucson_2b_july());
        config.comfort = ComfortRange::summer();
        config.uncontrolled_occupied = (23.0, 26.0);
        config.start_clock = SimClock::july();
        config
    }

    /// Returns the config with a different weather seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.weather_seed = seed;
        self
    }

    /// Returns the config with a different episode length (in steps).
    pub fn with_episode_steps(mut self, steps: usize) -> Self {
        self.episode_steps = steps;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Propagates building validation failures and rejects a controlled
    /// zone index outside the building.
    pub fn validate(&self) -> Result<(), EnvError> {
        self.building.validate()?;
        if self.controlled_zone >= self.building.zones.len() {
            return Err(EnvError::BadControlledZone {
                index: self.controlled_zone,
                zones: self.building.zones.len(),
            });
        }
        Ok(())
    }
}

enum WeatherSource {
    Generator {
        seed: u64,
        generator: Box<WeatherGenerator>,
    },
    Trace {
        samples: Vec<WeatherSample>,
        cursor: usize,
    },
}

impl WeatherSource {
    fn rewind(&mut self, climate: &ClimatePreset) {
        match self {
            WeatherSource::Generator { seed, generator } => {
                **generator = WeatherGenerator::new(climate.clone(), *seed);
            }
            WeatherSource::Trace { cursor, .. } => *cursor = 0,
        }
    }

    fn next(&mut self, clock: &SimClock) -> Result<WeatherSample, EnvError> {
        match self {
            WeatherSource::Generator { generator, .. } => Ok(generator.sample(clock)),
            WeatherSource::Trace { samples, cursor } => {
                let s = samples
                    .get(*cursor)
                    .copied()
                    .ok_or(EnvError::TraceExhausted { step: *cursor })?;
                *cursor += 1;
                Ok(s)
            }
        }
    }
}

/// Result of one environment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Observation at the *next* decision time.
    pub observation: Observation,
    /// Reward (Eq. 2) earned by the step just taken.
    pub reward: f64,
    /// Whole-building electrical energy consumed this step, kWh.
    pub electric_energy_kwh: f64,
    /// Electrical energy of the controlled zone alone, kWh.
    pub zone_electric_energy_kwh: f64,
    /// Comfort violation (°C beyond the range) of the post-step zone
    /// temperature.
    pub comfort_violation_degrees: f64,
    /// Whether the controlled zone was occupied during the step.
    pub occupied: bool,
    /// Whether the episode has reached its configured length.
    pub done: bool,
}

/// The simulated HVAC control environment.
///
/// Mirrors the Sinergym loop the paper uses: the agent observes
/// `(s_t, d_t)`, commands a setpoint pair, the building advances one
/// 15-minute step, and the reward of Eq. 2 is evaluated on the resulting
/// zone temperature (the quantity the MBRL controller optimizes through
/// its model in Eq. 1).
pub struct HvacEnv {
    config: EnvConfig,
    building: Building,
    weather: WeatherSource,
    clock: SimClock,
    current_weather: WeatherSample,
    steps_taken: usize,
}

impl HvacEnv {
    /// Creates an environment with generated weather.
    ///
    /// # Errors
    ///
    /// Returns any error from [`EnvConfig::validate`].
    pub fn new(config: EnvConfig) -> Result<Self, EnvError> {
        config.validate()?;
        let building = Building::new(config.building.clone())?;
        let generator = WeatherGenerator::new(config.climate.clone(), config.weather_seed);
        let mut env = Self {
            weather: WeatherSource::Generator {
                seed: config.weather_seed,
                generator: Box::new(generator),
            },
            building,
            clock: config.start_clock,
            current_weather: WeatherSample::default(),
            steps_taken: 0,
            config,
        };
        env.reset();
        Ok(env)
    }

    /// Creates an environment that replays a fixed weather trace — the
    /// protocol of the paper's Fig. 1/Fig. 5 determinism experiments.
    ///
    /// # Errors
    ///
    /// Returns any error from [`EnvConfig::validate`].
    pub fn with_weather_trace(
        config: EnvConfig,
        trace: Vec<WeatherSample>,
    ) -> Result<Self, EnvError> {
        config.validate()?;
        let building = Building::new(config.building.clone())?;
        let mut env = Self {
            weather: WeatherSource::Trace {
                samples: trace,
                cursor: 0,
            },
            building,
            clock: config.start_clock,
            current_weather: WeatherSample::default(),
            steps_taken: 0,
            config,
        };
        env.reset();
        Ok(env)
    }

    /// The environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// The comfort range in force.
    pub fn comfort(&self) -> &ComfortRange {
        &self.config.comfort
    }

    /// The simulation clock (at the next decision time).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Steps taken since the last reset.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Resets the episode: building to initial temperatures, clock to
    /// January 1st 00:00, weather re-seeded (or trace rewound). Returns
    /// the initial observation.
    ///
    /// # Panics
    ///
    /// Panics only if a replayed weather trace is empty.
    pub fn reset(&mut self) -> Observation {
        self.building.reset();
        self.clock.reset();
        self.steps_taken = 0;
        self.weather.rewind(&self.config.climate);
        self.current_weather = self
            .weather
            .next(&self.clock)
            .expect("weather trace must contain at least one sample");
        self.observe()
    }

    /// The observation at the current decision time.
    pub fn observe(&self) -> Observation {
        let occupants = self.config.schedule.occupants(&self.clock);
        Observation::new(
            self.building.zone_temperature(self.config.controlled_zone),
            Disturbances::from_weather(
                &self.current_weather,
                occupants[self.config.controlled_zone],
                self.clock.hour_of_day(),
            ),
        )
    }

    /// Executes `action` on the controlled zone for one step.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::TraceExhausted`] when a replayed trace runs
    /// out, or a wrapped simulator error.
    pub fn step(&mut self, action: SetpointAction) -> Result<StepOutcome, EnvError> {
        let occupants = self.config.schedule.occupants(&self.clock);
        let occupied = occupants[self.config.controlled_zone] > 0.0;

        let mut setpoints = Vec::with_capacity(self.building.zone_count());
        let others = if self.config.schedule.is_occupied(&self.clock) {
            self.config.uncontrolled_occupied
        } else {
            self.config.uncontrolled_unoccupied
        };
        for i in 0..self.building.zone_count() {
            if i == self.config.controlled_zone {
                setpoints.push(action.as_f64_pair());
            } else {
                setpoints.push(others);
            }
        }

        let result = self
            .building
            .step(&self.current_weather, &occupants, &setpoints)?;

        self.clock.advance();
        self.steps_taken += 1;
        self.current_weather = self.weather.next(&self.clock)?;

        let next_obs = self.observe();
        let post_temp = result.zone_temperatures[self.config.controlled_zone];
        let r = reward(
            &self.config.reward,
            &self.config.comfort,
            post_temp,
            action,
            occupied,
        );

        Ok(StepOutcome {
            observation: next_obs,
            reward: r,
            electric_energy_kwh: result.electric_energy_kwh,
            zone_electric_energy_kwh: result.hvac[self.config.controlled_zone].electric_power
                * hvac_sim::STEP_SECONDS
                / 3.6e6,
            comfort_violation_degrees: self.config.comfort.violation_degrees(post_temp),
            occupied,
            done: self.steps_taken >= self.config.episode_steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_config() -> EnvConfig {
        EnvConfig::pittsburgh().with_episode_steps(96)
    }

    #[test]
    fn reset_is_reproducible() {
        let mut env = HvacEnv::new(short_config()).unwrap();
        let a = SetpointAction::new(21, 25).unwrap();
        let first: Vec<f64> = (0..10).map(|_| env.step(a).unwrap().reward).collect();
        env.reset();
        let second: Vec<f64> = (0..10).map(|_| env.step(a).unwrap().reward).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn episode_terminates_at_configured_length() {
        let mut env = HvacEnv::new(short_config()).unwrap();
        let a = SetpointAction::off();
        for i in 0..96 {
            let out = env.step(a).unwrap();
            assert_eq!(out.done, i == 95, "step {i}");
        }
    }

    #[test]
    fn bad_controlled_zone_rejected() {
        let mut c = short_config();
        c.controlled_zone = 9;
        assert!(matches!(
            HvacEnv::new(c),
            Err(EnvError::BadControlledZone { index: 9, zones: 5 })
        ));
    }

    #[test]
    fn heating_action_raises_zone_temperature() {
        let mut cold_env = HvacEnv::new(short_config()).unwrap();
        let mut warm_env = HvacEnv::new(short_config()).unwrap();
        let off = SetpointAction::off();
        let heat = SetpointAction::new(23, 30).unwrap();
        let mut cold_t = 0.0;
        let mut warm_t = 0.0;
        for _ in 0..48 {
            cold_t = cold_env.step(off).unwrap().observation.zone_temperature;
            warm_t = warm_env.step(heat).unwrap().observation.zone_temperature;
        }
        assert!(warm_t > cold_t + 1.0);
    }

    #[test]
    fn trace_mode_replays_and_exhausts() {
        let trace = vec![WeatherSample::default(); 5];
        let mut env = HvacEnv::with_weather_trace(short_config(), trace).unwrap();
        let a = SetpointAction::off();
        for _ in 0..4 {
            env.step(a).unwrap();
        }
        assert!(matches!(env.step(a), Err(EnvError::TraceExhausted { .. })));
    }

    #[test]
    fn trace_mode_is_bitwise_deterministic() {
        let config = short_config();
        let mut generator = WeatherGenerator::new(config.climate.clone(), 7);
        let trace = generator.trace(&SimClock::january(), 20);
        let run = |trace: Vec<WeatherSample>| {
            let mut env = HvacEnv::with_weather_trace(short_config(), trace).unwrap();
            (0..19)
                .map(|_| {
                    env.step(SetpointAction::new(20, 26).unwrap())
                        .unwrap()
                        .reward
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(trace.clone()), run(trace));
    }

    #[test]
    fn observation_reflects_occupancy_schedule() {
        let mut env = HvacEnv::new(short_config()).unwrap();
        // Step to 10:00 on Jan 1 (Friday): occupied.
        for _ in 0..40 {
            env.step(SetpointAction::off()).unwrap();
        }
        assert!(env.observe().is_occupied());
    }

    #[test]
    fn reward_is_nonpositive_every_step() {
        let mut env = HvacEnv::new(short_config()).unwrap();
        for _ in 0..96 {
            let out = env.step(SetpointAction::new(22, 24).unwrap()).unwrap();
            assert!(out.reward <= 0.0);
            assert!(out.electric_energy_kwh >= 0.0);
            assert!(out.zone_electric_energy_kwh >= 0.0);
        }
    }

    #[test]
    fn summer_config_starts_in_july_with_summer_comfort() {
        let config = EnvConfig::tucson_summer().with_episode_steps(96);
        let env = HvacEnv::new(config).unwrap();
        assert_eq!(env.clock().day_of_year(), 181);
        assert_eq!(env.comfort().lo(), 23.0);
        assert_eq!(env.comfort().hi(), 26.0);
        // July in Tucson: the first observation's outdoor temperature is
        // summer-hot.
        assert!(env.observe().disturbances.outdoor_temperature > 15.0);
    }

    #[test]
    fn observation_carries_hour_of_day() {
        let mut env = HvacEnv::new(short_config()).unwrap();
        assert_eq!(env.observe().disturbances.hour_of_day, 0.0);
        for _ in 0..5 {
            env.step(SetpointAction::off()).unwrap();
        }
        assert!((env.observe().disturbances.hour_of_day - 1.25).abs() < 1e-12);
    }

    #[test]
    fn zone_energy_bounded_by_building_energy() {
        let mut env = HvacEnv::new(short_config()).unwrap();
        for _ in 0..96 {
            let out = env.step(SetpointAction::new(23, 24).unwrap()).unwrap();
            assert!(out.zone_electric_energy_kwh <= out.electric_energy_kwh + 1e-12);
        }
    }
}
