//! Sinergym-style MDP environment over the building simulator.
//!
//! This crate defines the decision problem of the paper's Section 2.1:
//!
//! * **State** `s_t` — the controlled zone's air temperature.
//! * **Disturbances** `d_t` — outdoor drybulb temperature, relative
//!   humidity, wind speed, solar radiation, and zone occupant count
//!   (Table 1).
//! * **Action** `a_t` — an integer heating setpoint in `[15, 23]` °C and
//!   an integer cooling setpoint in `[21, 30]` °C.
//! * **Reward** (Eq. 2) — a weighted sum of an energy proxy and the
//!   comfort-range violation, with the energy weight `w_e = 0.01` while
//!   occupied and `w_e = 1` while unoccupied.
//!
//! [`HvacEnv`] drives one controlled zone of the five-zone building; the
//! remaining zones run a fixed default schedule, mirroring the paper's
//! single-zone control formulation on a multi-zone building. The
//! environment can either generate weather on the fly (seeded) or replay
//! a fixed disturbance trace — the latter reproduces the "fixed set of
//! disturbances of one day" protocol behind the paper's Fig. 1 and
//! Fig. 5.
//!
//! # Example
//!
//! ```
//! use hvac_env::{EnvConfig, HvacEnv, SetpointAction};
//!
//! # fn main() -> Result<(), hvac_env::EnvError> {
//! let mut env = HvacEnv::new(EnvConfig::pittsburgh())?;
//! let obs = env.reset();
//! let action = SetpointAction::new(20, 26)?;
//! let outcome = env.step(action)?;
//! assert!(outcome.observation.zone_temperature.is_finite());
//! assert!(outcome.reward <= 0.0);
//! # let _ = obs;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod comfort;
pub mod env;
pub mod episode;
pub mod error;
pub mod policy;
pub mod reward;
pub mod space;

pub use action::{ActionSpace, SetpointAction, COOLING_RANGE, HEATING_RANGE};
pub use comfort::ComfortRange;
pub use env::{EnvConfig, HvacEnv, StepOutcome};
pub use episode::{run_episode, Environment, EpisodeMetrics, EpisodeRecord, StepRecord};
pub use error::EnvError;
pub use policy::Policy;
pub use reward::{reward, RewardConfig};
pub use space::{
    in_valid_range, Disturbances, Observation, Transition, POLICY_INPUT_DIM, VALID_RANGES,
};
