//! Comfort ranges.
//!
//! The paper defines the set of "safe" states as zone temperatures inside
//! a predefined comfort range `[z̲, z̄]` — `[20, 23.5]` °C in winter and
//! `[23, 26]` °C in summer (Section 2.1). The comfort range is both a
//! reward ingredient (Eq. 2) and the safety predicate of all three
//! verification criteria (Eq. 4).

use crate::EnvError;

/// A closed zone-temperature comfort interval `[lo, hi]`, °C.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComfortRange {
    lo: f64,
    hi: f64,
}

impl ComfortRange {
    /// Creates a comfort range.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidComfortRange`] if `lo >= hi` or either
    /// bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, EnvError> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(EnvError::InvalidComfortRange { lo, hi });
        }
        Ok(Self { lo, hi })
    }

    /// The paper's winter comfort range: `[20.0, 23.5]` °C.
    pub fn winter() -> Self {
        Self { lo: 20.0, hi: 23.5 }
    }

    /// The paper's summer comfort range: `[23.0, 26.0]` °C.
    pub fn summer() -> Self {
        Self { lo: 23.0, hi: 26.0 }
    }

    /// Lower bound `z̲`, °C.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound `z̄`, °C.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Midpoint of the range — the value Algorithm 1 writes into failed
    /// leaves ("we correct it by editing the setpoint in the failed leaf
    /// node to the median of the comfort zone").
    pub fn median(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `temp` lies inside the closed range.
    pub fn contains(&self, temp: f64) -> bool {
        (self.lo..=self.hi).contains(&temp)
    }

    /// The comfort-violation magnitude of Eq. 2:
    /// `|t − z̄|₊ + |z̲ − t|₊` — zero inside the range, otherwise the
    /// distance to the nearest bound.
    pub fn violation_degrees(&self, temp: f64) -> f64 {
        (temp - self.hi).max(0.0) + (self.lo - temp).max(0.0)
    }

    /// Whether `temp` is *above* the range (`s_t > z̄` — the premise of
    /// verification criterion #2).
    pub fn is_above(&self, temp: f64) -> bool {
        temp > self.hi
    }

    /// Whether `temp` is *below* the range (`s_t < z̲` — the premise of
    /// verification criterion #3).
    pub fn is_below(&self, temp: f64) -> bool {
        temp < self.lo
    }
}

impl std::fmt::Display for ComfortRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.1} °C, {:.1} °C]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_ranges() {
        let w = ComfortRange::winter();
        assert_eq!((w.lo(), w.hi()), (20.0, 23.5));
        let s = ComfortRange::summer();
        assert_eq!((s.lo(), s.hi()), (23.0, 26.0));
    }

    #[test]
    fn median_is_midpoint() {
        assert!((ComfortRange::winter().median() - 21.75).abs() < 1e-12);
    }

    #[test]
    fn violation_is_zero_inside() {
        let r = ComfortRange::winter();
        assert_eq!(r.violation_degrees(21.0), 0.0);
        assert_eq!(r.violation_degrees(20.0), 0.0);
        assert_eq!(r.violation_degrees(23.5), 0.0);
    }

    #[test]
    fn violation_measures_distance_outside() {
        let r = ComfortRange::winter();
        assert!((r.violation_degrees(18.0) - 2.0).abs() < 1e-12);
        assert!((r.violation_degrees(25.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn above_below_predicates() {
        let r = ComfortRange::winter();
        assert!(r.is_below(19.9));
        assert!(r.is_above(23.6));
        assert!(!r.is_below(20.0));
        assert!(!r.is_above(23.5));
    }

    #[test]
    fn degenerate_range_rejected() {
        assert!(ComfortRange::new(22.0, 22.0).is_err());
        assert!(ComfortRange::new(23.0, 20.0).is_err());
        assert!(ComfortRange::new(f64::NAN, 25.0).is_err());
    }

    #[test]
    fn display_shows_bounds() {
        assert_eq!(ComfortRange::winter().to_string(), "[20.0 °C, 23.5 °C]");
    }

    proptest! {
        #[test]
        fn prop_violation_nonnegative(t in -40.0f64..60.0) {
            prop_assert!(ComfortRange::winter().violation_degrees(t) >= 0.0);
        }

        #[test]
        fn prop_contains_iff_zero_violation(t in -40.0f64..60.0) {
            let r = ComfortRange::summer();
            prop_assert_eq!(r.contains(t), r.violation_degrees(t) == 0.0);
        }

        #[test]
        fn prop_exactly_one_region(t in -40.0f64..60.0) {
            let r = ComfortRange::winter();
            let states = [r.contains(t), r.is_above(t), r.is_below(t)];
            prop_assert_eq!(states.iter().filter(|&&x| x).count(), 1);
        }
    }
}
