//! Error types.

use std::error::Error;
use std::fmt;

/// Error type for neural-network construction and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A network was requested with fewer than two layer sizes
    /// (input and output are the minimum).
    TooFewLayers {
        /// Number of sizes supplied.
        got: usize,
    },
    /// A layer size of zero was supplied.
    ZeroWidth,
    /// An input vector's length did not match the layer/network width.
    DimensionMismatch {
        /// Expected width.
        expected: usize,
        /// Supplied width.
        got: usize,
    },
    /// Training was invoked with no samples, or with inputs/targets of
    /// different lengths.
    BadDataset {
        /// Number of input rows.
        inputs: usize,
        /// Number of target rows.
        targets: usize,
    },
    /// A hyperparameter was non-positive or non-finite.
    BadHyperparameter {
        /// Name of the offending hyperparameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Training produced a non-finite loss (diverged).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
    /// A batched entry point was invoked with a zero-row batch. Distinct
    /// from [`NnError::DimensionMismatch`] so a bench or serve
    /// misconfiguration (nothing to infer) doesn't read as a shape bug
    /// (`expected 0, got 0` told the caller nothing).
    EmptyBatch,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::TooFewLayers { got } => {
                write!(f, "network needs at least 2 layer sizes, got {got}")
            }
            NnError::ZeroWidth => write!(f, "layer width must be at least 1"),
            NnError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            NnError::BadDataset { inputs, targets } => {
                write!(f, "bad dataset: {inputs} inputs vs {targets} targets")
            }
            NnError::BadHyperparameter { name, value } => {
                write!(f, "bad hyperparameter {name} = {value}")
            }
            NnError::Diverged { epoch } => {
                write!(f, "training diverged at epoch {epoch}")
            }
            NnError::EmptyBatch => {
                write!(f, "batched inference invoked with a zero-row batch")
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let errs = [
            NnError::TooFewLayers { got: 1 },
            NnError::ZeroWidth,
            NnError::DimensionMismatch {
                expected: 3,
                got: 2,
            },
            NnError::BadDataset {
                inputs: 4,
                targets: 5,
            },
            NnError::BadHyperparameter {
                name: "lr",
                value: -1.0,
            },
            NnError::Diverged { epoch: 3 },
            NnError::EmptyBatch,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
