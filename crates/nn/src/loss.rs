//! Mean-squared-error loss (the paper's training criterion).

use crate::error::NnError;

/// Mean squared error over a flat batch: `Σ (p − t)² / n`.
///
/// # Errors
///
/// Returns [`NnError::DimensionMismatch`] if the slices differ in length
/// or are empty.
///
/// # Example
///
/// ```
/// let loss = hvac_nn::mse(&[1.0, 2.0], &[1.0, 4.0])?;
/// assert!((loss - 2.0).abs() < 1e-12);
/// # Ok::<(), hvac_nn::NnError>(())
/// ```
pub fn mse(predictions: &[f64], targets: &[f64]) -> Result<f64, NnError> {
    if predictions.is_empty() || predictions.len() != targets.len() {
        return Err(NnError::DimensionMismatch {
            expected: targets.len(),
            got: predictions.len(),
        });
    }
    let n = predictions.len() as f64;
    Ok(predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / n)
}

/// The gradient of [`mse`] with respect to the predictions:
/// `2 (p − t) / n`.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn mse_gradient(predictions: &[f64], targets: &[f64]) -> Result<Vec<f64>, NnError> {
    if predictions.is_empty() || predictions.len() != targets.len() {
        return Err(NnError::DimensionMismatch {
            expected: targets.len(),
            got: predictions.len(),
        });
    }
    let n = predictions.len() as f64;
    Ok(predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| 2.0 * (p - t) / n)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_loss_when_equal() {
        assert_eq!(mse(&[1.0, -2.0], &[1.0, -2.0]).unwrap(), 0.0);
    }

    #[test]
    fn known_value() {
        // Differences 1 and 3 → (1 + 9) / 2 = 5.
        assert!((mse(&[1.0, 0.0], &[0.0, 3.0]).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mismatch_rejected() {
        assert!(mse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mse(&[], &[]).is_err());
        assert!(mse_gradient(&[1.0], &[]).is_err());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let p = [0.5, -1.0, 2.0];
        let t = [0.0, 0.0, 1.0];
        let g = mse_gradient(&p, &t).unwrap();
        let h = 1e-6;
        for k in 0..p.len() {
            let mut pp = p;
            pp[k] += h;
            let mut pm = p;
            pm[k] -= h;
            let numeric = (mse(&pp, &t).unwrap() - mse(&pm, &t).unwrap()) / (2.0 * h);
            assert!((numeric - g[k]).abs() < 1e-6);
        }
    }

    proptest! {
        #[test]
        fn prop_loss_nonnegative(
            p in proptest::collection::vec(-10.0f64..10.0, 1..20),
        ) {
            let t = vec![0.0; p.len()];
            prop_assert!(mse(&p, &t).unwrap() >= 0.0);
        }

        #[test]
        fn prop_gradient_zero_at_minimum(
            p in proptest::collection::vec(-10.0f64..10.0, 1..20),
        ) {
            let g = mse_gradient(&p, &p).unwrap();
            prop_assert!(g.iter().all(|&x| x == 0.0));
        }
    }
}
