//! Adam optimizer with L2 weight decay.
//!
//! Matches PyTorch's `torch.optim.Adam(…, weight_decay=…)` semantics —
//! the decay term is added to the gradient *before* the moment updates
//! (classic L2 regularization, not AdamW's decoupled form) — because the
//! paper trains its dynamics model with exactly that optimizer
//! (Section 4.1: lr `1e-3`, weight decay `1e-5`).

use crate::error::NnError;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate (paper: `1e-3`).
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical-stability constant ε.
    pub epsilon: f64,
    /// L2 weight decay (paper: `1e-5`).
    pub weight_decay: f64,
}

impl AdamConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            learning_rate: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 1e-5,
        }
    }

    /// Validates hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadHyperparameter`] for non-positive learning
    /// rate/epsilon, betas outside `(0, 1)`, or negative weight decay.
    pub fn validate(&self) -> Result<(), NnError> {
        let positive = [
            ("learning_rate", self.learning_rate),
            ("epsilon", self.epsilon),
        ];
        for (name, value) in positive {
            if !(value > 0.0) || !value.is_finite() {
                return Err(NnError::BadHyperparameter { name, value });
            }
        }
        for (name, value) in [("beta1", self.beta1), ("beta2", self.beta2)] {
            if !(0.0..1.0).contains(&value) {
                return Err(NnError::BadHyperparameter { name, value });
            }
        }
        if !(self.weight_decay >= 0.0) || !self.weight_decay.is_finite() {
            return Err(NnError::BadHyperparameter {
                name: "weight_decay",
                value: self.weight_decay,
            });
        }
        Ok(())
    }
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Adam state for one flat parameter vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `dim` parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadHyperparameter`] for invalid configuration.
    pub fn new(dim: usize, config: AdamConfig) -> Result<Self, NnError> {
        config.validate()?;
        Ok(Self {
            config,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        })
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update: `params ← params − lr · m̂ / (√v̂ + ε)` with
    /// decay-augmented gradients.
    ///
    /// # Panics
    ///
    /// Panics if `params`/`grads` lengths differ from the optimizer's
    /// dimension (a programming error, not a data error).
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter dimension changed");
        assert_eq!(grads.len(), self.m.len(), "gradient dimension changed");
        self.t += 1;
        let c = &self.config;
        let bias1 = 1.0 - c.beta1.powi(self.t as i32);
        let bias2 = 1.0 - c.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] + c.weight_decay * params[i];
            self.m[i] = c.beta1 * self.m[i] + (1.0 - c.beta1) * g;
            self.v[i] = c.beta2 * self.v[i] + (1.0 - c.beta2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            params[i] -= c.learning_rate * m_hat / (v_hat.sqrt() + c.epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x − 3)², ∇f = 2(x − 3).
        let config = AdamConfig {
            learning_rate: 0.1,
            weight_decay: 0.0,
            ..AdamConfig::paper()
        };
        let mut adam = Adam::new(1, config).unwrap();
        let mut x = vec![0.0];
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "converged to {}", x[0]);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let config = AdamConfig {
            learning_rate: 0.01,
            weight_decay: 0.5,
            ..AdamConfig::paper()
        };
        let mut adam = Adam::new(1, config).unwrap();
        let mut x = vec![5.0];
        // Zero task gradient: only decay acts.
        for _ in 0..200 {
            adam.step(&mut x, &[0.0]);
        }
        assert!(x[0] < 4.0, "decay failed: {}", x[0]);
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let bad = AdamConfig {
            learning_rate: 0.0,
            ..AdamConfig::paper()
        };
        assert!(Adam::new(1, bad).is_err());
        let bad = AdamConfig {
            beta1: 1.0,
            ..AdamConfig::paper()
        };
        assert!(Adam::new(1, bad).is_err());
        let bad = AdamConfig {
            weight_decay: -1.0,
            ..AdamConfig::paper()
        };
        assert!(Adam::new(1, bad).is_err());
    }

    #[test]
    #[should_panic(expected = "parameter dimension changed")]
    fn dimension_change_panics() {
        let mut adam = Adam::new(2, AdamConfig::paper()).unwrap();
        let mut x = vec![0.0];
        adam.step(&mut x, &[0.0]);
    }

    #[test]
    fn step_counter_advances() {
        let mut adam = Adam::new(1, AdamConfig::paper()).unwrap();
        assert_eq!(adam.steps(), 0);
        let mut x = vec![1.0];
        adam.step(&mut x, &[0.1]);
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn paper_config_values() {
        let c = AdamConfig::paper();
        assert_eq!(c.learning_rate, 1e-3);
        assert_eq!(c.weight_decay, 1e-5);
    }
}
