//! Elementwise activation functions.

/// An elementwise activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit `max(0, x)` — the hidden-layer default.
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// The identity function — used for regression output layers.
    Identity,
}

impl Activation {
    /// Applies the activation to one value.
    ///
    /// # Example
    ///
    /// ```
    /// use hvac_nn::Activation;
    ///
    /// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
    /// assert_eq!(Activation::Relu.apply(3.0), 3.0);
    /// assert_eq!(Activation::Identity.apply(-2.0), -2.0);
    /// ```
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// The derivative dσ/dx evaluated using the *pre-activation* value.
    pub fn derivative(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to a slice in place.
    pub fn apply_slice(&self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_basics() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn tanh_bounds_and_derivative() {
        assert!(Activation::Tanh.apply(10.0) <= 1.0);
        assert!(Activation::Tanh.apply(-10.0) >= -1.0);
        assert!((Activation::Tanh.derivative(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_is_identity() {
        assert_eq!(Activation::Identity.apply(3.25), 3.25);
        assert_eq!(Activation::Identity.derivative(-9.0), 1.0);
    }

    #[test]
    fn apply_slice_in_place() {
        let mut xs = [-1.0, 2.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, [0.0, 2.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::Tanh.to_string(), "tanh");
    }

    proptest! {
        #[test]
        fn prop_derivative_matches_finite_difference(
            x in -3.0f64..3.0,
            act in prop_oneof![
                Just(Activation::Tanh),
                Just(Activation::Identity),
            ],
        ) {
            let h = 1e-6;
            let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
            prop_assert!((numeric - act.derivative(x)).abs() < 1e-5);
        }

        #[test]
        fn prop_relu_nonnegative(x in -1e6f64..1e6) {
            prop_assert!(Activation::Relu.apply(x) >= 0.0);
        }
    }
}
