//! A minimal dense neural-network library.
//!
//! The paper's system dynamics model `f̂` is a PyTorch MLP trained with
//! MSE loss and the Adam optimizer (150 epochs, learning rate `1e-3`,
//! weight decay `1e-5` — Section 4.1). This crate reimplements exactly
//! that slice of deep learning from scratch: dense layers, ReLU/Tanh
//! activations, mean-squared-error loss, Adam with L2 weight decay,
//! mini-batch training with a seeded shuffle, and Xavier/He weight
//! initialization.
//!
//! The point is not generality — it is a faithful, dependency-free,
//! *black-box* regressor, because the paper's whole argument starts from
//! the premise that the dynamics model is an opaque function the
//! verifier cannot inspect.
//!
//! # Example
//!
//! ```
//! use hvac_nn::{Activation, Mlp, TrainConfig};
//!
//! # fn main() -> Result<(), hvac_nn::NnError> {
//! // Learn y = 2x on [0, 1].
//! let inputs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 64.0]).collect();
//! let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![2.0 * x[0]]).collect();
//!
//! let mut mlp = Mlp::new(&[1, 16, 1], Activation::Relu, 42)?;
//! let config = TrainConfig { epochs: 800, batch_size: 8, ..TrainConfig::default() };
//! let history = mlp.fit(&inputs, &targets, &config)?;
//! assert!(history.final_loss() < 1e-3);
//! let y = mlp.predict(&[0.5])?;
//! assert!((y[0] - 1.0).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod error;
pub mod layer;
pub mod loss;
pub mod mlp;
pub mod optimizer;
pub mod serialize;

pub use activation::Activation;
pub use error::NnError;
pub use layer::Dense;
pub use loss::{mse, mse_gradient};
pub use mlp::{Mlp, MlpScratch, TrainConfig, TrainHistory};
pub use optimizer::{Adam, AdamConfig};
