//! Dense (fully connected) layers with manual backpropagation.

use crate::activation::Activation;
use crate::error::NnError;
use hvac_stats::sample_standard_normal;
use rand::rngs::StdRng;

/// A dense layer `y = σ(W x + b)` storing its parameters, Adam moments,
/// and the caches needed for backpropagation.
///
/// Weights are stored row-major: `weights[o * in_dim + i]` connects input
/// `i` to output `o`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    weights: Vec<f64>,
    biases: Vec<f64>,
    // Gradients accumulated by the current backward pass.
    grad_weights: Vec<f64>,
    grad_biases: Vec<f64>,
    // Forward caches (per last batch): inputs and pre-activations.
    cache_input: Vec<f64>,
    cache_pre_activation: Vec<f64>,
    cache_batch: usize,
}

impl Dense {
    /// Creates a layer with He-scaled Gaussian initialization (suited to
    /// ReLU; harmless for the identity output layer).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroWidth`] when either dimension is zero.
    pub fn new(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Result<Self, NnError> {
        if in_dim == 0 || out_dim == 0 {
            return Err(NnError::ZeroWidth);
        }
        let scale = (2.0 / in_dim as f64).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| scale * sample_standard_normal(rng))
            .collect();
        Ok(Self {
            in_dim,
            out_dim,
            activation,
            weights,
            biases: vec![0.0; out_dim],
            grad_weights: vec![0.0; in_dim * out_dim],
            grad_biases: vec![0.0; out_dim],
            cache_input: Vec::new(),
            cache_pre_activation: Vec::new(),
            cache_batch: 0,
        })
    }

    /// Reconstructs a layer from explicit parameters (deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ZeroWidth`] for zero dimensions and
    /// [`NnError::DimensionMismatch`] if the parameter vectors have the
    /// wrong lengths.
    pub fn from_parameters(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        weights: Vec<f64>,
        biases: Vec<f64>,
    ) -> Result<Self, NnError> {
        if in_dim == 0 || out_dim == 0 {
            return Err(NnError::ZeroWidth);
        }
        if weights.len() != in_dim * out_dim {
            return Err(NnError::DimensionMismatch {
                expected: in_dim * out_dim,
                got: weights.len(),
            });
        }
        if biases.len() != out_dim {
            return Err(NnError::DimensionMismatch {
                expected: out_dim,
                got: biases.len(),
            });
        }
        Ok(Self {
            in_dim,
            out_dim,
            activation,
            grad_weights: vec![0.0; weights.len()],
            grad_biases: vec![0.0; biases.len()],
            weights,
            biases,
            cache_input: Vec::new(),
            cache_pre_activation: Vec::new(),
            cache_batch: 0,
        })
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.biases.len()
    }

    /// Forward pass for a batch laid out row-major
    /// (`batch × in_dim` → `batch × out_dim`), caching what the backward
    /// pass needs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if `input.len()` is not a
    /// multiple of the input width.
    pub fn forward(&mut self, input: &[f64]) -> Result<Vec<f64>, NnError> {
        if input.is_empty() || !input.len().is_multiple_of(self.in_dim) {
            return Err(NnError::DimensionMismatch {
                expected: self.in_dim,
                got: input.len(),
            });
        }
        let batch = input.len() / self.in_dim;
        let mut pre = vec![0.0; batch * self.out_dim];
        for b in 0..batch {
            let x = &input[b * self.in_dim..(b + 1) * self.in_dim];
            let z = &mut pre[b * self.out_dim..(b + 1) * self.out_dim];
            for (o, zo) in z.iter_mut().enumerate() {
                let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                let mut acc = self.biases[o];
                for (w, xi) in row.iter().zip(x) {
                    acc += w * xi;
                }
                *zo = acc;
            }
        }
        self.cache_input = input.to_vec();
        self.cache_pre_activation = pre.clone();
        self.cache_batch = batch;
        let mut out = pre;
        self.activation.apply_slice(&mut out);
        Ok(out)
    }

    /// Inference-only forward pass (no caching, `&self`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dense::forward`].
    pub fn infer(&self, input: &[f64]) -> Result<Vec<f64>, NnError> {
        if input.is_empty() || !input.len().is_multiple_of(self.in_dim) {
            return Err(NnError::DimensionMismatch {
                expected: self.in_dim,
                got: input.len(),
            });
        }
        let batch = input.len() / self.in_dim;
        let mut out = vec![0.0; batch * self.out_dim];
        for b in 0..batch {
            let x = &input[b * self.in_dim..(b + 1) * self.in_dim];
            let y = &mut out[b * self.out_dim..(b + 1) * self.out_dim];
            for (o, yo) in y.iter_mut().enumerate() {
                let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                let mut acc = self.biases[o];
                for (w, xi) in row.iter().zip(x) {
                    acc += w * xi;
                }
                *yo = self.activation.apply(acc);
            }
        }
        Ok(out)
    }

    /// Inference-only forward pass into a caller-provided buffer — the
    /// zero-allocation core of the batched planner hot path.
    ///
    /// `input` is row-major `batch × in_dim`; `out` must be exactly
    /// `batch × out_dim`. The per-row arithmetic (bias-seeded
    /// accumulation in input order) is identical to [`Dense::infer`],
    /// so results are bit-identical to the allocating path. The whole
    /// batch is swept in a single matmul-shaped pass, keeping the
    /// weight matrix resident in cache across rows instead of paying a
    /// fresh allocation and cold traversal per row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if `input` is empty or not
    /// a multiple of the input width, or if `out` does not match the
    /// implied batch size.
    pub fn infer_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), NnError> {
        if input.is_empty() || !input.len().is_multiple_of(self.in_dim) {
            return Err(NnError::DimensionMismatch {
                expected: self.in_dim,
                got: input.len(),
            });
        }
        let batch = input.len() / self.in_dim;
        if out.len() != batch * self.out_dim {
            return Err(NnError::DimensionMismatch {
                expected: batch * self.out_dim,
                got: out.len(),
            });
        }
        for (x, y) in input
            .chunks_exact(self.in_dim)
            .zip(out.chunks_exact_mut(self.out_dim))
        {
            for (o, yo) in y.iter_mut().enumerate() {
                let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                let mut acc = self.biases[o];
                for (w, xi) in row.iter().zip(x) {
                    acc += w * xi;
                }
                *yo = self.activation.apply(acc);
            }
        }
        Ok(())
    }

    /// Inference-only forward pass in **transposed** (column-major)
    /// layout: `xt` is `in_dim × batch` (`xt[i * batch + r]` = feature
    /// `i` of row `r`) and the result lands transposed in `yt`
    /// (`out_dim × batch`).
    ///
    /// Each output neuron seeds the whole batch with its bias and then
    /// sweeps the weights in input order, adding `w[o][i] * xt[i][..]`
    /// across contiguous columns. Per row the floating-point op order is
    /// exactly [`Dense::infer`]'s bias-seeded input-order accumulation —
    /// results are bit-identical — but the serial dependency chain of
    /// the row-major dot product is gone: consecutive lanes belong to
    /// *different* rows, so the compiler vectorizes the inner loop
    /// across the batch. This is what makes the lockstep planner's
    /// batched path beat `batch ×` scalar calls rather than merely
    /// matching their arithmetic.
    ///
    /// Two schedule refinements on top of that layout, neither changing
    /// a single bit of output:
    ///
    /// * **8-wide sweep** — eight weights per pass over the accumulator,
    ///   so each column is loaded/stored once per octet instead of once
    ///   per input (the adds within a pass still run in ascending input
    ///   order);
    /// * **cache-blocked columns** — the batch is processed in
    ///   256-column blocks, keeping the block's eight active input rows
    ///   plus the accumulator (~18 KiB) L1-resident across the whole
    ///   weight sweep instead of streaming `in_dim × batch` through
    ///   cache once per output neuron.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyBatch`] when `batch` is zero (a caller
    /// misconfiguration, distinct from a shape bug), and
    /// [`NnError::DimensionMismatch`] if `xt` is not `in_dim × batch` or
    /// `yt` is not `out_dim × batch`.
    pub fn infer_transposed_into(
        &self,
        xt: &[f64],
        batch: usize,
        yt: &mut [f64],
    ) -> Result<(), NnError> {
        if batch == 0 {
            return Err(NnError::EmptyBatch);
        }
        if xt.len() != batch * self.in_dim {
            return Err(NnError::DimensionMismatch {
                expected: batch * self.in_dim,
                got: xt.len(),
            });
        }
        if yt.len() != batch * self.out_dim {
            return Err(NnError::DimensionMismatch {
                expected: batch * self.out_dim,
                got: yt.len(),
            });
        }
        // 256 f64 columns = 2 KiB per row slice; 8 input rows + the
        // accumulator ≈ 18 KiB, comfortably inside a 32 KiB L1.
        const COL_BLOCK: usize = 256;
        for col in (0..batch).step_by(COL_BLOCK) {
            let cols = COL_BLOCK.min(batch - col);
            for o in 0..self.out_dim {
                let acc = &mut yt[o * batch + col..o * batch + col + cols];
                acc.fill(self.biases[o]);
                let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                let octets = self.in_dim / 8;
                for q in 0..octets {
                    let i = q * 8;
                    let w: [f64; 8] = row[i..i + 8].try_into().expect("octet");
                    let x: [&[f64]; 8] = std::array::from_fn(|k| {
                        &xt[(i + k) * batch + col..(i + k) * batch + col + cols]
                    });
                    for (j, a) in acc.iter_mut().enumerate() {
                        // Ascending input order, same as the scalar path.
                        let mut sum = *a;
                        sum += w[0] * x[0][j];
                        sum += w[1] * x[1][j];
                        sum += w[2] * x[2][j];
                        sum += w[3] * x[3][j];
                        sum += w[4] * x[4][j];
                        sum += w[5] * x[5][j];
                        sum += w[6] * x[6][j];
                        sum += w[7] * x[7][j];
                        *a = sum;
                    }
                }
                for i in octets * 8..self.in_dim {
                    let w = row[i];
                    let xi = &xt[i * batch + col..i * batch + col + cols];
                    for (a, &x) in acc.iter_mut().zip(xi) {
                        *a += w * x;
                    }
                }
                self.activation.apply_slice(acc);
            }
        }
        Ok(())
    }

    /// Backward pass: takes `dL/dy` for the batch of the last `forward`
    /// call, accumulates parameter gradients, and returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if `grad_output` does not
    /// match the cached batch, or if `forward` was never called.
    pub fn backward(&mut self, grad_output: &[f64]) -> Result<Vec<f64>, NnError> {
        let expected = self.cache_batch * self.out_dim;
        if self.cache_batch == 0 || grad_output.len() != expected {
            return Err(NnError::DimensionMismatch {
                expected,
                got: grad_output.len(),
            });
        }
        let batch = self.cache_batch;
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_biases.iter_mut().for_each(|g| *g = 0.0);
        let mut grad_input = vec![0.0; batch * self.in_dim];

        for b in 0..batch {
            let x = &self.cache_input[b * self.in_dim..(b + 1) * self.in_dim];
            let z = &self.cache_pre_activation[b * self.out_dim..(b + 1) * self.out_dim];
            let dy = &grad_output[b * self.out_dim..(b + 1) * self.out_dim];
            let dx = &mut grad_input[b * self.in_dim..(b + 1) * self.in_dim];
            for o in 0..self.out_dim {
                let dz = dy[o] * self.activation.derivative(z[o]);
                if dz == 0.0 {
                    continue;
                }
                self.grad_biases[o] += dz;
                let wrow = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                let grow = &mut self.grad_weights[o * self.in_dim..(o + 1) * self.in_dim];
                for i in 0..self.in_dim {
                    grow[i] += dz * x[i];
                    dx[i] += dz * wrow[i];
                }
            }
        }
        Ok(grad_input)
    }

    /// Parameter and gradient views for the optimizer:
    /// `(weights, grad_weights, biases, grad_biases)`.
    pub(crate) fn params_mut(&mut self) -> (&mut [f64], &[f64], &mut [f64], &[f64]) {
        (
            &mut self.weights,
            &self.grad_weights,
            &mut self.biases,
            &self.grad_biases,
        )
    }

    /// Immutable view of the weights (testing/inspection).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Immutable view of the biases (testing/inspection).
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_stats::seeded_rng;

    fn layer(in_dim: usize, out_dim: usize, act: Activation) -> Dense {
        let mut rng = seeded_rng(1);
        Dense::new(in_dim, out_dim, act, &mut rng).unwrap()
    }

    #[test]
    fn zero_width_rejected() {
        let mut rng = seeded_rng(1);
        assert_eq!(
            Dense::new(0, 3, Activation::Relu, &mut rng).err(),
            Some(NnError::ZeroWidth)
        );
        assert_eq!(
            Dense::new(3, 0, Activation::Relu, &mut rng).err(),
            Some(NnError::ZeroWidth)
        );
    }

    #[test]
    fn forward_shape() {
        let mut l = layer(3, 2, Activation::Identity);
        let y = l.forward(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(y.len(), 4); // batch 2 × out 2
    }

    #[test]
    fn forward_rejects_misaligned_batch() {
        let mut l = layer(3, 2, Activation::Identity);
        assert!(l.forward(&[1.0, 2.0]).is_err());
        assert!(l.forward(&[]).is_err());
    }

    #[test]
    fn infer_matches_forward() {
        let mut l = layer(4, 3, Activation::Tanh);
        let x = [0.5, -0.25, 1.0, 2.0];
        let a = l.forward(&x).unwrap();
        let b = l.infer(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn transposed_zero_batch_is_its_own_error() {
        let l = layer(3, 2, Activation::Identity);
        let mut yt = vec![];
        assert_eq!(
            l.infer_transposed_into(&[], 0, &mut yt),
            Err(NnError::EmptyBatch)
        );
        // Genuine shape bugs still read as mismatches.
        let mut yt = vec![0.0; 2];
        assert!(matches!(
            l.infer_transposed_into(&[1.0, 2.0], 1, &mut yt),
            Err(NnError::DimensionMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn transposed_kernel_is_bit_identical_across_shapes() {
        // Odd in_dims exercise the 8-wide sweep plus remainder; batches
        // beyond 256 exercise the column blocking (block boundary, full
        // block + tail).
        for (in_dim, out_dim, batch) in [
            (7, 3, 5),
            (8, 2, 256),
            (13, 4, 300),
            (16, 1, 513),
            (3, 5, 1),
        ] {
            let l = layer(in_dim, out_dim, Activation::Tanh);
            let xs: Vec<f64> = (0..batch * in_dim)
                .map(|i| ((i * 37 % 101) as f64 - 50.0) / 17.0)
                .collect();
            // Reference: row-major scalar inference, row by row.
            let mut want = vec![0.0; batch * out_dim];
            for (r, x) in xs.chunks_exact(in_dim).enumerate() {
                let y = l.infer(x).unwrap();
                want[r * out_dim..(r + 1) * out_dim].copy_from_slice(&y);
            }
            // Transpose input, run the kernel, transpose back.
            let mut xt = vec![0.0; batch * in_dim];
            for r in 0..batch {
                for i in 0..in_dim {
                    xt[i * batch + r] = xs[r * in_dim + i];
                }
            }
            let mut yt = vec![0.0; batch * out_dim];
            l.infer_transposed_into(&xt, batch, &mut yt).unwrap();
            for r in 0..batch {
                for o in 0..out_dim {
                    assert_eq!(
                        yt[o * batch + r].to_bits(),
                        want[r * out_dim + o].to_bits(),
                        "row {r} out {o} drifted ({in_dim}x{out_dim}, batch {batch})"
                    );
                }
            }
        }
    }

    #[test]
    fn backward_requires_forward_first() {
        let mut l = layer(2, 2, Activation::Relu);
        assert!(l.backward(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Check dL/dW numerically for a tiny layer, L = Σ y.
        let mut l = layer(2, 2, Activation::Tanh);
        let x = [0.3, -0.7];
        let _ = l.forward(&x).unwrap();
        let _ = l.backward(&[1.0, 1.0]).unwrap();
        let analytic = l.grad_weights.clone();

        let h = 1e-6;
        for (k, &grad) in analytic.iter().enumerate() {
            let mut lp = l.clone();
            lp.weights[k] += h;
            let mut lm = l.clone();
            lm.weights[k] -= h;
            let yp: f64 = lp.infer(&x).unwrap().iter().sum();
            let ym: f64 = lm.infer(&x).unwrap().iter().sum();
            let numeric = (yp - ym) / (2.0 * h);
            assert!(
                (numeric - grad).abs() < 1e-5,
                "weight {k}: numeric {numeric} vs analytic {grad}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut l = layer(3, 2, Activation::Tanh);
        let x = [0.1, 0.2, -0.4];
        let _ = l.forward(&x).unwrap();
        let dx = l.backward(&[1.0, -1.0]).unwrap();

        let h = 1e-6;
        for k in 0..3 {
            let mut xp = x;
            xp[k] += h;
            let mut xm = x;
            xm[k] -= h;
            let f = |xs: &[f64]| {
                let y = l.infer(xs).unwrap();
                y[0] - y[1]
            };
            let numeric = (f(&xp) - f(&xm)) / (2.0 * h);
            assert!((numeric - dx[k]).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_gradient_is_sum_of_per_sample() {
        let mut l = layer(2, 1, Activation::Identity);
        let x1 = [1.0, 0.0];
        let x2 = [0.0, 1.0];
        let _ = l.forward(&x1).unwrap();
        let _ = l.backward(&[1.0]).unwrap();
        let g1 = l.grad_weights.clone();
        let _ = l.forward(&x2).unwrap();
        let _ = l.backward(&[1.0]).unwrap();
        let g2 = l.grad_weights.clone();

        let batch: Vec<f64> = x1.iter().chain(&x2).copied().collect();
        let _ = l.forward(&batch).unwrap();
        let _ = l.backward(&[1.0, 1.0]).unwrap();
        for k in 0..g1.len() {
            assert!((l.grad_weights[k] - (g1[k] + g2[k])).abs() < 1e-12);
        }
    }

    #[test]
    fn parameter_count() {
        let l = layer(3, 4, Activation::Relu);
        assert_eq!(l.parameter_count(), 3 * 4 + 4);
    }
}
