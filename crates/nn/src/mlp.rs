//! The multi-layer perceptron and its trainer.

use crate::activation::Activation;
use crate::error::NnError;
use crate::layer::Dense;
use crate::loss::{mse, mse_gradient};
use crate::optimizer::{Adam, AdamConfig};
use hvac_stats::seeded_rng;
use rand::seq::SliceRandom;

/// Training hyperparameters (defaults match the paper's Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset (paper: 150).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam settings (paper: lr `1e-3`, weight decay `1e-5`).
    pub adam: AdamConfig,
    /// Seed for the per-epoch shuffle.
    pub shuffle_seed: u64,
}

impl TrainConfig {
    /// The paper's training configuration.
    pub fn paper() -> Self {
        Self {
            epochs: 150,
            batch_size: 32,
            adam: AdamConfig::paper(),
            shuffle_seed: 0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadHyperparameter`] for zero epochs or batch
    /// size, or an invalid Adam configuration.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.epochs == 0 {
            return Err(NnError::BadHyperparameter {
                name: "epochs",
                value: 0.0,
            });
        }
        if self.batch_size == 0 {
            return Err(NnError::BadHyperparameter {
                name: "batch_size",
                value: 0.0,
            });
        }
        self.adam.validate()
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-epoch training losses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainHistory {
    /// Mean training loss of each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainHistory {
    /// Loss of the final epoch (`inf` if training never ran).
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Reusable ping-pong buffers for allocation-free inference.
///
/// One scratch serves any number of [`Mlp::predict_into`] /
/// [`Mlp::predict_batch_into`] calls (and any mix of networks or batch
/// sizes — buffers grow on demand and are never shrunk). Keeping it
/// outside the network keeps `Mlp` shareable across threads while each
/// worker owns its own workspace.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    ping: Vec<f64>,
    pong: Vec<f64>,
}

impl MlpScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows both buffers to hold `len` values without reallocating on
    /// the hot path.
    fn reserve(&mut self, len: usize) {
        if self.ping.len() < len {
            self.ping.resize(len, 0.0);
        }
        if self.pong.len() < len {
            self.pong.resize(len, 0.0);
        }
    }
}

/// Batch size at which [`Mlp::predict_batch_into`] switches from the
/// row-major sweep to the transposed (column-major) kernel. Below this
/// the two O(rows × width) transposes cost more than the vectorization
/// of the layer sweeps recovers; the cutover only affects latency —
/// both paths are bit-identical to [`Mlp::predict`].
const TRANSPOSE_THRESHOLD: usize = 16;

/// A fully connected feed-forward network for regression.
///
/// Hidden layers share one activation; the output layer is linear
/// (identity), as is standard for MSE regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    optimizers: Vec<(Adam, Adam)>, // (weights, biases) per layer
    in_dim: usize,
    out_dim: usize,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `&[8, 64, 64, 1]`
    /// for an 8-input, 1-output network with two 64-unit hidden layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::TooFewLayers`] for fewer than two sizes and
    /// [`NnError::ZeroWidth`] for a zero size.
    pub fn new(sizes: &[usize], hidden_activation: Activation, seed: u64) -> Result<Self, NnError> {
        if sizes.len() < 2 {
            return Err(NnError::TooFewLayers { got: sizes.len() });
        }
        let mut rng = seeded_rng(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let is_output = layers.len() == sizes.len() - 2;
            let act = if is_output {
                Activation::Identity
            } else {
                hidden_activation
            };
            layers.push(Dense::new(w[0], w[1], act, &mut rng)?);
        }
        let optimizers = layers
            .iter()
            .map(|l| {
                Ok((
                    Adam::new(l.in_dim() * l.out_dim(), AdamConfig::paper())?,
                    Adam::new(l.out_dim(), AdamConfig::paper())?,
                ))
            })
            .collect::<Result<Vec<_>, NnError>>()?;
        Ok(Self {
            in_dim: sizes[0],
            out_dim: *sizes.last().expect("at least two sizes"),
            layers,
            optimizers,
        })
    }

    /// Reconstructs a network from explicit layers (deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::TooFewLayers`] for an empty layer list and
    /// [`NnError::DimensionMismatch`] if consecutive layers' widths do
    /// not chain.
    pub fn from_layers(layers: Vec<Dense>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::TooFewLayers { got: 1 });
        }
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return Err(NnError::DimensionMismatch {
                    expected: pair[0].out_dim(),
                    got: pair[1].in_dim(),
                });
            }
        }
        let optimizers = layers
            .iter()
            .map(|l| {
                Ok((
                    Adam::new(l.in_dim() * l.out_dim(), AdamConfig::paper())?,
                    Adam::new(l.out_dim(), AdamConfig::paper())?,
                ))
            })
            .collect::<Result<Vec<_>, NnError>>()?;
        Ok(Self {
            in_dim: layers[0].in_dim(),
            out_dim: layers.last().expect("nonempty").out_dim(),
            layers,
            optimizers,
        })
    }

    /// The layers, in forward order (read-only view for inspection and
    /// serialization).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Total trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Dense::parameter_count).sum()
    }

    /// Predicts the output for a single input vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] for a wrong input length.
    pub fn predict(&self, input: &[f64]) -> Result<Vec<f64>, NnError> {
        if input.len() != self.in_dim {
            return Err(NnError::DimensionMismatch {
                expected: self.in_dim,
                got: input.len(),
            });
        }
        let mut x = input.to_vec();
        for layer in &self.layers {
            x = layer.infer(&x)?;
        }
        Ok(x)
    }

    /// Predicts outputs for a batch of input rows.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if any row has the wrong
    /// length.
    pub fn predict_batch(&self, inputs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, NnError> {
        inputs.iter().map(|x| self.predict(x)).collect()
    }

    /// Widest layer boundary (including input and output), i.e. the
    /// per-row scratch requirement of the inference path.
    pub fn max_width(&self) -> usize {
        self.layers
            .iter()
            .map(Dense::in_dim)
            .chain(std::iter::once(self.out_dim))
            .max()
            .expect("at least one layer")
    }

    /// Zero-allocation single forward: writes the prediction for one
    /// input row into `out`, reusing `scratch` for intermediates.
    /// Bit-identical to [`Mlp::predict`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] for a wrong input or
    /// output length.
    pub fn predict_into(
        &self,
        input: &[f64],
        scratch: &mut MlpScratch,
        out: &mut [f64],
    ) -> Result<(), NnError> {
        self.predict_batch_into(input, 1, scratch, out)
    }

    /// True row-major batched forward: one matmul-shaped pass per layer
    /// over all `rows` rows, with no allocation on the hot path.
    ///
    /// `inputs` is flat row-major (`rows × in_dim`), `out` must be
    /// `rows × out_dim`. Each output row is bit-identical to what
    /// [`Mlp::predict`] returns for the corresponding input row: the
    /// per-row accumulation order inside each layer is unchanged, only
    /// the allocations and the per-row layer-loop overhead are gone.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] if `inputs` is not
    /// `rows × in_dim` or `out` is not `rows × out_dim`.
    pub fn predict_batch_into(
        &self,
        inputs: &[f64],
        rows: usize,
        scratch: &mut MlpScratch,
        out: &mut [f64],
    ) -> Result<(), NnError> {
        if rows == 0 || inputs.len() != rows * self.in_dim {
            return Err(NnError::DimensionMismatch {
                expected: rows * self.in_dim,
                got: inputs.len(),
            });
        }
        if out.len() != rows * self.out_dim {
            return Err(NnError::DimensionMismatch {
                expected: rows * self.out_dim,
                got: out.len(),
            });
        }
        if rows >= TRANSPOSE_THRESHOLD {
            return self.predict_batch_transposed(inputs, rows, scratch, out);
        }
        if self.layers.len() == 1 {
            return self.layers[0].infer_into(inputs, out);
        }
        scratch.reserve(rows * self.max_width());
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let src = if i == 0 {
                inputs
            } else {
                &scratch.ping[..rows * layer.in_dim()]
            };
            if i == last {
                layer.infer_into(src, out)?;
            } else {
                let dst = &mut scratch.pong[..rows * layer.out_dim()];
                layer.infer_into(src, dst)?;
                std::mem::swap(&mut scratch.ping, &mut scratch.pong);
            }
        }
        Ok(())
    }

    /// Large-batch forward in transposed (column-major) space: the batch
    /// is transposed once on entry, every layer runs
    /// [`Dense::infer_transposed_into`] (vectorizable across rows, see
    /// there for the bit-identity argument), and the result is
    /// transposed back into row-major `out`. The two O(rows × width)
    /// transposes are amortized by the O(rows × in × out) layer sweeps.
    fn predict_batch_transposed(
        &self,
        inputs: &[f64],
        rows: usize,
        scratch: &mut MlpScratch,
        out: &mut [f64],
    ) -> Result<(), NnError> {
        scratch.reserve(rows * self.max_width());
        let MlpScratch { ping, pong } = scratch;
        for (i, column) in ping.chunks_exact_mut(rows).take(self.in_dim).enumerate() {
            for (r, slot) in column.iter_mut().enumerate() {
                *slot = inputs[r * self.in_dim + i];
            }
        }
        for layer in &self.layers {
            let src = &ping[..rows * layer.in_dim()];
            let dst = &mut pong[..rows * layer.out_dim()];
            layer.infer_transposed_into(src, rows, dst)?;
            std::mem::swap(ping, pong);
        }
        for (o, column) in ping.chunks_exact(rows).take(self.out_dim).enumerate() {
            for (r, &value) in column.iter().enumerate() {
                out[r * self.out_dim + o] = value;
            }
        }
        Ok(())
    }

    /// One optimization step on a flat batch; returns the batch loss.
    fn train_batch(&mut self, inputs: &[f64], targets: &[f64]) -> Result<f64, NnError> {
        let mut x = inputs.to_vec();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        let loss = mse(&x, targets)?;
        let mut grad = mse_gradient(&x, targets)?;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        for (layer, (opt_w, opt_b)) in self.layers.iter_mut().zip(&mut self.optimizers) {
            let (w, gw, b, gb) = layer.params_mut();
            opt_w.step(w, gw);
            opt_b.step(b, gb);
        }
        Ok(loss)
    }

    /// Trains on `(inputs, targets)` row pairs with mini-batch Adam.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadDataset`] for empty or mismatched data,
    /// [`NnError::DimensionMismatch`] for wrong row widths,
    /// [`NnError::BadHyperparameter`] for an invalid config, and
    /// [`NnError::Diverged`] if the loss becomes non-finite.
    pub fn fit(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        config: &TrainConfig,
    ) -> Result<TrainHistory, NnError> {
        config.validate()?;
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(NnError::BadDataset {
                inputs: inputs.len(),
                targets: targets.len(),
            });
        }
        for row in inputs {
            if row.len() != self.in_dim {
                return Err(NnError::DimensionMismatch {
                    expected: self.in_dim,
                    got: row.len(),
                });
            }
        }
        for row in targets {
            if row.len() != self.out_dim {
                return Err(NnError::DimensionMismatch {
                    expected: self.out_dim,
                    got: row.len(),
                });
            }
        }

        let n = inputs.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = seeded_rng(config.shuffle_seed);
        let mut history = TrainHistory::default();

        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0.0;
            for chunk in order.chunks(config.batch_size) {
                let mut flat_x = Vec::with_capacity(chunk.len() * self.in_dim);
                let mut flat_t = Vec::with_capacity(chunk.len() * self.out_dim);
                for &i in chunk {
                    flat_x.extend_from_slice(&inputs[i]);
                    flat_t.extend_from_slice(&targets[i]);
                }
                epoch_loss += self.train_batch(&flat_x, &flat_t)?;
                batches += 1.0;
            }
            let mean_loss = epoch_loss / batches;
            if !mean_loss.is_finite() {
                return Err(NnError::Diverged { epoch });
            }
            history.epoch_losses.push(mean_loss);
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_sizes() {
        assert!(matches!(
            Mlp::new(&[4], Activation::Relu, 0),
            Err(NnError::TooFewLayers { got: 1 })
        ));
        assert!(Mlp::new(&[4, 0, 1], Activation::Relu, 0).is_err());
    }

    #[test]
    fn same_seed_same_initial_predictions() {
        let a = Mlp::new(&[2, 8, 1], Activation::Relu, 5).unwrap();
        let b = Mlp::new(&[2, 8, 1], Activation::Relu, 5).unwrap();
        assert_eq!(
            a.predict(&[0.3, 0.7]).unwrap(),
            b.predict(&[0.3, 0.7]).unwrap()
        );
    }

    #[test]
    fn different_seed_different_predictions() {
        let a = Mlp::new(&[2, 8, 1], Activation::Relu, 5).unwrap();
        let b = Mlp::new(&[2, 8, 1], Activation::Relu, 6).unwrap();
        assert_ne!(
            a.predict(&[0.3, 0.7]).unwrap(),
            b.predict(&[0.3, 0.7]).unwrap()
        );
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let m = Mlp::new(&[3, 4, 2], Activation::Relu, 0).unwrap();
        assert!(m.predict(&[1.0]).is_err());
    }

    #[test]
    fn learns_linear_function() {
        let inputs: Vec<Vec<f64>> = (0..128)
            .map(|i| vec![(i % 16) as f64 / 16.0, (i / 16) as f64 / 8.0])
            .collect();
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| vec![3.0 * x[0] - 2.0 * x[1] + 0.5])
            .collect();
        let mut m = Mlp::new(&[2, 16, 1], Activation::Relu, 7).unwrap();
        let config = TrainConfig {
            epochs: 300,
            ..TrainConfig::paper()
        };
        let history = m.fit(&inputs, &targets, &config).unwrap();
        assert!(history.final_loss() < 1e-3, "loss {}", history.final_loss());
        assert!(history.epoch_losses[0] > history.final_loss());
    }

    #[test]
    fn learns_nonlinear_function() {
        let inputs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64 / 200.0 * 4.0 - 2.0])
            .collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![x[0].sin()]).collect();
        let mut m = Mlp::new(&[1, 32, 32, 1], Activation::Tanh, 3).unwrap();
        let config = TrainConfig {
            epochs: 400,
            ..TrainConfig::paper()
        };
        let history = m.fit(&inputs, &targets, &config).unwrap();
        assert!(history.final_loss() < 5e-3, "loss {}", history.final_loss());
    }

    #[test]
    fn fit_rejects_bad_data() {
        let mut m = Mlp::new(&[1, 4, 1], Activation::Relu, 0).unwrap();
        let config = TrainConfig::paper();
        assert!(matches!(
            m.fit(&[], &[], &config),
            Err(NnError::BadDataset { .. })
        ));
        assert!(m
            .fit(&[vec![1.0]], &[vec![1.0], vec![2.0]], &config)
            .is_err());
        assert!(m.fit(&[vec![1.0, 2.0]], &[vec![1.0]], &config).is_err());
        assert!(m.fit(&[vec![1.0]], &[vec![1.0, 2.0]], &config).is_err());
    }

    #[test]
    fn fit_rejects_bad_config() {
        let mut m = Mlp::new(&[1, 4, 1], Activation::Relu, 0).unwrap();
        let config = TrainConfig {
            epochs: 0,
            ..TrainConfig::paper()
        };
        assert!(m.fit(&[vec![1.0]], &[vec![1.0]], &config).is_err());
        let config = TrainConfig {
            batch_size: 0,
            ..TrainConfig::paper()
        };
        assert!(m.fit(&[vec![1.0]], &[vec![1.0]], &config).is_err());
    }

    #[test]
    fn training_is_reproducible() {
        let inputs: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 / 32.0]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![x[0] * x[0]]).collect();
        let run = || {
            let mut m = Mlp::new(&[1, 8, 1], Activation::Relu, 11).unwrap();
            let config = TrainConfig {
                epochs: 20,
                ..TrainConfig::paper()
            };
            m.fit(&inputs, &targets, &config).unwrap();
            m.predict(&[0.4]).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parameter_count_adds_up() {
        let m = Mlp::new(&[3, 5, 2], Activation::Relu, 0).unwrap();
        assert_eq!(m.parameter_count(), (3 * 5 + 5) + (5 * 2 + 2));
    }

    #[test]
    fn predict_batch_maps_rows() {
        let m = Mlp::new(&[1, 4, 1], Activation::Relu, 0).unwrap();
        let out = m.predict_batch(&[vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_history_final_loss_is_infinite() {
        assert_eq!(TrainHistory::default().final_loss(), f64::INFINITY);
    }

    #[test]
    fn predict_into_is_bit_identical_to_predict() {
        let m = Mlp::new(&[3, 16, 8, 2], Activation::Relu, 13).unwrap();
        let mut scratch = MlpScratch::new();
        let mut out = [0.0; 2];
        for i in 0..20 {
            let x = [i as f64 * 0.3 - 2.0, (i % 5) as f64, -(i as f64) * 0.1];
            m.predict_into(&x, &mut scratch, &mut out).unwrap();
            assert_eq!(out.to_vec(), m.predict(&x).unwrap());
        }
    }

    #[test]
    fn predict_batch_into_matches_per_row_predict() {
        let m = Mlp::new(&[4, 32, 32, 3], Activation::Tanh, 7).unwrap();
        let rows = 17;
        let flat: Vec<f64> = (0..rows * 4).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut scratch = MlpScratch::new();
        let mut out = vec![0.0; rows * 3];
        m.predict_batch_into(&flat, rows, &mut scratch, &mut out)
            .unwrap();
        for r in 0..rows {
            let expected = m.predict(&flat[r * 4..(r + 1) * 4]).unwrap();
            assert_eq!(&out[r * 3..(r + 1) * 3], expected.as_slice());
        }
    }

    #[test]
    fn predict_batch_into_single_layer_network() {
        let m = Mlp::new(&[2, 3], Activation::Relu, 1).unwrap();
        let mut scratch = MlpScratch::new();
        let mut out = vec![0.0; 2 * 3];
        m.predict_batch_into(&[0.5, -1.0, 2.0, 0.25], 2, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(&out[..3], m.predict(&[0.5, -1.0]).unwrap().as_slice());
        assert_eq!(&out[3..], m.predict(&[2.0, 0.25]).unwrap().as_slice());
    }

    #[test]
    fn predict_batch_into_validates_shapes() {
        let m = Mlp::new(&[3, 4, 1], Activation::Relu, 0).unwrap();
        let mut scratch = MlpScratch::new();
        let mut out = vec![0.0; 2];
        // Wrong input length for the claimed row count.
        assert!(m
            .predict_batch_into(&[1.0; 5], 2, &mut scratch, &mut out)
            .is_err());
        // Zero rows.
        assert!(m.predict_batch_into(&[], 0, &mut scratch, &mut []).is_err());
        // Wrong output length.
        let mut short = vec![0.0; 1];
        assert!(m
            .predict_batch_into(&[1.0; 6], 2, &mut scratch, &mut short)
            .is_err());
    }

    #[test]
    fn scratch_is_reusable_across_networks_and_batch_sizes() {
        let a = Mlp::new(&[2, 8, 1], Activation::Relu, 3).unwrap();
        let b = Mlp::new(&[5, 64, 64, 2], Activation::Relu, 4).unwrap();
        let mut scratch = MlpScratch::new();
        let mut out_a = [0.0; 1];
        a.predict_into(&[0.1, 0.2], &mut scratch, &mut out_a)
            .unwrap();
        assert_eq!(out_a.to_vec(), a.predict(&[0.1, 0.2]).unwrap());
        let rows = 9;
        let flat: Vec<f64> = (0..rows * 5).map(|i| i as f64 * 0.01).collect();
        let mut out_b = vec![0.0; rows * 2];
        b.predict_batch_into(&flat, rows, &mut scratch, &mut out_b)
            .unwrap();
        assert_eq!(
            &out_b[..2],
            b.predict(&flat[..5]).unwrap().as_slice(),
            "scratch reuse must not corrupt results"
        );
    }

    #[test]
    fn transposed_and_row_major_batch_paths_agree_bitwise() {
        // Straddle TRANSPOSE_THRESHOLD: every row must match the scalar
        // predict exactly on both sides of the cutover.
        let m = Mlp::new(&[5, 24, 16, 2], Activation::Relu, 21).unwrap();
        let mut scratch = MlpScratch::new();
        for rows in [TRANSPOSE_THRESHOLD - 1, TRANSPOSE_THRESHOLD, 53] {
            let flat: Vec<f64> = (0..rows * 5).map(|i| (i as f64 * 0.211).cos()).collect();
            let mut out = vec![0.0; rows * 2];
            m.predict_batch_into(&flat, rows, &mut scratch, &mut out)
                .unwrap();
            for r in 0..rows {
                let expected = m.predict(&flat[r * 5..(r + 1) * 5]).unwrap();
                assert_eq!(&out[r * 2..(r + 1) * 2], expected.as_slice(), "row {r}");
            }
        }
    }

    #[test]
    fn max_width_spans_input_hidden_output() {
        let m = Mlp::new(&[3, 64, 5], Activation::Relu, 0).unwrap();
        assert_eq!(m.max_width(), 64);
        let n = Mlp::new(&[9, 4, 2], Activation::Relu, 0).unwrap();
        assert_eq!(n.max_width(), 9);
    }
}
