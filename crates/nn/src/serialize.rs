//! Compact text serialization of trained networks.
//!
//! Training the dynamics model is an offline step; deployment (and the
//! benchmark harness) wants to reuse a trained model without a tensor
//! runtime or a binary format. The format is line-based:
//!
//! ```text
//! mlp v1
//! layers 2
//! layer 8 64 relu
//! w <64×8 floats…>
//! b <64 floats…>
//! layer 64 1 identity
//! w <…>
//! b <…>
//! ```
//!
//! Floats are printed with round-trip (`f64`-exact) precision.

use crate::activation::Activation;
use crate::error::NnError;
use crate::layer::Dense;
use crate::mlp::Mlp;

const FORMAT_HEADER: &str = "mlp v1";

fn activation_tag(a: Activation) -> &'static str {
    match a {
        Activation::Relu => "relu",
        Activation::Tanh => "tanh",
        Activation::Identity => "identity",
    }
}

fn parse_activation(tag: &str) -> Option<Activation> {
    match tag {
        "relu" => Some(Activation::Relu),
        "tanh" => Some(Activation::Tanh),
        "identity" => Some(Activation::Identity),
        _ => None,
    }
}

fn write_floats(out: &mut String, prefix: &str, values: &[f64]) {
    out.push_str(prefix);
    for v in values {
        out.push(' ');
        out.push_str(&format!("{v:?}"));
    }
    out.push('\n');
}

fn parse_floats(line: &str, prefix: &str, expected: usize) -> Result<Vec<f64>, NnError> {
    let bad = NnError::BadHyperparameter {
        name: "serialized model",
        value: 0.0,
    };
    let rest = line.strip_prefix(prefix).ok_or_else(|| bad.clone())?;
    let values: Vec<f64> = rest
        .split_whitespace()
        .map(|t| t.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| bad.clone())?;
    if values.len() != expected || values.iter().any(|v| !v.is_finite()) {
        return Err(bad);
    }
    Ok(values)
}

impl Mlp {
    /// Serializes the network to the compact text format.
    ///
    /// # Example
    ///
    /// ```
    /// use hvac_nn::{Activation, Mlp};
    ///
    /// # fn main() -> Result<(), hvac_nn::NnError> {
    /// let mlp = Mlp::new(&[2, 8, 1], Activation::Relu, 7)?;
    /// let text = mlp.to_compact_string();
    /// let restored = Mlp::from_compact_string(&text)?;
    /// assert_eq!(mlp.predict(&[0.3, -0.8])?, restored.predict(&[0.3, -0.8])?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        out.push_str(FORMAT_HEADER);
        out.push('\n');
        out.push_str(&format!("layers {}\n", self.layers().len()));
        for layer in self.layers() {
            out.push_str(&format!(
                "layer {} {} {}\n",
                layer.in_dim(),
                layer.out_dim(),
                activation_tag(layer.activation())
            ));
            write_floats(&mut out, "w", layer.weights());
            write_floats(&mut out, "b", layer.biases());
        }
        out
    }

    /// Parses a network from the compact text format.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadHyperparameter`] (naming the serialized
    /// model) for any malformed or inconsistent input: bad header,
    /// wrong counts, non-finite values, or mismatched layer widths.
    pub fn from_compact_string(text: &str) -> Result<Self, NnError> {
        let bad = NnError::BadHyperparameter {
            name: "serialized model",
            value: 0.0,
        };
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(FORMAT_HEADER) {
            return Err(bad);
        }
        let count_line = lines.next().ok_or_else(|| bad.clone())?;
        let n_layers: usize = count_line
            .strip_prefix("layers ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad.clone())?;
        if n_layers == 0 {
            return Err(bad);
        }

        let mut layers = Vec::with_capacity(n_layers);
        let mut prev_out: Option<usize> = None;
        for _ in 0..n_layers {
            let header = lines.next().ok_or_else(|| bad.clone())?;
            let mut parts = header.split_whitespace();
            if parts.next() != Some("layer") {
                return Err(bad);
            }
            let in_dim: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad.clone())?;
            let out_dim: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad.clone())?;
            let activation = parts
                .next()
                .and_then(parse_activation)
                .ok_or_else(|| bad.clone())?;
            if let Some(prev) = prev_out {
                if prev != in_dim {
                    return Err(bad);
                }
            }
            prev_out = Some(out_dim);
            let weights = parse_floats(
                lines.next().ok_or_else(|| bad.clone())?,
                "w",
                in_dim * out_dim,
            )?;
            let biases = parse_floats(lines.next().ok_or_else(|| bad.clone())?, "b", out_dim)?;
            layers.push(Dense::from_parameters(
                in_dim, out_dim, activation, weights, biases,
            )?);
        }
        if lines.any(|l| !l.trim().is_empty()) {
            return Err(bad);
        }
        Mlp::from_layers(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::TrainConfig;

    fn trained() -> Mlp {
        let inputs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![x[0] * 2.0]).collect();
        let mut m = Mlp::new(&[1, 8, 1], Activation::Relu, 3).unwrap();
        let config = TrainConfig {
            epochs: 30,
            ..TrainConfig::paper()
        };
        m.fit(&inputs, &targets, &config).unwrap();
        m
    }

    #[test]
    fn roundtrip_preserves_predictions_bitwise() {
        let m = trained();
        let restored = Mlp::from_compact_string(&m.to_compact_string()).unwrap();
        for i in 0..20 {
            let x = [i as f64 / 7.0];
            assert_eq!(m.predict(&x).unwrap(), restored.predict(&x).unwrap());
        }
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let m = Mlp::new(&[3, 16, 8, 2], Activation::Tanh, 9).unwrap();
        let restored = Mlp::from_compact_string(&m.to_compact_string()).unwrap();
        assert_eq!(restored.in_dim(), 3);
        assert_eq!(restored.out_dim(), 2);
        assert_eq!(restored.parameter_count(), m.parameter_count());
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "",
            "mlp v2\nlayers 1\n",
            "mlp v1\nlayers 0\n",
            "mlp v1\nlayers 1\nlayer 2 2 relu\nw 1 2 3\nb 0 0\n", // short weights
            "mlp v1\nlayers 1\nlayer 2 2 blah\nw 1 2 3 4\nb 0 0\n",
            "mlp v1\nlayers 1\nlayer 2 2 relu\nw 1 2 3 NaN\nb 0 0\n",
            // mismatched chain: 2->2 then layer expecting 3 inputs
            "mlp v1\nlayers 2\nlayer 2 2 relu\nw 1 2 3 4\nb 0 0\nlayer 3 1 identity\nw 1 2 3\nb 0\n",
        ] {
            assert!(Mlp::from_compact_string(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let m = trained();
        let text = m.to_compact_string() + "extra\n";
        assert!(Mlp::from_compact_string(&text).is_err());
    }
}
