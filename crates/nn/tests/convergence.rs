//! Cross-module training convergence checks.

use hvac_nn::{Activation, Mlp, TrainConfig};

#[test]
fn linear_target_converges_tightly() {
    let inputs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 64.0]).collect();
    let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![2.0 * x[0]]).collect();
    let mut mlp = Mlp::new(&[1, 16, 1], Activation::Relu, 42).unwrap();
    let config = TrainConfig {
        epochs: 800,
        batch_size: 8,
        ..TrainConfig::default()
    };
    let history = mlp.fit(&inputs, &targets, &config).unwrap();
    assert!(history.final_loss() < 1e-4, "loss {}", history.final_loss());
    let y = mlp.predict(&[0.5]).unwrap();
    assert!((y[0] - 1.0).abs() < 0.05);
}

#[test]
fn loss_monotone_on_average() {
    let inputs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 50.0 - 1.0]).collect();
    let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![x[0].abs()]).collect();
    let mut mlp = Mlp::new(&[1, 24, 1], Activation::Relu, 9).unwrap();
    let config = TrainConfig {
        epochs: 100,
        ..TrainConfig::default()
    };
    let history = mlp.fit(&inputs, &targets, &config).unwrap();
    let first10: f64 = history.epoch_losses[..10].iter().sum();
    let last10: f64 = history.epoch_losses[history.epoch_losses.len() - 10..]
        .iter()
        .sum();
    assert!(last10 < first10);
}
