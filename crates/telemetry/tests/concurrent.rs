//! Concurrency tests for the registry: writers hammer counters and
//! histograms while a reader loops `registry::snapshot()`. Snapshots
//! must never tear — every observed field is monotone across
//! successive snapshots, and the final snapshot accounts for every
//! recorded update.

use hvac_telemetry::registry::{counter, histogram, snapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 4;
const UPDATES: u64 = 20_000;

#[test]
fn snapshots_are_monotone_under_concurrent_writers() {
    // Pre-register so `before` already carries both metrics.
    counter("test.concurrent.counter");
    histogram("test.concurrent.hist", &[10, 100, 1_000]);
    let before = snapshot();
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                let local_c = counter("test.concurrent.counter");
                let local_h = histogram("test.concurrent.hist", &[10, 100, 1_000]);
                for i in 0..UPDATES {
                    local_c.incr();
                    // Spread samples across all buckets incl. overflow.
                    local_h.record((w as u64 * 37 + i) % 2_000);
                }
            });
        }

        let reader_done = Arc::clone(&done);
        scope.spawn(move || {
            let done = reader_done;
            let mut last_count = 0u64;
            let mut last_sum = 0u64;
            let mut last_buckets = 0u64;
            let mut last_counter = 0u64;
            let mut iterations = 0u64;
            while !done.load(Ordering::Acquire) || iterations == 0 {
                let snap = snapshot();
                let counter_now = snap.counters["test.concurrent.counter"];
                assert!(
                    counter_now >= last_counter,
                    "counter went backwards: {last_counter} -> {counter_now}"
                );
                last_counter = counter_now;
                let hist = &snap.histograms["test.concurrent.hist"];
                assert_eq!(hist.bounds, vec![10, 100, 1_000]);
                assert_eq!(hist.buckets.len(), 4);
                assert!(hist.count >= last_count, "histogram count went backwards");
                assert!(hist.sum >= last_sum, "histogram sum went backwards");
                let bucket_total: u64 = hist.buckets.iter().sum();
                assert!(bucket_total >= last_buckets, "bucket total went backwards");
                last_count = hist.count;
                last_sum = hist.sum;
                last_buckets = bucket_total;
                iterations += 1;
            }
            assert!(iterations > 0);
        });

        // Stop the reader once every writer update has landed.
        let target = before
            .counters
            .get("test.concurrent.counter")
            .copied()
            .unwrap_or(0)
            + (WRITERS as u64) * UPDATES;
        scope.spawn({
            let done = Arc::clone(&done);
            move || {
                let local_c = counter("test.concurrent.counter");
                while local_c.get() < target {
                    std::thread::yield_now();
                }
                done.store(true, Ordering::Release);
            }
        });
    });

    let after = snapshot();
    let expected = (WRITERS as u64) * UPDATES;
    assert_eq!(
        after.counter_delta(&before, "test.concurrent.counter"),
        expected
    );
    let hist_delta = after.histograms["test.concurrent.hist"].delta(
        &before
            .histograms
            .get("test.concurrent.hist")
            .cloned()
            .unwrap_or_default(),
    );
    assert_eq!(hist_delta.count, expected);
    assert_eq!(hist_delta.buckets.iter().sum::<u64>(), expected);
    // Samples landed in every bucket, including overflow.
    assert!(hist_delta.buckets.iter().all(|&b| b > 0));
}

#[test]
fn exposition_renders_consistently_under_writers() {
    let h = histogram("test.concurrent.expose", &[50]);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..5_000u64 {
                h.record(i % 100);
            }
        });
        scope.spawn(|| {
            for _ in 0..50 {
                let text = hvac_telemetry::expose::render_prometheus();
                // Bucket series must stay cumulative in every render.
                let value = |needle: &str| -> Option<u64> {
                    text.lines()
                        .find(|l| l.starts_with(needle))
                        .and_then(|l| l.rsplit(' ').next())
                        .and_then(|v| v.parse().ok())
                };
                let b50 = value("hvac_test_concurrent_expose_bucket{le=\"50\"}");
                let binf = value("hvac_test_concurrent_expose_bucket{le=\"+Inf\"}");
                if let (Some(b50), Some(binf)) = (b50, binf) {
                    assert!(b50 <= binf, "non-cumulative buckets: {b50} > {binf}");
                }
            }
        });
    });
}
