//! Wire-level concurrency hammers for the fixed-pool HTTP server:
//! many clients, both connection-per-request and keep-alive, must all
//! complete promptly — no stalls, no lost responses, no slot leaks.

use hvac_telemetry::http::{blocking_request, BlockingClient, HttpServer, Response};
use std::time::{Duration, Instant};

fn echo_server() -> HttpServer {
    HttpServer::builder()
        .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
        .bind("127.0.0.1:0")
        .expect("bind")
}

#[test]
fn concurrent_connection_per_request_clients_never_stall() {
    let server = echo_server();
    let addr = server.addr();
    const THREADS: usize = 16;
    const ITERS: usize = 100;
    let started = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let body = format!("t{t}i{i}");
                    let (status, text) =
                        blocking_request(addr, "POST", "/echo", &body).expect("request");
                    assert_eq!(status, 200);
                    assert_eq!(text, body);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // 1600 echo round trips over loopback: sub-second when healthy,
    // tens of seconds when a connection stalls out a worker.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "hammer took {:?} — a connection stalled",
        started.elapsed()
    );
    server.shutdown();
}

#[test]
fn concurrent_keep_alive_clients_never_stall() {
    let server = echo_server();
    let addr = server.addr();
    const THREADS: usize = 16;
    const ITERS: usize = 200;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = BlockingClient::connect(addr).expect("connect");
                for i in 0..ITERS {
                    let body = format!("t{t}i{i}");
                    let (status, _, text) = client
                        .request("POST", "/echo", &[], &body)
                        .expect("request");
                    assert_eq!(status, 200);
                    assert_eq!(text, body);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}
