//! Integration tests for the live-ops primitives: windowed-histogram
//! epoch rotation edge cases and torn-read resistance of the flight
//! recorder under concurrent writers.

use hvac_telemetry::{FlightRecord, FlightRecorder, WindowedCounter, WindowedHistogram};
use std::sync::Arc;
use std::thread;

const BOUNDS: &[u64] = &[10, 100, 1_000, 10_000];

/// Window of 1s split into 10 epochs of 100ms each.
fn window() -> WindowedHistogram {
    WindowedHistogram::new(BOUNDS, 1_000_000_000, 10)
}

#[test]
fn empty_window_snapshot_is_all_zero() {
    let w = window();
    let snap = w.snapshot_at(0);
    assert_eq!(snap.count, 0);
    assert_eq!(snap.sum, 0);
    assert_eq!(snap.max, 0);
    assert_eq!(snap.quantile(0.99), 0);

    // Still empty after arbitrary idle time: nothing was ever recorded,
    // so no stale epoch can resurface.
    let snap = w.snapshot_at(7_000_000_000);
    assert_eq!(snap.count, 0);
}

#[test]
fn single_epoch_window_replaces_instead_of_sliding() {
    // epochs=1 degenerates to "the current 1s bucket only".
    let w = WindowedHistogram::new(BOUNDS, 1_000_000_000, 1);
    w.record_at(100, 50);
    w.record_at(200, 60);
    assert_eq!(w.snapshot_at(300).count, 2);

    // The next epoch starts from scratch — no partial retention.
    w.record_at(1_000_000_100, 70);
    let snap = w.snapshot_at(1_000_000_200);
    assert_eq!(snap.count, 1);
    assert_eq!(snap.sum, 70);
}

#[test]
fn wraparound_reuses_slots_without_leaking_old_epochs() {
    let w = window();
    // Fill every one of the 10 epoch slots across one full window.
    for epoch in 0u64..10 {
        w.record_at(epoch * 100_000_000 + 1, 500);
    }
    assert_eq!(w.snapshot_at(999_999_999).count, 10);

    // Lap the ring: epoch 10 reuses the slot epoch 0 lived in. The
    // snapshot must contain exactly the epochs still inside the window,
    // not a mix of lap 0 and lap 1 contents in the reused slot.
    w.record_at(1_000_000_001, 9_999);
    let snap = w.snapshot_at(1_000_000_002);
    assert_eq!(snap.count, 10, "epoch 0 rolled off, epoch 10 rolled in");
    assert_eq!(snap.max, 9_999);

    // Far future: everything expires at once.
    assert_eq!(w.snapshot_at(60_000_000_000).count, 0);
}

#[test]
fn quantiles_track_the_window_after_partial_rotation() {
    let w = window();
    // Epochs 0..5: slow requests (~10_000ns bucket).
    for epoch in 0u64..5 {
        for _ in 0..20 {
            w.record_at(epoch * 100_000_000 + 1, 9_000);
        }
    }
    // Epochs 5..10: fast requests (~10ns bucket).
    for epoch in 5u64..10 {
        for _ in 0..20 {
            w.record_at(epoch * 100_000_000 + 1, 5);
        }
    }
    // With both halves in the window the p99 sees the slow half...
    let snap = w.snapshot_at(999_999_999);
    assert_eq!(snap.count, 200);
    assert!(snap.quantile(0.99) >= 9_000, "p99 {}", snap.quantile(0.99));

    // ...but 500ms later the slow epochs have rotated out and the p99
    // collapses to the fast bucket. A cumulative histogram could never
    // do this.
    let snap = w.snapshot_at(1_499_999_999);
    assert_eq!(snap.count, 100);
    assert!(snap.quantile(0.99) <= 10, "p99 {}", snap.quantile(0.99));
    assert!(snap.quantile(0.50) <= 10);
}

#[test]
fn windowed_counter_expires_like_the_histogram() {
    let c = WindowedCounter::new(1_000_000_000, 10);
    for epoch in 0u64..10 {
        c.add_at(epoch * 100_000_000 + 1, 1);
    }
    assert_eq!(c.total_at(999_999_999), 10);
    c.add_at(1_000_000_001, 5);
    assert_eq!(c.total_at(1_000_000_002), 14, "oldest epoch rolled off");
    assert_eq!(c.total_at(30_000_000_000), 0);
}

/// N threads hammer a small ring so slots are reused hundreds of times
/// mid-snapshot; every snapshot must contain only whole records.
/// Torn or cross-lap reads are caught by the per-record checksum (a
/// torn record is dropped, never surfaced), so the assertion here is
/// that every surfaced record is one some thread actually wrote.
#[test]
fn concurrent_writers_never_tear_a_snapshot() {
    const WRITERS: u64 = 8;
    const RECORDS_PER_WRITER: u64 = 2_000;

    let ring = Arc::new(FlightRecorder::new(16));
    let mut handles = Vec::new();
    for writer in 0..WRITERS {
        let ring = Arc::clone(&ring);
        handles.push(thread::spawn(move || {
            for i in 0..RECORDS_PER_WRITER {
                // Every field is derived from (writer, i) so a reader
                // can verify internal consistency of whatever it sees.
                let record = FlightRecord {
                    trace_id: format!("w{writer}-r{i:06}"),
                    t_ns: writer * 1_000_000 + i,
                    parse_ns: writer,
                    decide_ns: i,
                    audit_ns: writer + i,
                    guard_state: writer % 4,
                    heating_centi: 2_000 + writer,
                    cooling_centi: 3_000 + i % 100,
                    http_status: 200,
                };
                ring.push(&record);
            }
        }));
    }
    // Concurrent snapshotters: every record that surfaces must be
    // exactly reconstructible from its own trace id.
    let mut seen = 0u64;
    for _ in 0..200 {
        for record in ring.snapshot() {
            seen += 1;
            let (w, r) = record
                .trace_id
                .strip_prefix('w')
                .and_then(|rest| rest.split_once("-r"))
                .expect("trace id shape");
            let writer: u64 = w.parse().unwrap();
            let i: u64 = r.parse().unwrap();
            assert_eq!(record.t_ns, writer * 1_000_000 + i, "torn t_ns");
            assert_eq!(record.parse_ns, writer, "torn parse_ns");
            assert_eq!(record.decide_ns, i, "torn decide_ns");
            assert_eq!(record.audit_ns, writer + i, "torn audit_ns");
            assert_eq!(record.guard_state, writer % 4, "torn guard_state");
            assert_eq!(record.heating_centi, 2_000 + writer, "torn heating");
            assert_eq!(record.cooling_centi, 3_000 + i % 100, "torn cooling");
        }
    }
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(ring.recorded(), WRITERS * RECORDS_PER_WRITER);
    // After the race a slot may legitimately hold a stale-lap record
    // (an older ticket's write landed last); the snapshot drops those
    // rather than surface them under the wrong ordinal. A quiet
    // single-writer refill must therefore yield a complete snapshot.
    for i in 0..ring.capacity() as u64 {
        ring.push(&FlightRecord {
            trace_id: format!("refill-{i}"),
            t_ns: i,
            parse_ns: 0,
            decide_ns: 1,
            audit_ns: 0,
            guard_state: 0,
            heating_centi: 0,
            cooling_centi: 0,
            http_status: 200,
        });
    }
    let last = ring.snapshot();
    assert_eq!(last.len(), ring.capacity());
    assert!(last.iter().all(|r| r.trace_id.starts_with("refill-")));
    assert!(seen > 0 || !last.is_empty());
}

#[test]
fn concurrent_windowed_recording_is_lossless_within_an_epoch() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 5_000;
    let w = Arc::new(WindowedHistogram::new(BOUNDS, 1_000_000_000, 10));
    let mut handles = Vec::new();
    for _ in 0..WRITERS {
        let w = Arc::clone(&w);
        handles.push(thread::spawn(move || {
            for i in 0..PER_WRITER {
                // All inside epoch 0: no rotation racing, pure counting.
                w.record_at(i % 90_000_000, 50);
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = w.snapshot_at(99_999_999);
    assert_eq!(snap.count, WRITERS * PER_WRITER);
    assert_eq!(snap.sum, WRITERS * PER_WRITER * 50);
}
