//! The global, lock-cheap metrics registry.
//!
//! Metrics are keyed by `&'static str` names in dotted form
//! (`"rs.trajectories"`, `"dtree.split_evaluations"`). Registration
//! takes a short mutex; every *update* is a single relaxed atomic
//! operation on a leaked cell, so handles can sit in hot loops. Handles
//! are `Copy` — register once (e.g. in a constructor) and reuse.
//!
//! The registry is process-global and cumulative. Callers that need
//! per-run numbers take a [`snapshot`] before and after and diff them
//! (see [`RegistrySnapshot::counter_delta`]); the pipeline's
//! `TelemetrySummary` is built exactly that way.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    name: &'static str,
    cell: &'static AtomicU64,
}

impl Counter {
    /// Adds `n` (relaxed; safe from any thread). When the calling
    /// thread is inside a [`crate::RunScope`], the delta is additionally
    /// attributed to that scope (see [`crate::scope`]).
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
        crate::scope::record_counter(self.name, n);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `u64` (last value or running maximum).
#[derive(Debug, Clone, Copy)]
pub struct Gauge {
    cell: &'static AtomicU64,
}

impl Gauge {
    /// Overwrites the gauge.
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if larger (lock-free CAS loop).
    pub fn record_max(&self, value: u64) {
        self.cell.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` samples (e.g. latency in
/// nanoseconds, rollout counts).
///
/// Bucket `i` counts samples `v` with `v <= bounds[i]` (and greater
/// than the previous bound); one extra overflow bucket counts samples
/// above the last bound. Bounds are fixed at registration.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    name: &'static str,
    inner: &'static HistogramCells,
}

#[derive(Debug)]
pub(crate) struct HistogramCells {
    pub(crate) bounds: Vec<u64>,
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl Histogram {
    /// Records one sample. When the calling thread is inside a
    /// [`crate::RunScope`], the sample is additionally attributed to
    /// that scope (see [`crate::scope`]).
    pub fn record(&self, value: u64) {
        let cells = self.inner;
        let idx = cells
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(cells.bounds.len());
        cells.buckets[idx].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
        cells.max.fetch_max(value, Ordering::Relaxed);
        crate::scope::record_histogram(self.name, &cells.bounds, value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// The bucket upper bounds this histogram was registered with.
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Per-bucket counts; one entry longer than [`Self::bounds`] (the
    /// final entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Default latency bucket bounds in nanoseconds: 1 µs … 100 s, one
/// decade per bucket.
pub const LATENCY_BOUNDS_NS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
];

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
    gauges: Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
    histograms: Mutex<BTreeMap<&'static str, &'static HistogramCells>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn intern_cell(
    map: &Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
    name: &str,
) -> (&'static str, &'static AtomicU64) {
    let mut map = map.lock().expect("registry mutex poisoned");
    if let Some((&key, &cell)) = map.get_key_value(name) {
        return (key, cell);
    }
    // First registration of this name: leak the cell (and, for
    // dynamically built names, the name). Leaks are bounded by the
    // number of distinct metric names, which is small and static.
    let key: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    map.insert(key, cell);
    (key, cell)
}

/// Returns (registering on first use) the counter called `name`.
///
/// Accepts non-static names (they are interned); hot paths should call
/// this once and keep the returned handle.
pub fn counter(name: &str) -> Counter {
    let (name, cell) = intern_cell(&registry().counters, name);
    Counter { name, cell }
}

/// Returns (registering on first use) the gauge called `name`.
pub fn gauge(name: &str) -> Gauge {
    let (_, cell) = intern_cell(&registry().gauges, name);
    Gauge { cell }
}

/// Returns (registering on first use) the histogram called `name` with
/// the given bucket upper bounds. The bounds of the **first**
/// registration win; later calls with different bounds get the
/// existing histogram.
pub fn histogram(name: &str, bounds: &[u64]) -> Histogram {
    let mut map = registry()
        .histograms
        .lock()
        .expect("registry mutex poisoned");
    if let Some((&key, &cells)) = map.get_key_value(name) {
        return Histogram {
            name: key,
            inner: cells,
        };
    }
    let mut sorted = bounds.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
    let cells: &'static HistogramCells = Box::leak(Box::new(HistogramCells {
        bounds: sorted,
        buckets,
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        max: AtomicU64::new(0),
    }));
    let key: &'static str = Box::leak(name.to_owned().into_boxed_str());
    map.insert(key, cells);
    Histogram {
        name: key,
        inner: cells,
    }
}

/// A point-in-time copy of one registered histogram.
///
/// Fields are read one relaxed load at a time while writers may be
/// recording, so cross-field consistency is approximate (e.g. `count`
/// can briefly exceed the bucket total); every individual field is
/// monotone across successive snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (sorted, deduplicated at registration).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one entry longer than `bounds` (the final
    /// entry is the overflow bucket).
    pub buckets: Vec<u64>,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Per-bucket counts since `earlier` (same histogram, saturating).
    /// `max` keeps the later snapshot's value — it is a running maximum,
    /// not a rate.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let zip_sub = |now: &[u64], then: &[u64]| -> Vec<u64> {
            now.iter()
                .enumerate()
                .map(|(i, &n)| n.saturating_sub(then.get(i).copied().unwrap_or(0)))
                .collect()
        };
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: zip_sub(&self.buckets, &earlier.buckets),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket
    /// counts by linear interpolation inside the containing bucket.
    /// Samples in the overflow bucket are attributed to `max`. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
                let hi = self.bounds.get(i).copied().unwrap_or(self.max.max(lo));
                let frac = (rank - seen) as f64 / in_bucket as f64;
                return lo + ((hi.saturating_sub(lo)) as f64 * frac).round() as u64;
            }
            seen += in_bucket;
        }
        self.max
    }
}

/// A point-in-time copy of every registered counter, gauge, and
/// histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// `self[name] - earlier[name]`, treating missing entries as zero
    /// (counters are monotone, so this is the work done in between —
    /// saturating in case `earlier` is actually newer).
    pub fn counter_delta(&self, earlier: &RegistrySnapshot, name: &str) -> u64 {
        let now = self.counters.get(name).copied().unwrap_or(0);
        let then = earlier.counters.get(name).copied().unwrap_or(0);
        now.saturating_sub(then)
    }

    /// All counter deltas since `earlier`, dropping zero entries.
    pub fn counter_deltas(&self, earlier: &RegistrySnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter_map(|(name, &now)| {
                let delta = now.saturating_sub(earlier.counters.get(name).copied().unwrap_or(0));
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect()
    }
}

/// Captures the current value of every counter, gauge, and histogram.
pub fn snapshot() -> RegistrySnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("registry mutex poisoned")
        .iter()
        .map(|(&name, cell)| (name.to_owned(), cell.load(Ordering::Relaxed)))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .expect("registry mutex poisoned")
        .iter()
        .map(|(&name, cell)| (name.to_owned(), cell.load(Ordering::Relaxed)))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("registry mutex poisoned")
        .iter()
        .map(|(&name, cells)| {
            (
                name.to_owned(),
                HistogramSnapshot {
                    bounds: cells.bounds.clone(),
                    buckets: cells
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    count: cells.count.load(Ordering::Relaxed),
                    sum: cells.sum.load(Ordering::Relaxed),
                    max: cells.max.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    RegistrySnapshot {
        counters,
        gauges,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_the_cell() {
        let a = counter("test.registry.shared");
        let b = counter("test.registry.shared");
        let before = a.get();
        a.add(3);
        b.incr();
        assert_eq!(a.get() - before, 4);
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn gauge_set_and_max() {
        let g = gauge("test.registry.gauge");
        g.set(10);
        g.record_max(7);
        assert_eq!(g.get(), 10);
        g.record_max(22);
        assert_eq!(g.get(), 22);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = histogram("test.registry.hist", &[10, 100, 1000]);
        // On the bound → that bucket; one above → next bucket.
        h.record(10);
        h.record(11);
        h.record(100);
        h.record(1000);
        h.record(1001); // overflow bucket
        h.record(0); // first bucket
        let counts = h.bucket_counts();
        assert_eq!(counts, vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10 + 11 + 100 + 1000 + 1001);
        assert_eq!(h.max(), 1001);
        assert_eq!(h.bounds(), &[10, 100, 1000]);
    }

    #[test]
    fn histogram_first_registration_wins() {
        let a = histogram("test.registry.hist_first", &[5, 50]);
        let b = histogram("test.registry.hist_first", &[1, 2, 3, 4]);
        assert_eq!(b.bounds(), &[5, 50]);
        a.record(7);
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn counters_merge_across_threads() {
        let c = counter("test.registry.threads");
        let before = c.get();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let local = counter("test.registry.threads");
                    for _ in 0..1000 {
                        local.incr();
                    }
                });
            }
        });
        assert_eq!(c.get() - before, 4000);
    }

    #[test]
    fn snapshot_includes_histograms() {
        let h = histogram("test.registry.snap_hist", &[10, 100]);
        let before = snapshot();
        h.record(5);
        h.record(50);
        h.record(500);
        let after = snapshot();
        let d = after.histograms["test.registry.snap_hist"]
            .delta(&before.histograms["test.registry.snap_hist"]);
        assert_eq!(d.buckets, vec![1, 1, 1]);
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, 555);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = HistogramSnapshot {
            bounds: vec![10, 100, 1000],
            buckets: vec![0, 100, 0, 0],
            count: 100,
            sum: 5500,
            max: 99,
        };
        // All 100 samples sit in (10, 100]: p50 ≈ 55, p99 ≈ 100.
        let p50 = h.quantile(0.50);
        assert!((46..=64).contains(&p50), "p50 was {p50}");
        assert!(h.quantile(0.99) > p50);
        assert!(h.quantile(1.0) <= 100);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn quantile_overflow_bucket_reports_max() {
        let h = HistogramSnapshot {
            bounds: vec![10],
            buckets: vec![0, 4],
            count: 4,
            sum: 4000,
            max: 1234,
        };
        assert_eq!(h.quantile(0.99), 1234);
    }

    #[test]
    fn quantile_edge_cases_never_nan_or_panic() {
        // Empty histogram (fresh registration, no observations): every
        // quantile is 0, not a division by a zero total.
        let empty = HistogramSnapshot {
            bounds: vec![10, 100],
            buckets: vec![0, 0, 0],
            count: 0,
            sum: 0,
            max: 0,
        };
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0, "empty histogram at q={q}");
        }

        // A single observation: p50, p95 and p99 all land in (and are
        // bounded by) its bucket.
        let single = histogram("test.registry.quantile_single", &[10, 100, 1000]);
        single.record(42);
        let snap = &snapshot().histograms["test.registry.quantile_single"];
        for q in [0.5, 0.95, 0.99] {
            let v = snap.quantile(q);
            assert!((11..=100).contains(&v), "single-sample q={q} was {v}");
        }

        // Every sample in one interior bucket: all quantiles stay
        // inside that bucket's bounds, and they are monotone in q.
        let h = HistogramSnapshot {
            bounds: vec![10, 100, 1000],
            buckets: vec![0, 0, 7, 0],
            count: 7,
            sum: 3500,
            max: 999,
        };
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 >= 100 && p99 <= 1000, "p50 {p50}, p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");

        // Out-of-range q is clamped, not a panic or a bogus rank.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn snapshot_deltas() {
        let c = counter("test.registry.delta");
        let before = snapshot();
        c.add(17);
        let after = snapshot();
        assert_eq!(after.counter_delta(&before, "test.registry.delta"), 17);
        assert_eq!(
            after
                .counter_deltas(&before)
                .get("test.registry.delta")
                .copied(),
            Some(17)
        );
        // Missing names read as zero.
        assert_eq!(after.counter_delta(&before, "test.registry.absent"), 0);
    }
}
