//! Pluggable event sinks.
//!
//! Every telemetry event flows through the process-global sink set with
//! [`set_sink`]. The default is [`NullSink`]: a single relaxed atomic
//! load on the hot path, nothing else. [`StderrSink`] pretty-prints
//! leveled messages (and span closes at `Debug`) for humans;
//! [`JsonlSink`] appends one JSON object per event to a file for
//! machines; [`MultiSink`] fans an event out to several sinks (e.g.
//! stderr for the operator *and* JSONL for the audit trail).

use crate::json::ObjectWriter;
use crate::registry;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Message severity, ordered from most to least important.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or surprising conditions.
    Error,
    /// Suspicious conditions worth an operator's attention.
    Warn,
    /// Progress messages (the default CLI verbosity).
    Info,
    /// Per-stage details (`--verbose`).
    Debug,
    /// Per-item details; very chatty.
    Trace,
}

impl Level {
    /// Lower-case name (`"info"`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// One telemetry event, borrowed from the emitting site.
#[derive(Debug, Clone)]
pub enum Event<'a> {
    /// A span started.
    SpanOpen {
        /// Span name.
        name: &'static str,
        /// Enclosing span on the same thread, if any.
        parent: Option<&'static str>,
        /// Nesting depth on this thread (root = 0).
        depth: usize,
        /// Telemetry-assigned thread id (0 = first thread seen).
        thread: u64,
    },
    /// A span finished.
    SpanClose {
        /// Span name.
        name: &'static str,
        /// Enclosing span on the same thread, if any.
        parent: Option<&'static str>,
        /// Nesting depth on this thread (root = 0).
        depth: usize,
        /// Telemetry-assigned thread id.
        thread: u64,
        /// Wall time between open and close.
        nanos: u64,
    },
    /// A counter moved by `delta` since the last report.
    CounterDelta {
        /// Counter name.
        name: &'a str,
        /// Increase since the previous report.
        delta: u64,
        /// Cumulative value.
        total: u64,
    },
    /// A per-stage rollup (wall time plus the counters the stage moved).
    StageSummary {
        /// Stage name.
        stage: &'a str,
        /// Stage wall time.
        nanos: u64,
        /// Counter deltas attributed to the stage.
        counters: &'a [(String, u64)],
    },
    /// A human-readable leveled message.
    Message {
        /// Severity.
        level: Level,
        /// The formatted text.
        text: &'a str,
    },
}

/// Where events go. Implementations must be cheap to call concurrently.
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn emit(&self, event: &Event<'_>);

    /// Whether `Message` events at `level` will be observed; lets
    /// emitting sites skip formatting entirely.
    fn message_enabled(&self, level: Level) -> bool;

    /// Whether this sink drops everything ([`NullSink`] only). Installing
    /// a null sink turns the hot-path fast-skip back on.
    fn is_null(&self) -> bool {
        false
    }

    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// The default sink: drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event<'_>) {}

    fn message_enabled(&self, _level: Level) -> bool {
        false
    }

    fn is_null(&self) -> bool {
        true
    }
}

/// Pretty-printer for humans on stderr.
///
/// `Message` events at or below the configured level are printed as
/// `[level] text`; span closes and stage summaries appear from `Debug`
/// up. Machine-readable stdout output is never touched.
#[derive(Debug, Clone, Copy)]
pub struct StderrSink {
    level: Level,
}

impl StderrSink {
    /// A stderr sink showing messages at or above `level` importance.
    pub fn new(level: Level) -> Self {
        Self { level }
    }

    /// The configured verbosity.
    pub fn level(&self) -> Level {
        self.level
    }
}

impl Sink for StderrSink {
    fn emit(&self, event: &Event<'_>) {
        match event {
            Event::Message { level, text } if *level <= self.level => {
                eprintln!("[{}] {text}", level.name());
            }
            Event::SpanClose { name, nanos, .. } if self.level >= Level::Debug => {
                eprintln!("[span] {name} {:.3} ms", *nanos as f64 / 1e6);
            }
            Event::StageSummary {
                stage,
                nanos,
                counters,
            } if self.level >= Level::Debug => {
                eprintln!("[stage] {stage} {:.3} s", *nanos as f64 / 1e9);
                for (name, delta) in counters.iter() {
                    eprintln!("[stage]   {name} +{delta}");
                }
            }
            _ => {}
        }
    }

    fn message_enabled(&self, level: Level) -> bool {
        level <= self.level
    }
}

/// Appends one JSON object per event to a file (JSONL).
///
/// Every line is a flat object with an `"event"` discriminator, a
/// monotonic sequence number `"seq"`, and a monotonic process
/// timestamp `"t_ns"`. See `DESIGN.md` § Observability for the schema.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
    seq: AtomicU64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            out: Mutex::new(BufWriter::new(file)),
            seq: AtomicU64::new(0),
        })
    }

    fn line(&self, event: &Event<'_>) -> String {
        let mut o = ObjectWriter::new();
        match event {
            Event::SpanOpen {
                name,
                parent,
                depth,
                thread,
            } => {
                o.str_field("event", "span_open");
                o.str_field("name", name);
                if let Some(parent) = parent {
                    o.str_field("parent", parent);
                }
                o.u64_field("depth", *depth as u64);
                o.u64_field("thread", *thread);
            }
            Event::SpanClose {
                name,
                parent,
                depth,
                thread,
                nanos,
            } => {
                o.str_field("event", "span_close");
                o.str_field("name", name);
                if let Some(parent) = parent {
                    o.str_field("parent", parent);
                }
                o.u64_field("depth", *depth as u64);
                o.u64_field("thread", *thread);
                o.u64_field("nanos", *nanos);
            }
            Event::CounterDelta { name, delta, total } => {
                o.str_field("event", "counter");
                o.str_field("name", name);
                o.u64_field("delta", *delta);
                o.u64_field("total", *total);
            }
            Event::StageSummary {
                stage,
                nanos,
                counters,
            } => {
                o.str_field("event", "stage_summary");
                o.str_field("stage", stage);
                o.u64_field("nanos", *nanos);
                for (name, delta) in counters.iter() {
                    o.u64_field(name, *delta);
                }
            }
            Event::Message { level, text } => {
                o.str_field("event", "message");
                o.str_field("level", level.name());
                o.str_field("text", text);
            }
        }
        o.u64_field("seq", self.seq.fetch_add(1, Ordering::Relaxed));
        o.u64_field("t_ns", process_elapsed_ns());
        o.finish()
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event<'_>) {
        let line = self.line(event);
        let mut out = self.out.lock().expect("jsonl sink mutex poisoned");
        let _ = writeln!(out, "{line}");
    }

    fn message_enabled(&self, _level: Level) -> bool {
        true
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink mutex poisoned").flush();
    }
}

/// Fans each event out to every wrapped sink.
#[derive(Clone)]
pub struct MultiSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl std::fmt::Debug for MultiSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl MultiSink {
    /// Combines `sinks`; events reach each in order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        Self { sinks }
    }
}

impl Sink for MultiSink {
    fn emit(&self, event: &Event<'_>) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn message_enabled(&self, level: Level) -> bool {
        self.sinks.iter().any(|s| s.message_enabled(level))
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// `true` once a non-null sink is installed — the one branch hot paths
/// pay when telemetry is off.
static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static RwLock<Arc<dyn Sink>> {
    static SLOT: OnceLock<RwLock<Arc<dyn Sink>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(Arc::new(NullSink)))
}

/// Installs `sink` as the process-global event sink and returns the
/// previous one. Pass [`NullSink`] to disable telemetry again.
pub fn set_sink(sink: Arc<dyn Sink>) -> Arc<dyn Sink> {
    let active = !sink.is_null();
    let mut slot = sink_slot().write().expect("sink lock poisoned");
    let previous = std::mem::replace(&mut *slot, sink);
    SINK_ACTIVE.store(active, Ordering::Release);
    previous
}

/// Whether a non-null sink is installed (cheap relaxed load).
#[inline]
pub fn sink_active() -> bool {
    SINK_ACTIVE.load(Ordering::Relaxed)
}

/// Emits one event to the global sink. Near-free when the sink is the
/// default [`NullSink`].
#[inline]
pub fn emit(event: &Event<'_>) {
    if !sink_active() {
        return;
    }
    sink_slot().read().expect("sink lock poisoned").emit(event);
}

/// Whether `Message` events at `level` would currently be observed.
/// Use to skip building expensive message payloads.
pub fn message_enabled(level: Level) -> bool {
    sink_active()
        && sink_slot()
            .read()
            .expect("sink lock poisoned")
            .message_enabled(level)
}

/// Formats and emits a leveled message (the `info!`/`debug!` macros
/// route here). Free when no sink wants the level.
pub fn message(level: Level, args: std::fmt::Arguments<'_>) {
    if !message_enabled(level) {
        return;
    }
    let text = std::fmt::format(args);
    emit(&Event::Message { level, text: &text });
}

/// Flushes the global sink (e.g. before process exit so the JSONL file
/// is complete on disk).
pub fn flush() {
    if !sink_active() {
        return;
    }
    sink_slot().read().expect("sink lock poisoned").flush();
}

/// Emits a `CounterDelta` event for every counter that moved since
/// `earlier`, and returns the deltas. Used at stage boundaries to keep
/// the JSONL stream compact (per-increment events would swamp it).
pub fn emit_counter_deltas(
    earlier: &registry::RegistrySnapshot,
) -> std::collections::BTreeMap<String, u64> {
    let now = registry::snapshot();
    let deltas = now.counter_deltas(earlier);
    if sink_active() {
        for (name, delta) in &deltas {
            let total = now.counters.get(name).copied().unwrap_or(*delta);
            emit(&Event::CounterDelta {
                name,
                delta: *delta,
                total,
            });
        }
    }
    deltas
}

/// Reads `HVAC_TELEMETRY` and, if it names a writable path, installs a
/// [`JsonlSink`] there (combined with any sink already installed).
/// Idempotent: only the first call with the variable set has an effect.
/// Returns whether a JSONL sink was installed by this call.
pub fn init_from_env() -> bool {
    static DONE: AtomicBool = AtomicBool::new(false);
    if DONE.swap(true, Ordering::SeqCst) {
        return false;
    }
    let Ok(path) = std::env::var("HVAC_TELEMETRY") else {
        return false;
    };
    if path.is_empty() {
        return false;
    }
    match JsonlSink::create(&path) {
        Ok(jsonl) => {
            let jsonl: Arc<dyn Sink> = Arc::new(jsonl);
            let previous = set_sink(jsonl.clone());
            if !previous.is_null() {
                set_sink(Arc::new(MultiSink::new(vec![previous, jsonl])));
            }
            // A buffered file sink must survive panics with its tail
            // intact.
            install_panic_flush_hook();
            true
        }
        Err(e) => {
            eprintln!("warning: HVAC_TELEMETRY={path}: {e}; telemetry disabled");
            false
        }
    }
}

/// Installs a panic hook that flushes the global sink before the
/// default (or previously installed) hook runs, so a buffered
/// [`JsonlSink`] doesn't silently drop its tail events when a run dies
/// mid-stage. Idempotent; cheap to call from every entry point that
/// installs a sink.
pub fn install_panic_flush_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        flush();
        previous(info);
    }));
}

/// Monotonic nanoseconds since the telemetry clock was first touched.
pub fn process_elapsed_ns() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    let start = *START.get_or_init(Instant::now);
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Telemetry-assigned id of the calling thread (dense, starting at 0).
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::message($crate::Level::Error, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::message($crate::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::message($crate::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::message($crate::Level::Debug, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        $crate::message($crate::Level::Trace, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_importance() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::Warn.name(), "warn");
    }

    #[test]
    fn null_sink_observes_nothing() {
        let sink = NullSink;
        assert!(!sink.message_enabled(Level::Error));
        assert!(!sink.message_enabled(Level::Trace));
    }

    #[test]
    fn stderr_sink_level_filtering() {
        let sink = StderrSink::new(Level::Info);
        assert!(sink.message_enabled(Level::Error));
        assert!(sink.message_enabled(Level::Info));
        assert!(!sink.message_enabled(Level::Debug));
    }

    #[test]
    fn multi_sink_is_union_of_levels() {
        let quiet = Arc::new(StderrSink::new(Level::Error));
        let chatty = Arc::new(StderrSink::new(Level::Debug));
        let multi = MultiSink::new(vec![quiet, chatty]);
        assert!(multi.message_enabled(Level::Debug));
        assert!(!multi.message_enabled(Level::Trace));
    }

    #[test]
    fn thread_ids_are_distinct() {
        let main_id = thread_id();
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(main_id, other);
        assert_eq!(main_id, thread_id());
    }

    #[test]
    fn process_clock_is_monotonic() {
        let a = process_elapsed_ns();
        let b = process_elapsed_ns();
        assert!(b >= a);
    }
}
