//! Programmatic per-run telemetry rollups.
//!
//! [`TelemetrySummary`] is the snapshot type pipeline callers get back
//! inside `PipelineArtifacts`: stage wall times plus the counters each
//! run moved, with the headline numbers (rollouts, split evaluations,
//! verification work) surfaced as typed accessors. Built from a
//! [`crate::RunScope`] ([`TelemetrySummary::from_scope`]) for exact
//! per-run attribution, or by diffing [`crate::registry::snapshot`]s
//! ([`TelemetrySummary::from_snapshots`]) when whole-process deltas
//! are wanted.

use crate::registry::{HistogramSnapshot, RegistrySnapshot};
use crate::scope::RunScope;
use std::collections::BTreeMap;
use std::time::Duration;

/// Headline statistics of one histogram over one run: the sample count
/// and sum plus p50/p95/p99 estimated from bucket counts (see
/// [`HistogramSnapshot::quantile`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramStats {
    /// Samples recorded during the run.
    pub count: u64,
    /// Sum of the samples recorded during the run.
    pub sum: u64,
    /// Largest sample ever recorded (process-cumulative running max).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramStats {
    /// Summarizes a (typically delta) histogram snapshot.
    pub fn from_snapshot(h: &HistogramSnapshot) -> Self {
        Self {
            count: h.count,
            sum: h.sum,
            max: h.max,
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Wall time of one named pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (e.g. `"dynamics"`).
    pub name: String,
    /// Stage wall time.
    pub wall: Duration,
}

/// Everything telemetry observed during one pipeline run.
///
/// Built with [`TelemetrySummary::from_scope`], counters and histograms
/// cover exactly the work done inside that run's [`RunScope`], even
/// when several pipelines run concurrently in one process. Built with
/// [`TelemetrySummary::from_snapshots`], they are process-global deltas
/// and include every concurrent run's work. Stage wall times are
/// measured locally and are always exact for this run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// End-to-end wall time of the run.
    pub total_wall: Duration,
    /// Per-stage wall times, in execution order.
    pub stages: Vec<StageTiming>,
    /// Every counter delta observed during the run (dotted names).
    pub counters: BTreeMap<String, u64>,
    /// Per-histogram p50/p95/p99 rollups for every histogram that
    /// recorded at least one sample during the run.
    pub histograms: BTreeMap<String, HistogramStats>,
}

impl TelemetrySummary {
    /// Builds a summary from snapshots taken around the run plus the
    /// locally measured stage timings.
    pub fn from_snapshots(
        before: &RegistrySnapshot,
        after: &RegistrySnapshot,
        total_wall: Duration,
        stages: Vec<StageTiming>,
    ) -> Self {
        let histograms = after
            .histograms
            .iter()
            .filter_map(|(name, now)| {
                let delta = match before.histograms.get(name) {
                    Some(then) => now.delta(then),
                    None => now.clone(),
                };
                (delta.count > 0).then(|| (name.clone(), HistogramStats::from_snapshot(&delta)))
            })
            .collect();
        Self {
            total_wall,
            stages,
            counters: after.counter_deltas(before),
            histograms,
        }
    }

    /// Builds a summary from the metrics attributed to `scope`, plus
    /// the locally measured stage timings. Unlike
    /// [`TelemetrySummary::from_snapshots`], concurrent work outside
    /// the scope is excluded.
    pub fn from_scope(scope: &RunScope, total_wall: Duration, stages: Vec<StageTiming>) -> Self {
        let histograms = scope
            .histograms()
            .iter()
            .map(|(name, h)| (name.clone(), HistogramStats::from_snapshot(h)))
            .collect();
        Self {
            total_wall,
            stages,
            counters: scope.counters(),
            histograms,
        }
    }

    /// A histogram rollup by name, if the histogram moved this run.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStats> {
        self.histograms.get(name)
    }

    /// The wall time of the stage called `name`, if present.
    pub fn stage_wall(&self, name: &str) -> Option<Duration> {
        self.stages.iter().find(|s| s.name == name).map(|s| s.wall)
    }

    /// A counter delta by name (0 when the counter never moved).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Stochastic-optimizer invocations spent distilling the decision
    /// dataset (the paper's dominant 16.8 s-per-point cost).
    pub fn rollouts(&self) -> u64 {
        self.counter("extract.rollouts")
    }

    /// Candidate trajectories scored by the random-shooting planner.
    pub fn trajectories(&self) -> u64 {
        self.counter("rs.trajectories")
    }

    /// Candidate split thresholds evaluated while fitting the tree.
    pub fn split_evaluations(&self) -> u64 {
        self.counter("dtree.split_evaluations")
    }

    /// Nodes in the most recently fitted tree.
    pub fn tree_nodes(&self) -> u64 {
        self.counter("dtree.fit.nodes")
    }

    /// Leaf paths checked by Algorithm 1.
    pub fn paths_checked(&self) -> u64 {
        self.counter("verify.paths_checked")
    }

    /// Leaves rewritten by the correction pass.
    pub fn leaves_corrected(&self) -> u64 {
        self.counter("verify.leaves_corrected")
    }
}

impl std::fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pipeline wall time {:.3} s",
            self.total_wall.as_secs_f64()
        )?;
        for stage in &self.stages {
            writeln!(
                f,
                "  stage {:<14} {:>9.3} s",
                stage.name,
                stage.wall.as_secs_f64()
            )?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "  hist  {:<20} n={:<8} p50 {}   p95 {}   p99 {}",
                name, h.count, h.p50, h.p95, h.p99
            )?;
        }
        write!(
            f,
            "  rollouts {}   trajectories {}   split evals {}   paths checked {}   leaves corrected {}",
            self.rollouts(),
            self.trajectories(),
            self.split_evaluations(),
            self.paths_checked(),
            self.leaves_corrected()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{counter, snapshot};

    #[test]
    fn summary_diffs_counters_and_keeps_stages() {
        let before = snapshot();
        counter("test.summary.rolls").add(5);
        counter("extract.rollouts").add(7);
        let after = snapshot();
        let summary = TelemetrySummary::from_snapshots(
            &before,
            &after,
            Duration::from_secs(2),
            vec![
                StageTiming {
                    name: "dynamics".into(),
                    wall: Duration::from_millis(500),
                },
                StageTiming {
                    name: "extraction".into(),
                    wall: Duration::from_millis(1500),
                },
            ],
        );
        assert_eq!(summary.counter("test.summary.rolls"), 5);
        assert!(summary.rollouts() >= 7);
        assert_eq!(
            summary.stage_wall("dynamics"),
            Some(Duration::from_millis(500))
        );
        assert_eq!(summary.stage_wall("missing"), None);
        assert_eq!(summary.total_wall, Duration::from_secs(2));
    }

    #[test]
    fn display_lists_stages() {
        let summary = TelemetrySummary {
            total_wall: Duration::from_secs(1),
            stages: vec![StageTiming {
                name: "tree_fit".into(),
                wall: Duration::from_millis(10),
            }],
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        let text = summary.to_string();
        assert!(text.contains("tree_fit"));
        assert!(text.contains("rollouts 0"));
    }

    #[test]
    fn from_scope_excludes_unscoped_work() {
        use crate::scope::RunScope;
        let scope = RunScope::new();
        {
            let _guard = scope.handle().enter();
            counter("test.summary.scoped").add(9);
        }
        counter("test.summary.scoped").add(4); // outside the scope
        let summary = TelemetrySummary::from_scope(&scope, Duration::from_secs(1), Vec::new());
        assert_eq!(summary.counter("test.summary.scoped"), 9);
    }

    #[test]
    fn summary_rolls_up_histogram_quantiles() {
        use crate::registry::histogram;
        let h = histogram("test.summary.lat", &[10, 100, 1000]);
        let before = snapshot();
        for v in [5, 50, 60, 70, 500] {
            h.record(v);
        }
        let after = snapshot();
        let summary =
            TelemetrySummary::from_snapshots(&before, &after, Duration::from_secs(1), Vec::new());
        let stats = summary.histogram("test.summary.lat").expect("moved");
        assert_eq!(stats.count, 5);
        assert_eq!(stats.sum, 685);
        assert!(stats.p50 > 10 && stats.p50 <= 100, "p50 {}", stats.p50);
        assert!(stats.p99 > 100, "p99 {}", stats.p99);
        assert!(stats.mean() > 0.0);
        // The display carries the quantiles.
        assert!(summary.to_string().contains("test.summary.lat"));
    }
}
