//! Programmatic per-run telemetry rollups.
//!
//! [`TelemetrySummary`] is the snapshot type pipeline callers get back
//! inside `PipelineArtifacts`: stage wall times plus the counters each
//! run moved, with the headline numbers (rollouts, split evaluations,
//! verification work) surfaced as typed accessors. Built by diffing
//! [`crate::registry::snapshot`]s around the run, so it reflects
//! exactly the work attributed between the two snapshots.

use crate::registry::RegistrySnapshot;
use std::collections::BTreeMap;
use std::time::Duration;

/// Wall time of one named pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (e.g. `"dynamics"`).
    pub name: String,
    /// Stage wall time.
    pub wall: Duration,
}

/// Everything telemetry observed during one pipeline run.
///
/// Counters are process-global: when several pipelines run concurrently
/// in one process, counter deltas include every concurrent run's work.
/// Stage wall times are measured locally and are always exact for this
/// run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// End-to-end wall time of the run.
    pub total_wall: Duration,
    /// Per-stage wall times, in execution order.
    pub stages: Vec<StageTiming>,
    /// Every counter delta observed during the run (dotted names).
    pub counters: BTreeMap<String, u64>,
}

impl TelemetrySummary {
    /// Builds a summary from snapshots taken around the run plus the
    /// locally measured stage timings.
    pub fn from_snapshots(
        before: &RegistrySnapshot,
        after: &RegistrySnapshot,
        total_wall: Duration,
        stages: Vec<StageTiming>,
    ) -> Self {
        Self {
            total_wall,
            stages,
            counters: after.counter_deltas(before),
        }
    }

    /// The wall time of the stage called `name`, if present.
    pub fn stage_wall(&self, name: &str) -> Option<Duration> {
        self.stages.iter().find(|s| s.name == name).map(|s| s.wall)
    }

    /// A counter delta by name (0 when the counter never moved).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Stochastic-optimizer invocations spent distilling the decision
    /// dataset (the paper's dominant 16.8 s-per-point cost).
    pub fn rollouts(&self) -> u64 {
        self.counter("extract.rollouts")
    }

    /// Candidate trajectories scored by the random-shooting planner.
    pub fn trajectories(&self) -> u64 {
        self.counter("rs.trajectories")
    }

    /// Candidate split thresholds evaluated while fitting the tree.
    pub fn split_evaluations(&self) -> u64 {
        self.counter("dtree.split_evaluations")
    }

    /// Nodes in the most recently fitted tree.
    pub fn tree_nodes(&self) -> u64 {
        self.counter("dtree.fit.nodes")
    }

    /// Leaf paths checked by Algorithm 1.
    pub fn paths_checked(&self) -> u64 {
        self.counter("verify.paths_checked")
    }

    /// Leaves rewritten by the correction pass.
    pub fn leaves_corrected(&self) -> u64 {
        self.counter("verify.leaves_corrected")
    }
}

impl std::fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pipeline wall time {:.3} s",
            self.total_wall.as_secs_f64()
        )?;
        for stage in &self.stages {
            writeln!(
                f,
                "  stage {:<14} {:>9.3} s",
                stage.name,
                stage.wall.as_secs_f64()
            )?;
        }
        write!(
            f,
            "  rollouts {}   trajectories {}   split evals {}   paths checked {}   leaves corrected {}",
            self.rollouts(),
            self.trajectories(),
            self.split_evaluations(),
            self.paths_checked(),
            self.leaves_corrected()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{counter, snapshot};

    #[test]
    fn summary_diffs_counters_and_keeps_stages() {
        let before = snapshot();
        counter("test.summary.rolls").add(5);
        counter("extract.rollouts").add(7);
        let after = snapshot();
        let summary = TelemetrySummary::from_snapshots(
            &before,
            &after,
            Duration::from_secs(2),
            vec![
                StageTiming {
                    name: "dynamics".into(),
                    wall: Duration::from_millis(500),
                },
                StageTiming {
                    name: "extraction".into(),
                    wall: Duration::from_millis(1500),
                },
            ],
        );
        assert_eq!(summary.counter("test.summary.rolls"), 5);
        assert!(summary.rollouts() >= 7);
        assert_eq!(
            summary.stage_wall("dynamics"),
            Some(Duration::from_millis(500))
        );
        assert_eq!(summary.stage_wall("missing"), None);
        assert_eq!(summary.total_wall, Duration::from_secs(2));
    }

    #[test]
    fn display_lists_stages() {
        let summary = TelemetrySummary {
            total_wall: Duration::from_secs(1),
            stages: vec![StageTiming {
                name: "tree_fit".into(),
                wall: Duration::from_millis(10),
            }],
            counters: BTreeMap::new(),
        };
        let text = summary.to_string();
        assert!(text.contains("tree_fit"));
        assert!(text.contains("rollouts 0"));
    }
}
