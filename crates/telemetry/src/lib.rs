//! **hvac-telemetry** — zero-dependency observability for the
//! Veri-HVAC pipeline.
//!
//! The paper's procedure is dominated by opaque offline cost (16.8 s
//! per decision point for importance-sampled distillation); this crate
//! makes that cost visible without adding a single external
//! dependency. Three layers:
//!
//! * **Registry** ([`counter`], [`gauge`], [`histogram`]) — global,
//!   lock-cheap metrics keyed by dotted `&str` names. Updates are one
//!   relaxed atomic op; handles are `Copy` and belong in hot loops.
//! * **Spans** ([`Span::enter`]) — RAII wall-time timers with
//!   per-thread nesting (parent/child is tracked per worker thread, so
//!   the crossbeam fan-outs in `hvac-extract`/`hvac-control` just
//!   work). Closing a span feeds `span.<name>.ns`/`.count` counters
//!   and emits open/close events.
//! * **Sinks** ([`set_sink`]) — where events go. [`NullSink`]
//!   (default) costs one relaxed atomic load per event site;
//!   [`StderrSink`] pretty-prints leveled messages for operators;
//!   [`JsonlSink`] appends one JSON object per event for machines;
//!   [`MultiSink`] combines sinks. `HVAC_TELEMETRY=<path>` (see
//!   [`init_from_env`]) switches the JSONL sink on from the
//!   environment.
//!
//! Per-run rollups are captured with a [`RunScope`] (per-run
//! attribution that stays correct under concurrent runs; snapshot
//! diffs via [`registry::snapshot`] remain available for whole-process
//! accounting) and packaged as [`TelemetrySummary`] — the type
//! `PipelineArtifacts` embeds so callers get stage wall times, rollout
//! counts, tree-fit and verification work programmatically.
//!
//! On top of the substrate sits a **live layer**, still std-only:
//!
//! * [`expose`] — Prometheus text-format 0.0.4 and JSON renderers over
//!   the registry;
//! * [`http`] — a minimal HTTP/1.1 server exposing `/metrics`,
//!   `/healthz`, and `/summary.json` (plus caller routes such as the
//!   serving path's `POST /decide`);
//! * [`trace`] — post-hoc JSONL trace analysis (span trees, folded
//!   flamegraph stacks, critical paths, two-run diffs), driven by the
//!   `hvac-trace` binary;
//! * [`ring`] — a lock-free fixed-capacity flight recorder holding the
//!   last N serve decisions for `GET /debug/flight`;
//! * [`window`] — sliding-window histograms/counters (epoch rings) so
//!   `/metrics` and `/summary.json` report recent p50/p95/p99
//!   alongside the cumulative series;
//! * [`slo`] — declarative serve objectives with fast/slow-window
//!   burn rates behind `GET /debug/slo`.
//!
//! # Overhead guarantee
//!
//! With the default [`NullSink`], an instrumented call site pays at
//! most a few relaxed atomic operations (no locks, no allocation, no
//! formatting); `crates/bench/benches/overhead.rs` guards this. Level
//! checks short-circuit before any message formatting.
//!
//! # Example
//!
//! ```
//! use hvac_telemetry as telemetry;
//!
//! let rollouts = telemetry::counter("extract.rollouts");
//! let before = telemetry::registry::snapshot();
//! {
//!     let _span = telemetry::Span::enter("extraction");
//!     rollouts.add(10);
//! }
//! let after = telemetry::registry::snapshot();
//! assert!(after.counter_delta(&before, "extract.rollouts") >= 10);
//! assert!(after.counter_delta(&before, "span.extraction.count") >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod http;
pub mod json;
pub mod registry;
pub mod ring;
pub mod scope;
mod sink;
pub mod slo;
mod span;
mod summary;
pub mod trace;
pub mod window;

pub use registry::{
    counter, gauge, histogram, snapshot, Counter, Gauge, Histogram, HistogramSnapshot,
    RegistrySnapshot, LATENCY_BOUNDS_NS,
};
pub use ring::{FlightRecord, FlightRecorder};
pub use scope::{current_scope, RunScope, ScopeGuard, ScopeHandle};
pub use sink::{
    emit, emit_counter_deltas, flush, init_from_env, install_panic_flush_hook, message,
    message_enabled, process_elapsed_ns, set_sink, sink_active, thread_id, Event, JsonlSink, Level,
    MultiSink, NullSink, Sink, StderrSink,
};
pub use slo::{ObjectiveStatus, SloConfig, SloTracker};
pub use span::Span;
pub use summary::{HistogramStats, StageTiming, TelemetrySummary};
pub use window::{
    window_snapshots, windowed_histogram, WindowSnapshot, WindowedCounter, WindowedHistogram,
};
