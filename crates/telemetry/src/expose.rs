//! Live exposition of the metrics registry.
//!
//! Two renderers over [`crate::registry::snapshot`]:
//!
//! * [`render_prometheus`] — Prometheus text format 0.0.4. Dotted
//!   registry names map to `hvac_`-prefixed underscore names
//!   ([`metric_name`]); histograms expose cumulative
//!   `_bucket{le="…"}` series plus `_sum`/`_count`, exactly what a
//!   Prometheus scrape of `/metrics` expects.
//! * [`render_summary_json`] — a nested JSON object with counters,
//!   gauges, and per-histogram p50/p95/p99 rollups for `/summary.json`
//!   and ad-hoc tooling.
//!
//! Both are pure functions of the snapshot; scraping never blocks a
//! recording hot path for longer than the registry's short
//! registration mutex.

use crate::json::escape_into;
use crate::registry::{snapshot, HistogramSnapshot, RegistrySnapshot};
use crate::sink::process_elapsed_ns;
use crate::window::{window_snapshots, WindowSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps a dotted registry name to a Prometheus-legal metric name:
/// `hvac_` prefix, every character outside `[a-zA-Z0-9_]` replaced by
/// `_`. (`rs.trajectories` → `hvac_rs_trajectories`.)
pub fn metric_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 5);
    out.push_str("hvac_");
    for c in dotted.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a `# HELP` text: backslashes and newlines per the
/// exposition-format rules.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let metric = metric_name(name);
    let _ = writeln!(out, "# HELP {metric} {}", escape_help(name));
    let _ = writeln!(out, "# TYPE {metric} histogram");
    let mut cumulative = 0u64;
    for (i, &in_bucket) in h.buckets.iter().enumerate() {
        cumulative += in_bucket;
        match h.bounds.get(i) {
            Some(bound) => {
                let _ = writeln!(out, "{metric}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "{metric}_sum {}", h.sum);
    let _ = writeln!(out, "{metric}_count {}", h.count);
}

/// Renders a registry snapshot in Prometheus text format 0.0.4.
pub fn render_prometheus_from(snap: &RegistrySnapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, value) in &snap.counters {
        let metric = metric_name(name);
        let _ = writeln!(out, "# HELP {metric} {}", escape_help(name));
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in &snap.gauges {
        let metric = metric_name(name);
        let _ = writeln!(out, "# HELP {metric} {}", escape_help(name));
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, h) in &snap.histograms {
        render_histogram(&mut out, name, h);
    }
    // Process uptime makes an otherwise-empty scrape non-empty and
    // gives dashboards a liveness series.
    let _ = writeln!(out, "# HELP hvac_uptime_ns nanoseconds since process start");
    let _ = writeln!(out, "# TYPE hvac_uptime_ns gauge");
    let _ = writeln!(out, "hvac_uptime_ns {}", process_elapsed_ns());
    out
}

/// Renders a registry snapshot plus windowed series in Prometheus
/// text format 0.0.4. Each registered window contributes gauge
/// series named `<metric>_window_{p50,p95,p99,count,max,len_ns}` —
/// gauges rather than native histograms because a sliding window can
/// shrink, which Prometheus counters/histograms must never do.
pub fn render_prometheus_with(
    snap: &RegistrySnapshot,
    windows: &BTreeMap<String, WindowSnapshot>,
) -> String {
    let mut out = render_prometheus_from(snap);
    for (name, w) in windows {
        let metric = metric_name(name);
        let h = &w.histogram;
        for (suffix, value) in [
            ("p50", h.quantile(0.50)),
            ("p95", h.quantile(0.95)),
            ("p99", h.quantile(0.99)),
            ("count", h.count),
            ("max", h.max),
            ("len_ns", w.window_ns),
        ] {
            let _ = writeln!(
                out,
                "# HELP {metric}_window_{suffix} {} (sliding window)",
                escape_help(name)
            );
            let _ = writeln!(out, "# TYPE {metric}_window_{suffix} gauge");
            let _ = writeln!(out, "{metric}_window_{suffix} {value}");
        }
    }
    out
}

/// Renders the live registry in Prometheus text format 0.0.4
/// (the `/metrics` endpoint body), including every registered
/// sliding window.
pub fn render_prometheus() -> String {
    render_prometheus_with(&snapshot(), &window_snapshots())
}

/// Renders a registry snapshot as a nested JSON summary: `uptime_ns`,
/// `counters`, `gauges`, and `histograms` (each histogram carrying
/// `count`/`sum`/`max` and estimated `p50`/`p95`/`p99`).
pub fn render_summary_json_from(snap: &RegistrySnapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push('{');
    let _ = write!(out, "\"uptime_ns\":{}", process_elapsed_ns());
    for (section, values) in [("counters", &snap.counters), ("gauges", &snap.gauges)] {
        let _ = write!(out, ",\"{section}\":{{");
        for (i, (name, value)) in values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push('}');
    }
    out.push_str(",\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(&mut out, name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.count,
            h.sum,
            h.max,
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99)
        );
    }
    out.push_str("}}");
    out
}

/// Renders a registry snapshot plus windowed series as the summary
/// JSON: everything [`render_summary_json_from`] emits, followed by a
/// `windows` section mapping each registered window name to
/// `{window_ns, count, sum, max, p50, p95, p99}` over that window.
pub fn render_summary_json_with(
    snap: &RegistrySnapshot,
    windows: &BTreeMap<String, WindowSnapshot>,
) -> String {
    let mut out = render_summary_json_from(snap);
    out.pop(); // reopen the top-level object
    out.push_str(",\"windows\":{");
    for (i, (name, w)) in windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(&mut out, name);
        let h = &w.histogram;
        let _ = write!(
            out,
            ":{{\"window_ns\":{},\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            w.window_ns,
            h.count,
            h.sum,
            h.max,
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99)
        );
    }
    out.push_str("}}");
    out
}

/// Renders the live registry as the `/summary.json` body, including
/// every registered sliding window.
pub fn render_summary_json() -> String {
    render_summary_json_with(&snapshot(), &window_snapshots())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use crate::registry::{counter, gauge, histogram};
    use std::collections::BTreeMap;

    #[test]
    fn metric_names_are_prometheus_legal() {
        assert_eq!(metric_name("rs.trajectories"), "hvac_rs_trajectories");
        assert_eq!(metric_name("span.tree_fit.ns"), "hvac_span_tree_fit_ns");
        assert_eq!(metric_name("weird name-°C"), "hvac_weird_name__C");
        let n = metric_name("extract.worker.3.rollouts");
        assert!(n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    }

    #[test]
    fn help_text_escapes_backslash_and_newline() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
    }

    #[test]
    fn exposition_contains_counters_and_gauges() {
        counter("test.expose.counter").add(3);
        gauge("test.expose.gauge").set(9);
        let text = render_prometheus();
        assert!(text.contains("# TYPE hvac_test_expose_counter counter"));
        assert!(text.contains("# TYPE hvac_test_expose_gauge gauge"));
        assert!(text.contains("\nhvac_test_expose_gauge 9\n"));
        assert!(text.contains("hvac_uptime_ns "));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            assert!(name.starts_with("hvac_"), "bad series name in {line:?}");
            assert!(parts.next().unwrap().parse::<u64>().is_ok(), "{line:?}");
            assert!(parts.next().is_none(), "{line:?}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let h = histogram("test.expose.hist", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(60);
        h.record(500);
        let snap = snapshot();
        let mut only = RegistrySnapshot::default();
        only.histograms.insert(
            "test.expose.hist".into(),
            snap.histograms["test.expose.hist"].clone(),
        );
        let text = render_prometheus_from(&only);
        let value_of = |needle: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(needle))
                .unwrap_or_else(|| panic!("missing {needle}"))
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let b10 = value_of("hvac_test_expose_hist_bucket{le=\"10\"}");
        let b100 = value_of("hvac_test_expose_hist_bucket{le=\"100\"}");
        let binf = value_of("hvac_test_expose_hist_bucket{le=\"+Inf\"}");
        assert!(b10 <= b100 && b100 <= binf, "{b10} {b100} {binf}");
        assert_eq!(b10, 1);
        assert_eq!(b100, 3);
        assert_eq!(binf, 4);
        assert_eq!(binf, value_of("hvac_test_expose_hist_count"));
        assert_eq!(value_of("hvac_test_expose_hist_sum"), 615);
    }

    #[test]
    fn summary_json_parses_and_carries_quantiles() {
        let h = histogram("test.expose.json_hist", &[1_000, 1_000_000]);
        h.record(500);
        h.record(2_000);
        counter("test.expose.json_counter\"quoted").incr();
        let text = render_summary_json();
        let v = parse(&text).expect("valid JSON");
        assert!(v.get("uptime_ns").and_then(JsonValue::as_u64).is_some());
        let counters = v.get("counters").expect("counters");
        assert!(counters
            .get("test.expose.json_counter\"quoted")
            .and_then(JsonValue::as_u64)
            .is_some());
        let hist = v
            .get("histograms")
            .and_then(|hs| hs.get("test.expose.json_hist"))
            .expect("histogram present");
        assert!(hist.get("count").and_then(JsonValue::as_u64).unwrap() >= 2);
        assert!(hist.get("p50").and_then(JsonValue::as_u64).is_some());
        assert!(hist.get("p99").and_then(JsonValue::as_u64).is_some());
    }

    #[test]
    fn windowed_series_render_as_u64_gauges_and_json_section() {
        let w = crate::window::windowed_histogram(
            "test.expose.window.ns",
            &[1_000, 1_000_000],
            60_000_000_000,
            12,
        );
        w.record(500);
        w.record(2_000);

        let text = render_prometheus();
        assert!(text.contains("# TYPE hvac_test_expose_window_ns_window_p99 gauge"));
        assert!(text.contains("hvac_test_expose_window_ns_window_count 2"));
        // The windowed lines obey the same "name u64" shape as the rest.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            parts.next().unwrap();
            assert!(parts.next().unwrap().parse::<u64>().is_ok(), "{line:?}");
        }

        let v = parse(&render_summary_json()).expect("valid JSON");
        let win = v
            .get("windows")
            .and_then(|ws| ws.get("test.expose.window.ns"))
            .expect("window present in summary");
        assert_eq!(win.get("count").and_then(JsonValue::as_u64), Some(2));
        assert!(win.get("p50").and_then(JsonValue::as_u64).is_some());
        assert!(win.get("window_ns").and_then(JsonValue::as_u64).is_some());
    }

    #[test]
    fn empty_snapshot_renders_uptime_only() {
        let snap = RegistrySnapshot {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        let text = render_prometheus_from(&snap);
        assert!(text.contains("hvac_uptime_ns"));
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 1);
    }
}
