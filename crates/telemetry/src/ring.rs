//! Lock-free fixed-capacity flight recorder for serve-path decisions.
//!
//! A [`FlightRecorder`] keeps the last `N` decision records in a ring
//! of atomic slots so `GET /debug/flight` can answer "what were the
//! most recent requests through this process" without locks on the
//! write path and without ever blocking a writer on a reader.
//!
//! Each slot is a seqlock-in-miniature built entirely from `AtomicU64`
//! cells (this crate forbids `unsafe`): writers take a global ticket
//! from the write cursor, mark the slot odd (write in progress), store
//! the payload words, then publish `2·ticket + 2` with Release
//! ordering. Readers load the sequence with Acquire, copy the words,
//! and re-check the sequence. Because two writers a full lap apart can
//! land on the same slot, the sequence check alone is not airtight —
//! so every record also carries an FNV-1a checksum over its payload
//! words mixed with the ticket, and [`FlightRecorder::snapshot`]
//! discards any record whose checksum fails. A torn read is therefore
//! dropped, never surfaced.
//!
//! Variable-width data (the trace id) is stored inline as bytes packed
//! into words, bounded by [`MAX_TRACE_ID_BYTES`]; memory is
//! `capacity × (8 + WORDS) × 8` bytes, fixed at construction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Longest trace id preserved in a flight record, matching the HTTP
/// layer's `X-Request-Id` limit. Longer ids are truncated (they cannot
/// occur via HTTP, which rejects them with 422).
pub const MAX_TRACE_ID_BYTES: usize = 128;

/// Payload words per slot: fixed fields + packed trace-id bytes.
const TRACE_WORDS: usize = MAX_TRACE_ID_BYTES / 8;
/// t_ns, parse_ns, decide_ns, audit_ns, guard_state, action bits,
/// http_status, trace_len, checksum.
const FIXED_WORDS: usize = 9;
const WORDS: usize = FIXED_WORDS + TRACE_WORDS;

/// One decision as captured on the serve path.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Trace id of the request (client-supplied or minted).
    pub trace_id: String,
    /// Monotonic process time when the request finished, in ns.
    pub t_ns: u64,
    /// Time spent parsing the request body, in ns.
    pub parse_ns: u64,
    /// Time spent inside the guarded policy decide, in ns.
    pub decide_ns: u64,
    /// Time spent appending to the audit chain (0 when unaudited), ns.
    pub audit_ns: u64,
    /// Guard rung at decision time (`GuardState::as_gauge` encoding).
    pub guard_state: u64,
    /// Heating setpoint scaled by 100 (f64 setpoints round-trip as
    /// centidegrees to stay in integer words).
    pub heating_centi: u64,
    /// Cooling setpoint scaled by 100.
    pub cooling_centi: u64,
    /// HTTP status the request was answered with.
    pub http_status: u64,
}

impl FlightRecord {
    fn to_words(&self, ticket: u64) -> [u64; WORDS] {
        let mut words = [0u64; WORDS];
        let id = self.trace_id.as_bytes();
        let len = id.len().min(MAX_TRACE_ID_BYTES);
        words[0] = self.t_ns;
        words[1] = self.parse_ns;
        words[2] = self.decide_ns;
        words[3] = self.audit_ns;
        words[4] = self.guard_state;
        words[5] = (self.heating_centi << 32) | (self.cooling_centi & 0xffff_ffff);
        words[6] = self.http_status;
        words[7] = len as u64;
        for (i, &b) in id[..len].iter().enumerate() {
            words[FIXED_WORDS + i / 8] |= (b as u64) << ((i % 8) * 8);
        }
        words[8] = checksum(&words, ticket);
        words
    }

    fn from_words(words: &[u64; WORDS], ticket: u64) -> Option<Self> {
        if words[8] != checksum(words, ticket) {
            return None;
        }
        let len = words[7] as usize;
        if len > MAX_TRACE_ID_BYTES {
            return None;
        }
        let mut id = Vec::with_capacity(len);
        for i in 0..len {
            id.push((words[FIXED_WORDS + i / 8] >> ((i % 8) * 8)) as u8);
        }
        Some(Self {
            trace_id: String::from_utf8(id).ok()?,
            t_ns: words[0],
            parse_ns: words[1],
            decide_ns: words[2],
            audit_ns: words[3],
            guard_state: words[4],
            heating_centi: words[5] >> 32,
            cooling_centi: words[5] & 0xffff_ffff,
            http_status: words[6],
        })
    }
}

/// FNV-1a over every payload word except the checksum cell itself,
/// seeded with the write ticket so a record re-read across a full ring
/// lap under a different ticket cannot validate.
fn checksum(words: &[u64; WORDS], ticket: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    mix(ticket);
    for (i, &w) in words.iter().enumerate() {
        if i != 8 {
            mix(w);
        }
    }
    h
}

struct Slot {
    /// 0 = never written; odd = write in progress; `2·ticket + 2` =
    /// published by `ticket`.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Lock-free ring of the last `capacity` [`FlightRecord`]s.
pub struct FlightRecorder {
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.cursor.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` records
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            cursor: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (not clamped to capacity).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Appends a record, overwriting the oldest once full. Lock-free:
    /// the ticket from `fetch_add` names both the slot and the
    /// published sequence, so concurrent writers never wait on each
    /// other.
    pub fn push(&self, record: &FlightRecord) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let words = record.to_words(ticket);
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        for (cell, &w) in slot.words.iter().zip(&words) {
            cell.store(w, Ordering::Relaxed);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Consistent copy of the ring, most recent record first. Records
    /// mid-write or torn by a racing overwrite are dropped (sequence
    /// re-check plus per-record checksum), never returned corrupt.
    /// When writers race across laps a slot can end up holding a
    /// stale-lap record (an older ticket's write landed last); those
    /// are likewise dropped rather than surfaced under the wrong
    /// ordinal, so a snapshot taken during or right after heavy
    /// contention may briefly hold fewer than `capacity` records.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let end = self.cursor.load(Ordering::Acquire);
        let n = self.slots.len() as u64;
        let mut out = Vec::with_capacity(self.slots.len());
        // Walk tickets newest → oldest over at most one full lap.
        let start = end.saturating_sub(n);
        for ticket in (start..end).rev() {
            let slot = &self.slots[(ticket % n) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != 2 * ticket + 2 {
                continue; // never written, mid-write, or already overwritten
            }
            let mut words = [0u64; WORDS];
            for (w, cell) in words.iter_mut().zip(&slot.words) {
                *w = cell.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) != seq {
                continue; // torn by a racing writer
            }
            if let Some(rec) = FlightRecord::from_words(&words, ticket) {
                out.push(rec);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, t: u64) -> FlightRecord {
        FlightRecord {
            trace_id: id.to_owned(),
            t_ns: t,
            parse_ns: 10,
            decide_ns: 20,
            audit_ns: 5,
            guard_state: 0,
            heating_centi: 2100,
            cooling_centi: 2600,
            http_status: 200,
        }
    }

    #[test]
    fn records_round_trip_through_words() {
        let r = rec("req-abc-123", 42);
        let words = r.to_words(7);
        assert_eq!(FlightRecord::from_words(&words, 7), Some(r));
    }

    #[test]
    fn checksum_is_ticket_bound() {
        let words = rec("x", 1).to_words(3);
        assert!(FlightRecord::from_words(&words, 4).is_none());
    }

    #[test]
    fn snapshot_is_most_recent_first_and_bounded() {
        let ring = FlightRecorder::new(4);
        for i in 0..10u64 {
            ring.push(&rec(&format!("r{i}"), i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        let ids: Vec<&str> = snap.iter().map(|r| r.trace_id.as_str()).collect();
        assert_eq!(ids, ["r9", "r8", "r7", "r6"]);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn long_trace_ids_are_truncated_not_corrupted() {
        let ring = FlightRecorder::new(2);
        let long = "z".repeat(MAX_TRACE_ID_BYTES + 40);
        ring.push(&rec(&long, 1));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].trace_id.len(), MAX_TRACE_ID_BYTES);
        assert!(snap[0].trace_id.bytes().all(|b| b == b'z'));
    }
}
