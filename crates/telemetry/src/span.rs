//! RAII timing spans with per-thread nesting.
//!
//! [`Span::enter`] pushes the span onto a thread-local stack (so
//! parent/child relationships are tracked per worker thread — safe
//! under crossbeam's scoped fan-out, where every worker gets its own
//! stack) and emits a `span_open` event. Dropping (or explicitly
//! [`Span::close`]-ing) the span emits `span_close` and accumulates the
//! wall time into the global registry as `span.<name>.ns` /
//! `span.<name>.count`, so summaries can be built from counters alone.
//!
//! ```
//! use hvac_telemetry::Span;
//!
//! let outer = Span::enter("extraction");
//! {
//!     let inner = Span::enter("rollouts");
//!     // … work …
//!     drop(inner);
//! }
//! let wall = outer.close();
//! println!("extraction took {wall:?}");
//! ```

use crate::registry::counter;
use crate::sink::{emit, thread_id, Event};
use std::cell::RefCell;
use std::time::{Duration, Instant};

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open timing span; closes on drop.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    parent: Option<&'static str>,
    depth: usize,
    start: Instant,
    closed: bool,
}

impl Span {
    /// Opens a span named `name`, nested under the calling thread's
    /// innermost open span (if any).
    pub fn enter(name: &'static str) -> Self {
        let (parent, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            let depth = stack.len();
            stack.push(name);
            (parent, depth)
        });
        emit(&Event::SpanOpen {
            name,
            parent,
            depth,
            thread: thread_id(),
        });
        Self {
            name,
            parent,
            depth,
            start: Instant::now(),
            closed: false,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Wall time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span now and returns its wall time.
    pub fn close(mut self) -> Duration {
        self.finish()
    }

    fn finish(&mut self) -> Duration {
        if self.closed {
            return self.start.elapsed();
        }
        self.closed = true;
        let wall = self.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans normally close innermost-first; if one is held
            // across an unwind, remove the right entry regardless.
            if stack.last() == Some(&self.name) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&n| n == self.name) {
                stack.remove(pos);
            }
        });
        let nanos = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        counter(&format!("span.{}.ns", self.name)).add(nanos);
        counter(&format!("span.{}.count", self.name)).incr();
        emit(&Event::SpanClose {
            name: self.name,
            parent: self.parent,
            depth: self.depth,
            thread: thread_id(),
            nanos,
        });
        wall
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::snapshot;

    #[test]
    fn nesting_tracks_parent_and_depth() {
        let outer = Span::enter("test_span_outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, None);
        let inner = Span::enter("test_span_inner");
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent, Some("test_span_outer"));
        drop(inner);
        let sibling = Span::enter("test_span_sibling");
        assert_eq!(sibling.depth, 1);
        assert_eq!(sibling.parent, Some("test_span_outer"));
    }

    #[test]
    fn close_records_registry_counters() {
        let before = snapshot();
        let span = Span::enter("test_span_counted");
        std::thread::sleep(Duration::from_millis(2));
        let wall = span.close();
        let after = snapshot();
        assert_eq!(
            after.counter_delta(&before, "span.test_span_counted.count"),
            1
        );
        let ns = after.counter_delta(&before, "span.test_span_counted.ns");
        assert!(ns >= 2_000_000, "recorded {ns} ns");
        assert!(wall >= Duration::from_millis(2));
    }

    #[test]
    fn out_of_order_close_keeps_stack_consistent() {
        let a = Span::enter("test_span_a");
        let b = Span::enter("test_span_b");
        drop(a); // wrong order on purpose
        let c = Span::enter("test_span_c");
        // `b` is still the innermost open span.
        assert_eq!(c.parent, Some("test_span_b"));
        drop(b);
        drop(c);
        let fresh = Span::enter("test_span_fresh");
        assert_eq!(fresh.depth, 0);
    }

    #[test]
    fn spans_across_scoped_threads_land_in_registry() {
        let before = snapshot();
        crossbeam::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|_| {
                    // Each worker thread has its own stack: these are
                    // roots there, not children of the caller's spans.
                    let worker = Span::enter("test_span_worker");
                    assert_eq!(worker.depth, 0);
                    let inner = Span::enter("test_span_worker_inner");
                    assert_eq!(inner.parent, Some("test_span_worker"));
                });
            }
        })
        .expect("crossbeam scope");
        let after = snapshot();
        assert_eq!(
            after.counter_delta(&before, "span.test_span_worker.count"),
            3
        );
        assert_eq!(
            after.counter_delta(&before, "span.test_span_worker_inner.count"),
            3
        );
    }
}
