//! A minimal, dependency-free HTTP/1.1 server for live observability
//! and fleet serving.
//!
//! Built on `std::net::TcpListener` with a **fixed worker pool**
//! behind a bounded admission gate: the accept loop runs on one
//! background thread and does nothing but admit connections — each
//! admitted connection is pushed onto a bounded queue drained by a
//! fixed set of pool workers, so load never translates into unbounded
//! thread creation. Admission is a single atomic reservation
//! ([`InflightGate`]); connections beyond the cap are answered `503`
//! instead of queueing unboundedly, and the reserved slot travels with
//! the connection as an RAII guard ([`InflightSlot`]) so a panic
//! anywhere in the connection's lifetime releases it.
//!
//! Connections are **keep-alive** by default: a worker answers
//! requests on the same socket until the client closes, sends
//! `Connection: close`, idles past the request timeout, or the server
//! shuts down. Shutdown is graceful and strictly ordered — the guard
//! sets a flag, wakes the accept loop with a loopback connection,
//! joins it, closes the queue and joins **every pool worker** (so all
//! admitted requests have fully finished), and only then runs
//! [`ServerBuilder::on_shutdown`] hooks and flushes the installed
//! telemetry sink.
//!
//! Every server answers three built-in routes:
//!
//! * `GET /metrics` — Prometheus text format 0.0.4
//!   ([`crate::expose::render_prometheus`]);
//! * `GET /healthz` — `200 ok` liveness probe;
//! * `GET /summary.json` — the JSON registry summary.
//!
//! Additional routes (e.g. the serving path's `POST /decide`) are
//! registered through [`ServerBuilder::route`]; path-prefix routes
//! (e.g. the fleet path's `POST /decide/{tenant}`) through
//! [`ServerBuilder::route_prefix`]. Each request also feeds
//! `http.requests` / `http.request.ns` registry metrics, so the
//! server observes itself.
//!
//! The server is hardened against hostile clients: request bodies are
//! capped ([`ServerBuilder::max_body_bytes`], `413`), stalled reads
//! time out ([`ServerBuilder::request_timeout`], `408`), every
//! server-generated failure is a structured JSON body
//! (`{"error": …, "status": …}`, see [`Response::error`]), and a
//! panicking handler is contained to a `500` plus an `http.panics`
//! counter instead of tearing down the connection.
//!
//! Requests carry an identity: a client-supplied `X-Request-Id` is
//! validated ([`valid_request_id`]; malformed ids are rejected with a
//! structured `422` before any handler runs) and echoed on every
//! response, including error responses generated after the headers
//! were parsed (oversized body, truncated body, non-UTF-8 body).
//! Handlers can stamp their own id (e.g. a minted one) via
//! [`Response::with_header`]; the echo only fills the gap.
//!
//! # Example
//!
//! ```
//! use hvac_telemetry::http::{HttpServer, Response};
//!
//! let server = HttpServer::builder()
//!     .route("GET", "/hello", |_req| Response::text(200, "hi"))
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//! let (status, body) =
//!     hvac_telemetry::http::blocking_request(server.addr(), "GET", "/hello", "").unwrap();
//! assert_eq!((status, body.as_str()), (200, "hi"));
//! server.shutdown();
//! ```

use crate::registry::{counter, histogram, LATENCY_BOUNDS_NS};
use crate::{expose, Level};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default maximum admitted connections (queued + being served)
/// before `503` shedding; override with [`ServerBuilder::max_inflight`].
const MAX_INFLIGHT: usize = 64;
/// Default per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Poll slice while an idle keep-alive connection waits for its next
/// request, so it notices server shutdown promptly.
const IDLE_POLL: Duration = Duration::from_millis(50);
/// Poll slice while other admitted connections are waiting for a
/// worker: an idle connection yields its worker after one slice so a
/// fixed pool round-robins across more connections than workers.
const TURN_POLL: Duration = Duration::from_millis(1);
/// Maximum requests served in one worker turn before a keep-alive
/// connection is rotated to the back of the queue. Bounds how long a
/// hot connection can monopolise a worker while others wait.
const MAX_TURN_REQUESTS: usize = 64;
/// Maximum accepted request header block.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default maximum accepted request body.
const MAX_BODY_BYTES: usize = 256 * 1024;

/// Default pool width: one worker per core, clamped so a test binary
/// spawning many servers stays lightweight.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .clamp(2, 8)
}

/// Per-server request limits, configurable on [`ServerBuilder`].
#[derive(Debug, Clone, Copy)]
struct Limits {
    max_body_bytes: usize,
    request_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_body_bytes: MAX_BODY_BYTES,
            request_timeout: IO_TIMEOUT,
        }
    }
}

/// Header carrying the per-request trace id (client-supplied or
/// minted by the server; always echoed on the response).
pub const REQUEST_ID_HEADER: &str = "X-Request-Id";

/// Longest accepted client-supplied request id, matching
/// [`crate::ring::MAX_TRACE_ID_BYTES`].
pub const MAX_REQUEST_ID_BYTES: usize = 128;

/// A valid request id is 1–128 bytes of printable ASCII with no
/// spaces (`0x21..=0x7E`) — safe to embed verbatim in JSON, JSONL
/// audit records, and Prometheus-adjacent text without escaping
/// surprises.
pub fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_REQUEST_ID_BYTES
        && id.bytes().all(|b| (0x21..=0x7e).contains(&b))
}

/// Bounds concurrently admitted connections with a single atomic
/// reservation.
///
/// The slot is reserved with one `fetch_update` — the load-then-add
/// TOCTOU where two accepts both observe `capacity - 1` and both
/// increment past the cap is structurally impossible — and released by
/// [`InflightSlot`]'s `Drop`, so a panic on the holding thread can
/// never strand a slot (the leak that used to converge on a permanent
/// `503`).
#[derive(Debug)]
pub struct InflightGate {
    admitted: AtomicUsize,
    capacity: usize,
}

impl InflightGate {
    /// A gate admitting at most `capacity` concurrent holders.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            admitted: AtomicUsize::new(0),
            capacity,
        })
    }

    /// Reserves a slot, or `None` when the gate is at capacity.
    pub fn try_acquire(self: &Arc<Self>) -> Option<InflightSlot> {
        self.admitted
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.capacity).then_some(n + 1)
            })
            .ok()
            .map(|_| InflightSlot(Arc::clone(self)))
    }

    /// Currently admitted holders.
    pub fn admitted(&self) -> usize {
        self.admitted.load(Ordering::Acquire)
    }

    /// The admission cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// An RAII admission slot from [`InflightGate::try_acquire`]; the
/// release lives in `Drop` so it runs even when the holding thread
/// unwinds from a panic.
#[derive(Debug)]
pub struct InflightSlot(Arc<InflightGate>);

impl Drop for InflightSlot {
    fn drop(&mut self) {
        self.0.admitted.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without query string (`/decide`).
    pub path: String,
    /// Request headers in arrival order (names as sent; values
    /// trimmed). Lookup via [`Request::header`].
    pub headers: Vec<(String, String)>,
    /// Request body (empty when none was sent).
    pub body: String,
}

impl Request {
    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The client-supplied `X-Request-Id`, if any (not validated).
    pub fn request_id(&self) -> Option<&str> {
        self.header(REQUEST_ID_HEADER)
    }

    /// Whether the client asked for the connection to be closed after
    /// this request.
    fn wants_close(&self) -> bool {
        self.header("Connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// An HTTP response to send back.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. the echoed `X-Request-Id`).
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a response header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// A structured JSON error: `{"error": message, "status": status}`.
    ///
    /// All server-generated failures (parse errors, 404/405, panics,
    /// shedding) use this shape so clients never have to sniff whether
    /// an error body is prose or JSON.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":{},\"status\":{status}}}",
                crate::json::escaped(message)
            ),
        )
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

struct Route {
    method: &'static str,
    path: String,
    /// `true` matches any request path that starts with `path`
    /// (exact routes always win over prefix routes).
    prefix: bool,
    handler: Handler,
}

/// Configures routes before binding an [`HttpServer`].
#[derive(Default)]
pub struct ServerBuilder {
    routes: Vec<Route>,
    limits: Limits,
    workers: Option<usize>,
    max_inflight: Option<usize>,
    shutdown_hooks: Vec<Box<dyn FnOnce() + Send>>,
}

impl ServerBuilder {
    /// Registers a handler for `method path` (exact path match, query
    /// strings stripped). User routes take precedence over the
    /// built-in `/metrics`, `/healthz`, and `/summary.json`.
    pub fn route(
        mut self,
        method: &'static str,
        path: impl Into<String>,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(Route {
            method,
            path: path.into(),
            prefix: false,
            handler: Arc::new(handler),
        });
        self
    }

    /// Registers a handler for every path starting with `prefix`
    /// (e.g. `/decide/` to serve `/decide/{tenant}`). Exact routes win
    /// over prefix routes; among prefix routes the first registered
    /// match wins. The handler sees the full request path and strips
    /// the prefix itself.
    pub fn route_prefix(
        mut self,
        method: &'static str,
        prefix: impl Into<String>,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(Route {
            method,
            path: prefix.into(),
            prefix: true,
            handler: Arc::new(handler),
        });
        self
    }

    /// Caps the accepted request body; larger `Content-Length`s are
    /// answered `413` without reading the body. Defaults to 256 KiB.
    pub fn max_body_bytes(mut self, bytes: usize) -> Self {
        self.limits.max_body_bytes = bytes;
        self
    }

    /// Socket read/write timeout per request; a client that stalls
    /// mid-request is answered `408`. Defaults to 10 s.
    pub fn request_timeout(mut self, timeout: Duration) -> Self {
        self.limits.request_timeout = timeout;
        self
    }

    /// Number of pool workers draining the connection queue (at least
    /// one). Defaults to the core count, clamped to 2–8.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Caps admitted connections (queued + being served); connections
    /// beyond the cap are shed with `503`. Defaults to 64.
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = Some(n.max(1));
        self
    }

    /// Registers a hook run exactly once on graceful shutdown (explicit
    /// [`HttpServer::shutdown`] or drop), after the accept loop has
    /// been joined **and every pool worker has been drained and
    /// joined** — i.e. after the last admitted request has fully
    /// finished and its response was written. Serving layers rely on
    /// this ordering to seal audit chains without a late decision
    /// append racing the seal.
    pub fn on_shutdown(mut self, hook: impl FnOnce() + Send + 'static) -> Self {
        self.shutdown_hooks.push(Box::new(hook));
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral)
    /// and starts serving: one accept thread plus the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn bind(mut self, addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
        self.routes.push(Route {
            method: "GET",
            path: "/metrics".into(),
            prefix: false,
            handler: Arc::new(|_| {
                let mut r = Response::text(200, expose::render_prometheus());
                r.content_type = "text/plain; version=0.0.4; charset=utf-8";
                r
            }),
        });
        self.routes.push(Route {
            method: "GET",
            path: "/healthz".into(),
            prefix: false,
            handler: Arc::new(|_| Response::text(200, "ok")),
        });
        self.routes.push(Route {
            method: "GET",
            path: "/summary.json".into(),
            prefix: false,
            handler: Arc::new(|_| Response::json(200, expose::render_summary_json())),
        });
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let routes = Arc::new(self.routes);
        let limits = self.limits;
        let gate = InflightGate::new(self.max_inflight.unwrap_or(MAX_INFLIGHT));
        let queue = ConnQueue::new();
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let gate = Arc::clone(&gate);
            std::thread::Builder::new()
                .name("hvac-http-accept".into())
                .spawn(move || accept_loop(&listener, &queue, &gate, limits, &shutdown))?
        };
        let worker_count = self.workers.unwrap_or_else(default_workers);
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let queue = Arc::clone(&queue);
            let routes = Arc::clone(&routes);
            let shutdown = Arc::clone(&shutdown);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hvac-http-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &routes, limits, &shutdown))?,
            );
        }
        crate::message(
            Level::Info,
            format_args!(
                "metrics server listening on http://{local} ({worker_count} workers, \
                 {} inflight cap)",
                gate.capacity()
            ),
        );
        Ok(HttpServer {
            addr: local,
            shutdown,
            queue,
            accept_thread: Some(accept_thread),
            workers,
            shutdown_hooks: Mutex::new(self.shutdown_hooks),
        })
    }
}

/// An admitted connection travelling between the queue and the pool
/// workers; dropping it anywhere (queue close, worker panic unwind,
/// end of connection) releases its admission slot.
///
/// The connection keeps its [`BufReader`] across worker turns so a
/// pipelined request buffered during one turn is still there when a
/// (possibly different) worker picks the connection back up.
struct QueuedConn {
    reader: BufReader<TcpStream>,
    /// Held purely for its drop: releasing the admission reservation.
    _slot: InflightSlot,
    /// When the connection last completed a request (admission time
    /// for a fresh connection) — the idle-timeout anchor.
    last_active: Instant,
}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<QueuedConn>,
    closed: bool,
}

/// The bounded connection queue between the accept loop and the pool
/// workers. Boundedness comes from the admission gate: a connection is
/// only ever pushed while holding an [`InflightSlot`], so `pending`
/// never exceeds the gate capacity.
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        })
    }

    fn push(&self, conn: QueuedConn) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            // Dropping the connection releases its slot; the client
            // sees a reset, same as any connection racing shutdown.
            return;
        }
        state.pending.push_back(conn);
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks for the next admitted connection; `None` once the queue
    /// is closed **and** fully drained, so shutdown still answers
    /// everything that was admitted.
    fn pop(&self) -> Option<QueuedConn> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(conn) = state.pending.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Whether any admitted connection is waiting for a worker — the
    /// contention signal that makes an idle connection yield its turn.
    fn has_pending(&self) -> bool {
        !self
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending
            .is_empty()
    }
}

fn accept_loop(
    listener: &TcpListener,
    queue: &Arc<ConnQueue>,
    gate: &Arc<InflightGate>,
    limits: Limits,
    shutdown: &Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(limits.request_timeout));
        let _ = stream.set_write_timeout(Some(limits.request_timeout));
        // Responses are written head-then-body; without nodelay the
        // body write can sit behind Nagle waiting for the client's
        // delayed ACK of the head.
        let _ = stream.set_nodelay(true);
        // One atomic reservation decides admission; over-capacity
        // connections are shed here, on the accept thread, so a full
        // pool cannot be wedged further by new arrivals.
        let Some(slot) = gate.try_acquire() else {
            shed_busy(stream);
            continue;
        };
        counter("http.connections").incr();
        queue.push(QueuedConn {
            reader: BufReader::new(stream),
            _slot: slot,
            last_active: Instant::now(),
        });
    }
}

/// Sheds an over-capacity connection with a `503`, then briefly
/// drains whatever the client already sent before closing. Closing a
/// socket with the request still unread in the receive buffer aborts
/// it with an RST, which can discard the written `503` from the
/// client's buffer — the bounded drain makes shedding visible as a
/// structured error instead of a connection reset.
fn shed_busy(mut stream: TcpStream) {
    counter("http.rejected").incr();
    counter("http.shed").incr();
    if Response::error(503, "server busy")
        .with_header("Retry-After", "1")
        .write_to(&mut stream, false)
        .is_err()
    {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut sink = [0u8; 1024];
    for _ in 0..16 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Worker scheduling is request-granular, not connection-granular: a
/// worker serves one bounded *turn* on a connection, then requeues it.
/// Pinning a worker to a keep-alive connection for its whole lifetime
/// starves connection `workers + 1` forever — the fleet's sixteen
/// persistent tenant clients against an eight-worker pool was exactly
/// that deadlock.
fn worker_loop(queue: &Arc<ConnQueue>, routes: &[Route], limits: Limits, shutdown: &AtomicBool) {
    while let Some(conn) = queue.pop() {
        // A panic outside dispatch's catch_unwind (request read,
        // response write) must not kill the pool worker; the unwind
        // drops the connection and its slot, releasing the admission
        // reservation.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_turn(conn, queue, routes, limits, shutdown)
        }));
        match outcome {
            // Requeue a live connection for its next turn. If the
            // queue closed meanwhile, push drops it (slot released).
            Ok(Turn::Keep(conn)) => queue.push(conn),
            Ok(Turn::Done) => {}
            Err(_) => {
                counter("http.conn.panics").incr();
            }
        }
    }
}

/// What a worker turn left behind.
enum Turn {
    /// The connection is still live and admitted: requeue it.
    Keep(QueuedConn),
    /// The connection finished (closed, errored, timed out, or the
    /// server is shutting down); dropping it released its slot.
    Done,
}

/// Whether the next keep-alive request arrived, the connection should
/// yield its worker, or the connection is done (client closed, idle
/// timeout, socket error, shutdown).
enum NextRequest {
    Ready,
    Rotate,
    Closed,
}

/// Serves up to [`MAX_TURN_REQUESTS`] on one connection, yielding the
/// worker as soon as the connection goes idle while other admitted
/// connections are waiting.
fn serve_turn(
    mut conn: QueuedConn,
    queue: &ConnQueue,
    routes: &[Route],
    limits: Limits,
    shutdown: &AtomicBool,
) -> Turn {
    for _ in 0..MAX_TURN_REQUESTS {
        match await_request(&mut conn, queue, limits, shutdown) {
            NextRequest::Ready => {}
            NextRequest::Rotate => return Turn::Keep(conn),
            NextRequest::Closed => return Turn::Done,
        }
        let keep_alive = serve_one(&mut conn.reader, routes, limits);
        conn.last_active = Instant::now();
        // Finish the in-flight request, but start no new one once
        // shutdown began: stop() is draining the pool.
        if !keep_alive || shutdown.load(Ordering::Acquire) {
            return Turn::Done;
        }
    }
    // Turn budget spent: rotate so a hot connection cannot monopolise
    // the worker while others queue.
    Turn::Keep(conn)
}

/// Parks on the socket until the next request's first byte arrives.
/// Contended (other connections queued for a worker), the park lasts
/// at most one [`TURN_POLL`] slice before yielding; uncontended, it
/// polls in [`IDLE_POLL`] slices so shutdown and the idle deadline are
/// still noticed promptly. Total idle time across turns is bounded by
/// the request timeout via `last_active`.
fn await_request(
    conn: &mut QueuedConn,
    queue: &ConnQueue,
    limits: Limits,
    shutdown: &AtomicBool,
) -> NextRequest {
    let outcome = loop {
        if !conn.reader.buffer().is_empty() {
            // A pipelined request is already buffered.
            break NextRequest::Ready;
        }
        let contended = queue.has_pending();
        let slice = if contended { TURN_POLL } else { IDLE_POLL };
        let _ = conn
            .reader
            .get_ref()
            .set_read_timeout(Some(slice.min(limits.request_timeout)));
        match conn.reader.fill_buf() {
            Ok([]) => break NextRequest::Closed,
            Ok(_) => break NextRequest::Ready,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::Acquire)
                    || conn.last_active.elapsed() >= limits.request_timeout
                {
                    break NextRequest::Closed;
                }
                if contended {
                    break NextRequest::Rotate;
                }
            }
            Err(_) => break NextRequest::Closed,
        }
    };
    // Restore the full request timeout before any header/body reads.
    let _ = conn
        .reader
        .get_ref()
        .set_read_timeout(Some(limits.request_timeout));
    outcome
}

/// Reads and answers one request on an established connection;
/// returns whether the connection may be reused for another.
fn serve_one(reader: &mut BufReader<TcpStream>, routes: &[Route], limits: Limits) -> bool {
    let started = Instant::now();
    let (mut response, request_id, reusable) = match read_request(reader, limits) {
        Ok(request) => {
            let reusable = !request.wants_close();
            match request.request_id() {
                // A malformed client id is rejected before dispatch so
                // no handler ever observes (or propagates) an id that
                // cannot be embedded safely downstream.
                Some(id) if !valid_request_id(id) => {
                    counter("http.request_id.rejected").incr();
                    (
                        Response::error(
                            422,
                            "invalid X-Request-Id: need 1-128 printable ASCII bytes, no spaces",
                        ),
                        None,
                        reusable,
                    )
                }
                id => {
                    let id = id.map(str::to_owned);
                    (dispatch(routes, &request), id, reusable)
                }
            }
        }
        Err(error) => {
            let id = error.request_id.filter(|id| valid_request_id(id));
            // Framing is unreliable after a read error — always close.
            (Response::error(error.status, error.message), id, false)
        }
    };
    // Echo the client's id on every response — success or error —
    // unless the handler already stamped one (e.g. a minted id).
    if response.header(REQUEST_ID_HEADER).is_none() {
        if let Some(id) = request_id {
            response = response.with_header(REQUEST_ID_HEADER, id);
        }
    }
    let written = response.write_to(&mut reader.get_ref(), reusable).is_ok();
    counter("http.requests").incr();
    if response.status >= 400 {
        counter("http.errors").incr();
    }
    histogram("http.request.ns", LATENCY_BOUNDS_NS)
        .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    reusable && written
}

fn run_handler(route: &Route, request: &Request) -> Response {
    // A panicking handler must never tear down the connection with
    // the response unsent: contain it, count it, and answer 500 so
    // the client sees a structured failure instead of a reset socket.
    catch_unwind(AssertUnwindSafe(|| (route.handler)(request))).unwrap_or_else(|_| {
        counter("http.panics").incr();
        Response::error(500, "handler panicked")
    })
}

fn dispatch(routes: &[Route], request: &Request) -> Response {
    let mut path_known = false;
    for route in routes.iter().filter(|r| !r.prefix) {
        if route.path == request.path {
            path_known = true;
            if route.method == request.method {
                return run_handler(route, request);
            }
        }
    }
    for route in routes.iter().filter(|r| r.prefix) {
        if request.path.starts_with(&route.path) {
            path_known = true;
            if route.method == request.method {
                return run_handler(route, request);
            }
        }
    }
    if path_known {
        Response::error(405, "method not allowed")
    } else {
        Response::error(404, "not found")
    }
}

struct HttpError {
    status: u16,
    message: &'static str,
    /// The client's `X-Request-Id` when the failure happened after the
    /// headers were parsed (e.g. an oversized body), so even those
    /// errors echo the id back.
    request_id: Option<String>,
}

fn http_err(status: u16, message: &'static str) -> HttpError {
    HttpError {
        status,
        message,
        request_id: None,
    }
}

/// Maps a socket read failure to 408 when the client stalled past the
/// request timeout, otherwise to a 400 with `context`.
fn read_err(error: &std::io::Error, context: &'static str) -> HttpError {
    match error.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            http_err(408, "request read timed out")
        }
        _ => http_err(400, context),
    }
}

fn read_request(reader: &mut BufReader<TcpStream>, limits: Limits) -> Result<Request, HttpError> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| read_err(&e, "unreadable request line"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| http_err(400, "missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| http_err(400, "missing path"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(http_err(400, "path must be absolute"));
    }

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| read_err(&e, "unreadable header"))?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(http_err(413, "headers too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| http_err(400, "bad content-length"))?;
            }
            headers.push((name.to_string(), value.trim().to_string()));
        }
    }
    // Errors past this point happened after the headers were parsed:
    // carry the client id so the error response still echoes it.
    let request_id_of = |headers: &[(String, String)]| {
        headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(REQUEST_ID_HEADER))
            .map(|(_, v)| v.clone())
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError {
            request_id: request_id_of(&headers),
            ..http_err(413, "body too large")
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| HttpError {
        request_id: request_id_of(&headers),
        ..read_err(&e, "truncated body")
    })?;
    let body = String::from_utf8(body).map_err(|_| HttpError {
        request_id: request_id_of(&headers),
        ..http_err(400, "body is not UTF-8")
    })?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// A running observability server; shuts down on [`HttpServer::shutdown`]
/// or drop.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    // Behind a `Mutex` so the server stays `Sync` (harnesses park it in
    // a `static OnceLock`) even though `FnOnce` boxes are not.
    shutdown_hooks: Mutex<Vec<Box<dyn FnOnce() + Send>>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let hooks = self
            .shutdown_hooks
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .field("shutdown_hooks", &hooks)
            .finish_non_exhaustive()
    }
}

impl HttpServer {
    /// Starts configuring a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Binds a server with only the built-in observability routes
    /// (`/metrics`, `/healthz`, `/summary.json`).
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
        Self::builder().bind(addr)
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections, drains every admitted request
    /// through the worker pool, runs the shutdown hooks, and flushes
    /// the telemetry sink — in that order.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = handle.join();
        // Nothing new can be admitted now. Close the queue and join
        // every pool worker so all admitted requests have fully
        // finished — responses written, audit appends done — *before*
        // the hooks run. Hooks seal audit chains; a late decision
        // append racing the seal was exactly the ordering bug this
        // drain exists to prevent.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // A graceful stop must not strand buffered observability:
        // run the registered hooks (audit-chain seals etc.), then
        // flush any installed telemetry sink so JSONL files end on a
        // complete record.
        let hooks = std::mem::take(
            &mut *self
                .shutdown_hooks
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for hook in hooks {
            hook();
        }
        crate::sink::flush();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A tiny blocking HTTP/1.1 client for tests, benches, and smoke
/// checks: sends one request, returns `(status, body)`.
///
/// # Errors
///
/// Propagates connection and read errors; malformed responses surface
/// as `InvalidData`.
pub fn blocking_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let (status, _headers, body) = blocking_request_with_headers(addr, method, path, &[], body)?;
    Ok((status, body))
}

/// Response header list returned by [`blocking_request_with_headers`]:
/// `(name, value)` pairs in wire order.
pub type HeaderList = Vec<(String, String)>;

/// Like [`blocking_request`] but sends extra request headers and also
/// returns the parsed response headers as `(name, value)` pairs —
/// what the trace-id tests use to assert the `X-Request-Id` echo.
///
/// # Errors
///
/// Propagates connection and read errors; malformed responses surface
/// as `InvalidData`.
pub fn blocking_request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<(u16, HeaderList, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        request.push_str(name);
        request.push_str(": ");
        request.push_str(value);
        request.push_str("\r\n");
    }
    request.push_str("\r\n");
    request.push_str(body);
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((response.clone(), String::new()));
    let response_headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Ok((status, response_headers, body))
}

/// First value of `name` (case-insensitive) in a header list returned
/// by [`blocking_request_with_headers`].
pub fn header_value<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// A blocking HTTP/1.1 client that keeps its connection alive across
/// requests — the load-generator counterpart of the server's
/// keep-alive support. One request at a time per client; responses are
/// framed by `Content-Length`, so the connection is reused instead of
/// read-to-EOF.
#[derive(Debug)]
pub struct BlockingClient {
    reader: BufReader<TcpStream>,
}

impl BlockingClient {
    /// Connects to `addr` with the default I/O timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request on the persistent connection and reads the
    /// framed response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; malformed responses surface as
    /// `InvalidData`. After an error the connection should be
    /// discarded.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<(u16, HeaderList, String)> {
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nHost: keepalive\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            request.push_str(name);
            request.push_str(": ");
            request.push_str(value);
            request.push_str("\r\n");
        }
        request.push_str("\r\n");
        request.push_str(body);
        let mut stream = self.reader.get_ref();
        stream.write_all(request.as_bytes())?;
        stream.flush()?;

        let invalid =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid("malformed status line"))?;
        let mut headers: HeaderList = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| invalid("bad content-length"))?;
                }
                headers.push((name.trim().to_string(), value.trim().to_string()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| invalid("body is not UTF-8"))?;
        Ok((status, headers, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_builtin_observability_routes() {
        crate::registry::counter("test.http.builtin").add(2);
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let (status, body) = blocking_request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok"));

        let (status, body) = blocking_request(addr, "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("hvac_test_http_builtin 2") || body.contains("hvac_test_http_builtin")
        );
        assert!(body.contains("# TYPE hvac_uptime_ns gauge"));

        let (status, body) = blocking_request(addr, "GET", "/summary.json", "").unwrap();
        assert_eq!(status, 200);
        let v = crate::json::parse(&body).expect("summary is valid JSON");
        assert!(v.get("counters").is_some());
        server.shutdown();
    }

    #[test]
    fn custom_routes_and_errors() {
        let server = HttpServer::builder()
            .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = server.addr();

        let (status, body) = blocking_request(addr, "POST", "/echo", "payload").unwrap();
        assert_eq!((status, body.as_str()), (200, "payload"));

        let (status, _) = blocking_request(addr, "GET", "/echo", "").unwrap();
        assert_eq!(status, 405);

        let (status, _) = blocking_request(addr, "GET", "/missing", "").unwrap();
        assert_eq!(status, 404);

        // Query strings are stripped before matching.
        let (status, _) = blocking_request(addr, "GET", "/healthz?probe=1", "").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn prefix_routes_match_after_exact_routes() {
        let server = HttpServer::builder()
            .route("POST", "/decide", |_req| Response::text(200, "exact"))
            .route_prefix("POST", "/decide/", |req| {
                Response::text(200, format!("prefix:{}", &req.path["/decide/".len()..]))
            })
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = server.addr();

        let (status, body) = blocking_request(addr, "POST", "/decide", "{}").unwrap();
        assert_eq!((status, body.as_str()), (200, "exact"));

        let (status, body) = blocking_request(addr, "POST", "/decide/alpha", "{}").unwrap();
        assert_eq!((status, body.as_str()), (200, "prefix:alpha"));

        // Wrong method on a prefix path is 405, not 404.
        let (status, _) = blocking_request(addr, "GET", "/decide/alpha", "").unwrap();
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn error_responses_are_structured_json() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let (status, body) = blocking_request(server.addr(), "GET", "/missing", "").unwrap();
        assert_eq!(status, 404);
        let v = crate::json::parse(&body).expect("404 body is JSON");
        assert_eq!(v.get("error").and_then(|e| e.as_str()), Some("not found"));
        assert_eq!(v.get("status").and_then(|s| s.as_u64()), Some(404));

        let (status, body) = blocking_request(server.addr(), "POST", "/healthz", "x").unwrap();
        assert_eq!(status, 405);
        assert!(crate::json::parse(&body).is_ok(), "405 body is JSON");
        server.shutdown();
    }

    #[test]
    fn panicking_handler_is_contained_as_500() {
        let before = crate::registry::snapshot();
        let server = HttpServer::builder()
            .route("GET", "/boom", |_req| panic!("handler exploded"))
            .bind("127.0.0.1:0")
            .expect("bind");
        let (status, body) = blocking_request(server.addr(), "GET", "/boom", "").unwrap();
        assert_eq!(status, 500);
        let v = crate::json::parse(&body).expect("500 body is JSON");
        assert_eq!(
            v.get("error").and_then(|e| e.as_str()),
            Some("handler panicked")
        );
        // The server survives the panic.
        let (status, _) = blocking_request(server.addr(), "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
        let after = crate::registry::snapshot();
        assert!(after.counter_delta(&before, "http.panics") >= 1);
    }

    #[test]
    fn oversized_bodies_are_rejected_with_413() {
        let server = HttpServer::builder()
            .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
            .max_body_bytes(16)
            .bind("127.0.0.1:0")
            .expect("bind");
        let (status, _) = blocking_request(server.addr(), "POST", "/echo", "short").unwrap();
        assert_eq!(status, 200);
        let big = "x".repeat(17);
        let (status, body) = blocking_request(server.addr(), "POST", "/echo", &big).unwrap();
        assert_eq!(status, 413);
        assert!(crate::json::parse(&body).is_ok(), "413 body is JSON");
        server.shutdown();
    }

    #[test]
    fn stalled_clients_are_answered_408() {
        let server = HttpServer::builder()
            .request_timeout(Duration::from_millis(100))
            .bind("127.0.0.1:0")
            .expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Promise a body and never send it.
        stream
            .write_all(b"POST /healthz HTTP/1.1\r\nContent-Length: 10\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 408"), "{response}");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        server.shutdown();
        // The socket no longer accepts (connect may succeed briefly on
        // some platforms' backlog, but a request must not be answered).
        let answered = blocking_request(addr, "GET", "/healthz", "")
            .map(|(status, _)| status == 200)
            .unwrap_or(false);
        assert!(!answered, "server answered after shutdown");
    }

    #[test]
    fn keep_alive_reuses_one_connection_for_many_requests() {
        let connections_before = {
            let snap = crate::registry::snapshot();
            snap.counters.get("http.connections").copied().unwrap_or(0)
        };
        let server = HttpServer::builder()
            .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
            .bind("127.0.0.1:0")
            .expect("bind");
        let mut client = BlockingClient::connect(server.addr()).unwrap();
        for i in 0..10 {
            let body = format!("ping-{i}");
            let (status, headers, echoed) = client.request("POST", "/echo", &[], &body).unwrap();
            assert_eq!((status, echoed.as_str()), (200, body.as_str()));
            assert_eq!(
                header_value(&headers, "Connection").map(str::to_ascii_lowercase),
                Some("keep-alive".into())
            );
        }
        server.shutdown();
        let connections_after = {
            let snap = crate::registry::snapshot();
            snap.counters.get("http.connections").copied().unwrap_or(0)
        };
        // All ten requests shared one admitted connection (other tests
        // run concurrently, so only bound the delta from below… by
        // asserting at least our one connection happened and at most
        // could not be asserted; instead assert the client's reuse
        // worked by the fact all ten framed responses parsed above).
        assert!(connections_after > connections_before);
    }

    #[test]
    fn inflight_gate_never_exceeds_capacity_under_hammer() {
        const CAP: usize = 8;
        const THREADS: usize = 16;
        const ITERS: usize = 2000;
        let gate = InflightGate::new(CAP);
        let max_seen = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let max_seen = Arc::clone(&max_seen);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        if let Some(slot) = gate.try_acquire() {
                            // With the old load-then-fetch_add gate,
                            // concurrent admissions overshoot the cap
                            // and this observes admitted > CAP.
                            max_seen.fetch_max(gate.admitted(), Ordering::AcqRel);
                            drop(slot);
                        }
                        std::hint::spin_loop();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            max_seen.load(Ordering::Acquire) <= CAP,
            "gate overshot: {} > {CAP}",
            max_seen.load(Ordering::Acquire)
        );
        assert_eq!(gate.admitted(), 0, "all slots returned");
    }

    #[test]
    fn inflight_slot_is_released_when_the_holder_panics() {
        let gate = InflightGate::new(1);
        let held = Arc::clone(&gate);
        let outcome = std::thread::spawn(move || {
            let _slot = held.try_acquire().expect("slot free");
            panic!("boom mid-connection");
        })
        .join();
        assert!(outcome.is_err());
        // The unwind released the slot; the gate is not permanently
        // wedged at capacity (the old fetch_sub-after-handler leak).
        assert_eq!(gate.admitted(), 0);
        assert!(gate.try_acquire().is_some());
    }

    #[test]
    fn over_capacity_connections_are_shed_and_slots_recover() {
        let server = HttpServer::builder()
            .workers(1)
            .max_inflight(2)
            .route("GET", "/slow", |_req| {
                std::thread::sleep(Duration::from_millis(200));
                Response::text(200, "done")
            })
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    BlockingClient::connect(addr)
                        .and_then(|mut c| c.request("GET", "/slow", &[], ""))
                })
            })
            .collect();
        let mut ok = 0usize;
        let mut shed = 0usize;
        for h in handles {
            match h.join().unwrap() {
                Ok((200, _, _)) => ok += 1,
                Ok((503, headers, _)) => {
                    shed += 1;
                    // Shed responses tell well-behaved clients when to
                    // come back.
                    let retry = headers
                        .iter()
                        .find(|(n, _)| n.eq_ignore_ascii_case("retry-after"))
                        .map(|(_, v)| v.as_str());
                    assert_eq!(retry, Some("1"), "shed 503 must carry Retry-After");
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        assert_eq!(ok + shed, 8);
        assert!(ok >= 1, "admitted requests answered");
        assert!(shed >= 1, "over-capacity requests shed with 503");
        // Slots recovered: a fresh request is admitted, not 503'd.
        let (status, _) = blocking_request(addr, "GET", "/slow", "").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_inflight_requests_before_hooks() {
        let completed = Arc::new(AtomicUsize::new(0));
        let at_hook = Arc::new(AtomicUsize::new(usize::MAX));
        let handler_done = Arc::clone(&completed);
        let hook_completed = Arc::clone(&completed);
        let hook_saw = Arc::clone(&at_hook);
        let server = HttpServer::builder()
            .route("GET", "/slow", move |_req| {
                std::thread::sleep(Duration::from_millis(150));
                handler_done.fetch_add(1, Ordering::AcqRel);
                Response::text(200, "done")
            })
            .on_shutdown(move || {
                hook_saw.store(hook_completed.load(Ordering::Acquire), Ordering::Release);
            })
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = server.addr();
        let client = std::thread::spawn(move || blocking_request(addr, "GET", "/slow", ""));
        // Let the request get admitted and into the handler…
        std::thread::sleep(Duration::from_millis(50));
        // …then shut down while it is still in flight. The hook must
        // observe the request fully finished (worker pool drained),
        // not racing — the ordering audited serving relies on.
        server.shutdown();
        assert_eq!(at_hook.load(Ordering::Acquire), 1);
        let (status, body) = client.join().unwrap().unwrap();
        assert_eq!((status, body.as_str()), (200, "done"));
    }

    #[test]
    fn request_id_is_echoed_on_success_and_errors() {
        let server = HttpServer::builder()
            .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = server.addr();
        let id = [(REQUEST_ID_HEADER, "req-echo-1")];

        let (status, headers, _) =
            blocking_request_with_headers(addr, "POST", "/echo", &id, "hi").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            header_value(&headers, REQUEST_ID_HEADER),
            Some("req-echo-1")
        );

        // Echoed on router errors too.
        let (status, headers, _) =
            blocking_request_with_headers(addr, "GET", "/missing", &id, "").unwrap();
        assert_eq!(status, 404);
        assert_eq!(
            header_value(&headers, REQUEST_ID_HEADER),
            Some("req-echo-1")
        );
        let (status, headers, _) =
            blocking_request_with_headers(addr, "GET", "/echo", &id, "").unwrap();
        assert_eq!(status, 405);
        assert_eq!(
            header_value(&headers, REQUEST_ID_HEADER),
            Some("req-echo-1")
        );
        server.shutdown();
    }

    #[test]
    fn request_id_is_echoed_on_oversized_body_413() {
        let server = HttpServer::builder()
            .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
            .max_body_bytes(8)
            .bind("127.0.0.1:0")
            .expect("bind");
        let big = "x".repeat(64);
        let (status, headers, _) = blocking_request_with_headers(
            server.addr(),
            "POST",
            "/echo",
            &[(REQUEST_ID_HEADER, "req-413")],
            &big,
        )
        .unwrap();
        assert_eq!(status, 413);
        assert_eq!(header_value(&headers, REQUEST_ID_HEADER), Some("req-413"));
        server.shutdown();
    }

    #[test]
    fn malformed_request_ids_are_rejected_422() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        // Embedded space → non-printable per our contract.
        let (status, _, body) = blocking_request_with_headers(
            addr,
            "GET",
            "/healthz",
            &[(REQUEST_ID_HEADER, "has a space")],
            "",
        )
        .unwrap();
        assert_eq!(status, 422);
        let v = crate::json::parse(&body).expect("422 body is JSON");
        assert_eq!(v.get("status").and_then(|s| s.as_u64()), Some(422));

        // Oversized id.
        let long = "a".repeat(MAX_REQUEST_ID_BYTES + 1);
        let (status, _, _) = blocking_request_with_headers(
            addr,
            "GET",
            "/healthz",
            &[(REQUEST_ID_HEADER, &long)],
            "",
        )
        .unwrap();
        assert_eq!(status, 422);

        // A max-length printable id is fine.
        let edge = "b".repeat(MAX_REQUEST_ID_BYTES);
        let (status, headers, _) = blocking_request_with_headers(
            addr,
            "GET",
            "/healthz",
            &[(REQUEST_ID_HEADER, &edge)],
            "",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            header_value(&headers, REQUEST_ID_HEADER),
            Some(edge.as_str())
        );
        server.shutdown();
    }

    #[test]
    fn requests_feed_self_metrics() {
        let before = crate::registry::snapshot();
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        blocking_request(server.addr(), "GET", "/healthz", "").unwrap();
        blocking_request(server.addr(), "GET", "/missing", "").unwrap();
        server.shutdown();
        let after = crate::registry::snapshot();
        assert!(after.counter_delta(&before, "http.requests") >= 2);
        assert!(after.counter_delta(&before, "http.errors") >= 1);
        let h = &after.histograms["http.request.ns"];
        assert!(h.count >= 2);
    }
}
